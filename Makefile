# Entry points for local development and CI.  Everything is pure
# Python run from the repo root with PYTHONPATH=src — no build step.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: check test perf-gate chaos-smoke analysis-gate effects-gate obs-gate serve-gate serve-chaos serve-obs lint effects chaos bench

## The pre-merge bar: full test suite + all eight deterministic gates.
check: test perf-gate chaos-smoke analysis-gate effects-gate obs-gate serve-gate serve-chaos serve-obs

test:
	$(PYTHON) -m pytest -x -q

perf-gate:
	$(PYTHON) tools/perf_gate.py

chaos-smoke:
	$(PYTHON) tools/chaos_gate.py --smoke

analysis-gate:
	$(PYTHON) tools/analysis_gate.py

effects-gate:
	$(PYTHON) tools/effects_gate.py

obs-gate:
	$(PYTHON) tools/obs_gate.py

serve-gate:
	$(PYTHON) tools/serve_gate.py

serve-chaos:
	$(PYTHON) tools/serve_chaos_gate.py

serve-obs:
	$(PYTHON) tools/serve_obs_gate.py

## Lint only (no sanitizer sweep); fast inner-loop check.
lint:
	$(PYTHON) -m repro.analysis.cli --effects --baseline tools/analysis_baseline.json src tools benchmarks examples

## Interprocedural effect invariants only.
effects:
	$(PYTHON) -m repro.analysis.cli --effects-only --baseline tools/analysis_baseline.json src/repro

## Full-scale (slower) variants.
chaos:
	$(PYTHON) tools/chaos_gate.py

bench:
	$(PYTHON) benchmarks/bench_hotpath.py --smoke
	$(PYTHON) benchmarks/bench_chaos.py --smoke
	$(PYTHON) benchmarks/bench_serve.py --smoke
