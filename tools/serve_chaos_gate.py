"""Serve chaos gate: crash recovery and failover, enforced end to end.

Drives seeded fault sweeps against in-process
:class:`~repro.serve.server.ServerThread`\\ s and asserts that the PR 8
durability contracts hold under every injected failure:

* **crash convergence** — a server killed by an injected
  ``crash_after_wal`` fault (process dies between the durable write and
  the ack) and restarted with ``recover=True`` finishes the identical
  workload with the *same* partition sha256 per tenant (strict
  equality) and the same per-tenant ledger cycle totals
  (``math.isclose``: settled-at-checkpoint + deterministic replay must
  equal the uncrashed run's figure) as an uncrashed baseline;
* **transport fault sweep** — with ``torn_response``,
  ``drop_connection``, and ``delay_response`` faults armed one run at a
  time, the retrying client (seeded-jitter backoff + ``next_seq``
  resync) still converges bit-identically and cycle-identically to the
  fault-free reference, and every armed fault actually fired;
* **worker failover** — killing one of two device workers mid-traffic
  (the ``kill-worker`` chaos op) leaves every session intact on the
  survivor, converges to the fault-free digest, keeps the per-worker
  attribution sums exact, reports degraded health (``/healthz`` 503),
  and counts the failover in the recovery metrics;
* **zero quarantine leaks** — the workload is clean by construction, so
  any nonzero quarantine/dead-letter gauge after any run means fault
  handling corrupted a batch.

Windows form only from the deterministic ``target_batch_size``
auto-flush (no mid-traffic manual flushes), so window boundaries —
and therefore partitions and cycle charges — depend on the modifier
stream alone, never on where a crash landed.

Writes ``results/serve_chaos.txt`` (consumed by
``tools/build_experiments_md.py``).

Usage::

    python tools/serve_chaos_gate.py             # run all checks
    python tools/serve_chaos_gate.py --no-write  # skip the artifact

Exit status 0 = pass, 1 = contract violation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.modifiers import EdgeInsert  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServerConfig,
    ServerThread,
    build_graph,
)
from repro.utils.errors import ServeError  # noqa: E402
from repro.utils.faultinject import ServeFaultPlan  # noqa: E402

RESULTS = REPO_ROOT / "results"

#: Two-tenant seeded workload.  Traffic is *clean* by construction
#: (only inserts of edges absent from graph and stream), because the
#: cycle-parity contract is exact only for poison-free streams: a
#: degraded window is a checkpoint barrier whose post-checkpoint
#: quarantine work recovery intentionally does not replay.
TENANTS = {
    "acme": {
        "graph": {
            "generator": "circuit",
            "args": {"num_vertices": 96, "edge_ratio": 1.3, "seed": 11},
        },
        "k": 3,
        "seed": 4,
        "modifiers": 42,
        "stride": 17,
    },
    "bravo": {
        "graph": {
            "generator": "community",
            "args": {"num_vertices": 80, "edges_per_vertex": 4, "seed": 6},
        },
        "k": 4,
        "seed": 9,
        "modifiers": 36,
        "stride": 23,
    },
}

#: Submit slice size == scheduler target_batch_size: windows form from
#: the modifier count alone.
CHUNK = 6

HOST = "127.0.0.1"


def clean_modifiers(spec: dict) -> list:
    """Deterministic insert-only stream of edges that do not exist in
    the graph and never repeat within the stream."""
    graph = build_graph(spec["graph"])
    nv = spec["graph"]["args"]["num_vertices"]
    stride = spec["stride"]
    out: list = []
    seen: set = set()
    candidate = 0
    while len(out) < spec["modifiers"]:
        u = candidate % nv
        v = (u + stride + candidate // nv) % nv
        candidate += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(EdgeInsert(u=u, v=v))
    return out


STREAMS = {name: clean_modifiers(TENANTS[name]) for name in sorted(TENANTS)}


def make_clients(port: int) -> dict:
    return {
        name: ServeClient(HOST, port, tenant=name, retry_seed=7)
        for name in sorted(TENANTS)
    }


def create_sessions(clients: dict) -> None:
    for name in sorted(TENANTS):
        spec = TENANTS[name]
        clients[name].create(
            "s0",
            spec["graph"],
            k=spec["k"],
            seed=spec["seed"],
            target_batch_size=CHUNK,
        )


def drive(clients: dict, cursors: dict) -> None:
    """Interleave each tenant's remaining stream in CHUNK slices.

    ``cursors`` maps tenant -> modifiers already accepted by the
    server; on a post-crash resume it comes straight from each
    session's ``next_seq``, which for this append-only workload *is*
    the stream position.
    """
    progressed = True
    while progressed:
        progressed = False
        for name in sorted(TENANTS):
            cur = cursors[name]
            batch = STREAMS[name][cur : cur + CHUNK]
            if not batch:
                continue
            clients[name].submit_with_retry("s0", batch)
            cursors[name] = cur + len(batch)
            progressed = True


def finish(clients: dict) -> tuple[dict, dict, dict]:
    """Drain, digest, and read per-tenant cycle totals + resilience."""
    digests = {}
    for name in sorted(TENANTS):
        clients[name].flush("s0", drain=True)
        digests[name] = clients[name].digest("s0")["sha256"]
    stats = clients["acme"].stats()
    cycles = {name: 0.0 for name in sorted(TENANTS)}
    for worker in stats["workers"]:
        for tenant, charge in worker["cycles_by_tenant"].items():
            cycles[tenant] += charge
    resilience = {
        name: clients[name].metrics()["metrics"] for name in sorted(TENANTS)
    }
    return digests, cycles, resilience


def close_clients(clients: dict) -> None:
    for client in clients.values():
        client.close()


def check_no_quarantine(
    resilience: dict, scenario: str, failures: list
) -> None:
    for name in sorted(resilience):
        snapshot = resilience[name]
        for metric in (
            "serve_tenant_quarantined_modifiers",
            "serve_tenant_dead_letters",
        ):
            value = snapshot.get(metric, 0)
            if value:
                failures.append(
                    f"{scenario}: tenant {name!r} leaked {metric}={value} "
                    "on a clean workload"
                )


def run_baseline(data_dir: str) -> tuple[dict, dict, dict]:
    """The fault-free reference run of the full workload."""
    with ServerThread(
        ServerConfig(workers=2, data_dir=data_dir)
    ) as thread:
        clients = make_clients(thread.tcp_port)
        create_sessions(clients)
        drive(clients, {name: 0 for name in sorted(TENANTS)})
        result = finish(clients)
        close_clients(clients)
    return result


# -- scenario 1: crash between WAL and ack, then recover ------------------------


def check_crash_recovery(
    baseline: tuple, report: list
) -> list[str]:
    failures: list[str] = []
    base_digests, base_cycles, _ = baseline
    plan = ServeFaultPlan(seed=20250808)
    plan.arm("crash_after_wal", op="submit", after_matches=5)
    with tempfile.TemporaryDirectory() as data_dir:
        thread = ServerThread(
            ServerConfig(
                workers=2,
                data_dir=data_dir,
                enable_chaos=True,
                fault_plan=plan,
            )
        ).start()
        clients = make_clients(thread.tcp_port)
        create_sessions(clients)
        cursors = {name: 0 for name in sorted(TENANTS)}
        crashed = False
        try:
            drive(clients, cursors)
        except (ServeError, OSError):
            # The armed fault killed the server between the durable
            # write and the ack; the in-flight submit's fate is exactly
            # what recovery must resolve.
            crashed = True
        close_clients(clients)
        thread.join_crashed()
        if not crashed or not thread.crashed:
            failures.append(
                "crash_after_wal fault never took the server down "
                f"(client saw crash: {crashed}, "
                f"server crashed: {thread.crashed})"
            )
            return failures
        if plan.armed:
            failures.append(
                f"armed faults never fired: "
                f"{[f.kind for f in plan.armed]}"
            )

        # Restart on the same data dir and finish the workload.
        with ServerThread(
            ServerConfig(workers=2, data_dir=data_dir, recover=True)
        ) as recovered:
            clients = make_clients(recovered.tcp_port)
            recoveries = {}
            for name in sorted(TENANTS):
                info = clients[name].attach("s0")
                # next_seq is the resume cursor: exactly the accepted
                # prefix, whether or not its ack ever arrived.
                cursors[name] = info["next_seq"]
                recoveries[name] = info["recoveries"]
            drive(clients, cursors)
            digests, cycles, resilience = finish(clients)
            tenant_recoveries = {
                name: resilience[name].get(
                    "serve_tenant_recoveries_total", 0
                )
                for name in sorted(TENANTS)
            }
            close_clients(clients)

    for name in sorted(TENANTS):
        match = digests[name] == base_digests[name]
        close = math.isclose(
            cycles[name], base_cycles[name], rel_tol=1e-6
        )
        if not match:
            failures.append(
                f"crash recovery: tenant {name!r} digest "
                f"{digests[name][:16]} != baseline "
                f"{base_digests[name][:16]}"
            )
        if not close:
            failures.append(
                f"crash recovery: tenant {name!r} cycles "
                f"{cycles[name]} != baseline {base_cycles[name]}"
            )
        if recoveries[name] < 1:
            failures.append(
                f"crash recovery: tenant {name!r} session reports "
                "zero recoveries after a crash-restart"
            )
        if tenant_recoveries[name] < 1:
            failures.append(
                f"crash recovery: serve_tenant_recoveries_total stayed "
                f"zero for {name!r}"
            )
        report.append(
            f"  {name:<6} digest={'match' if match else 'MISMATCH'} "
            f"cycles={'match' if close else 'MISMATCH'} "
            f"(residual {abs(cycles[name] - base_cycles[name]):.3g}) "
            f"recoveries={recoveries[name]}"
        )
    check_no_quarantine(resilience, "crash recovery", failures)
    return failures


# -- scenario 2: transport fault sweep ------------------------------------------


#: (kind, op, arm kwargs) — one server run per armed fault.
TRANSPORT_FAULTS = (
    ("torn_response", "submit", {"after_matches": 3}),
    ("drop_connection", "submit", {"after_matches": 4}),
    ("delay_response", "submit", {"after_matches": 2, "delay": 0.02}),
)


def check_transport_faults(
    baseline: tuple, report: list
) -> list[str]:
    failures: list[str] = []
    base_digests, base_cycles, _ = baseline
    for kind, op, kwargs in TRANSPORT_FAULTS:
        plan = ServeFaultPlan(seed=41)
        plan.arm(kind, op=op, **kwargs)
        with tempfile.TemporaryDirectory() as data_dir:
            with ServerThread(
                ServerConfig(
                    workers=2,
                    data_dir=data_dir,
                    enable_chaos=True,
                    fault_plan=plan,
                )
            ) as thread:
                clients = make_clients(thread.tcp_port)
                create_sessions(clients)
                drive(
                    clients, {name: 0 for name in sorted(TENANTS)}
                )
                digests, cycles, resilience = finish(clients)
                close_clients(clients)
        fired = [f.kind for f in plan.fired]
        if plan.armed or fired != [kind]:
            failures.append(
                f"{kind}: fault coverage wrong (armed left: "
                f"{[f.kind for f in plan.armed]}, fired: {fired})"
            )
        mismatches = [
            name
            for name in sorted(TENANTS)
            if digests[name] != base_digests[name]
        ]
        drifted = [
            name
            for name in sorted(TENANTS)
            if not math.isclose(
                cycles[name], base_cycles[name], rel_tol=1e-9
            )
        ]
        if mismatches:
            failures.append(
                f"{kind}: digests diverged from fault-free baseline "
                f"for {mismatches}"
            )
        if drifted:
            failures.append(
                f"{kind}: cycle totals drifted for {drifted}"
            )
        check_no_quarantine(resilience, kind, failures)
        report.append(
            f"  {kind:<16} fired={len(fired)} "
            f"digest={'match' if not mismatches else 'MISMATCH'} "
            f"cycles={'match' if not drifted else 'DRIFT'}"
        )
    return failures


# -- scenario 3: worker kill + failover -----------------------------------------


def check_worker_failover(
    baseline: tuple, report: list
) -> list[str]:
    failures: list[str] = []
    base_digests, _, _ = baseline
    with tempfile.TemporaryDirectory() as data_dir:
        with ServerThread(
            ServerConfig(
                workers=2, data_dir=data_dir, enable_chaos=True
            )
        ) as thread:
            clients = make_clients(thread.tcp_port)
            create_sessions(clients)
            # First half of the traffic on the healthy pool.
            cursors = {name: 0 for name in sorted(TENANTS)}
            half = {
                name: (TENANTS[name]["modifiers"] // (2 * CHUNK))
                * CHUNK
                for name in sorted(TENANTS)
            }
            while any(
                cursors[n] < half[n] for n in sorted(TENANTS)
            ):
                for name in sorted(TENANTS):
                    cur = cursors[name]
                    if cur >= half[name]:
                        continue
                    batch = STREAMS[name][cur : cur + CHUNK]
                    clients[name].submit_with_retry("s0", batch)
                    cursors[name] = cur + len(batch)

            verdict = clients["acme"].kill_worker(0, reason="chaos gate")
            if not verdict["degraded"]:
                failures.append(
                    "kill-worker did not leave the pool degraded"
                )
            if not verdict["restored"]:
                failures.append(
                    "kill-worker restored no sessions (worker 0 "
                    "should have held at least one)"
                )
            try:
                urllib.request.urlopen(
                    f"http://{HOST}:{thread.http_port}/healthz",
                    timeout=30,
                )
                failures.append(
                    "/healthz answered 200 while a worker was dead"
                )
            except urllib.error.HTTPError as err:
                payload = json.loads(err.read().decode("utf-8"))
                if err.code != 503 or not payload.get("degraded"):
                    failures.append(
                        f"/healthz degraded response wrong: "
                        f"{err.code} {payload}"
                    )

            # Every session must still answer, and the rest of the
            # traffic must land on the survivor.
            for name in sorted(TENANTS):
                info = clients[name].attach("s0")
                if not info["worker_alive"]:
                    failures.append(
                        f"failover: tenant {name!r} still bound to a "
                        "dead worker"
                    )
            drive(clients, cursors)
            digests, _, resilience = finish(clients)
            stats = clients["acme"].stats()
            close_clients(clients)

    for worker in stats["workers"]:
        attributed = sum(worker["cycles_by_tenant"].values())
        if not math.isclose(
            attributed, worker["total_cycles"], rel_tol=1e-9
        ):
            failures.append(
                f"failover: worker {worker['index']} attribution sum "
                f"{attributed} != total {worker['total_cycles']}"
            )
    server_metrics = stats["server_metrics"]
    if server_metrics.get("serve_recovery_sessions_total", 0) < 1:
        failures.append(
            "failover: serve_recovery_sessions_total stayed zero"
        )
    if server_metrics.get("serve_workers_dead", 0) != 1:
        failures.append(
            "failover: serve_workers_dead gauge is not 1"
        )
    mismatches = [
        name
        for name in sorted(TENANTS)
        if digests[name] != base_digests[name]
    ]
    if mismatches:
        failures.append(
            f"failover: digests diverged from fault-free baseline "
            f"for {mismatches}"
        )
    check_no_quarantine(resilience, "failover", failures)
    report.append(
        f"  kill worker 0: digest="
        f"{'match' if not mismatches else 'MISMATCH'}, "
        f"failovers={server_metrics.get('serve_recovery_sessions_total', 0):.0f}, "
        f"replay_cycles="
        f"{server_metrics.get('serve_recovery_replay_cycles_total', 0):.0f}"
    )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write", action="store_true",
        help="skip writing results/serve_chaos.txt",
    )
    args = parser.parse_args()

    report: list[str] = []
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as base_dir:
        baseline = run_baseline(base_dir)
    report.append("crash_after_wal -> restart --recover convergence:")
    failures.extend(check_crash_recovery(baseline, report))
    report.append("transport fault sweep (seeded, one fault per run):")
    failures.extend(check_transport_faults(baseline, report))
    report.append("worker kill + failover:")
    failures.extend(check_worker_failover(baseline, report))

    status = "PASS" if not failures else "FAIL"
    report.append(f"serve chaos gate: {status}")
    text = "\n".join(report)
    print(text)
    if failures:
        print("\nserve chaos gate failures:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
    if not args.no_write:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "serve_chaos.txt").write_text(text + "\n")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
