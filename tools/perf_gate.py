"""Perf-regression gate for the vectorized hot paths.

Re-runs the smoke-scale hot-path sweep (``benchmarks/bench_hotpath.py``)
and compares it against the ``gate`` section of the checked-in
``BENCH_hotpath.json``:

* **deterministic outputs** — ledger counters, final cut, partition
  digest and simulated device-seconds must match the baseline exactly.
  A mismatch means the cost-parity or bit-identity contract broke, not
  that the machine is slow, so it always fails the gate.
* **host wall-clock** — the sweep must not regress more than
  ``--tolerance`` (default 20%) over the baseline, with an absolute
  floor so sub-100ms jitter on a loaded machine cannot flake the gate.
* **cut-size host fraction** — the per-batch cut read must stay an
  incremental O(k^2) lookup: its host time may not exceed
  ``CUT_HOST_FRACTION`` of the sweep (plus a jitter floor).  Before the
  incremental accumulator this phase was ~67% of the sweep; anything
  drifting back toward a pool scan fails here.
* **backend parity** — the gate workload re-runs under every *other*
  available compute backend (``repro.core.backend``); ledger counters,
  final cut and partition digest must be identical to the default
  backend's run.

Usage::

    python tools/perf_gate.py            # check against BENCH_hotpath.json
    python tools/perf_gate.py --update   # refresh the gate baseline in place

Exit status 0 = pass, 1 = regression or contract violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from bench_hotpath import run_hotpath  # noqa: E402
from repro.core.backend import available_backends  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"
# Below this absolute slack (seconds) a wall-clock difference is noise,
# not a regression: the smoke sweep itself only takes tens of ms.
ABSOLUTE_FLOOR = 0.05
# The per-batch cut read must stay incremental: at most this fraction
# of the sweep's host time (it was ~0.67 when it re-scanned the pool),
# with an absolute floor below which timer jitter dominates.
CUT_HOST_FRACTION = 0.10
CUT_HOST_FLOOR = 0.01


def run_gate_workload(baseline_gate: dict) -> dict:
    w = baseline_gate["workload"]
    return run_hotpath(
        w["n_vertices"],
        w["batches"],
        seed=w["seed"],
        k=w["k"],
        mode=w["mode"],
    )


def compare(baseline_gate: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []

    for key in ("ledger", "final_cut", "partition_sha256"):
        if baseline_gate[key] != fresh[key]:
            failures.append(
                f"deterministic output {key!r} changed: "
                f"baseline={baseline_gate[key]!r} fresh={fresh[key]!r}"
            )
    for phase, base_dev in baseline_gate["device_seconds"].items():
        got = fresh["device_seconds"][phase]
        if abs(got - base_dev) > 1e-9 * max(1.0, abs(base_dev)):
            failures.append(
                f"simulated device seconds for {phase!r} changed: "
                f"baseline={base_dev} fresh={got} "
                "(cost-parity contract violation)"
            )

    base_host = baseline_gate["host_seconds"]["sweep_total"]
    fresh_host = fresh["host_seconds"]["sweep_total"]
    limit = base_host * (1.0 + tolerance) + ABSOLUTE_FLOOR
    if fresh_host > limit:
        failures.append(
            f"host sweep regressed: {fresh_host:.3f}s > "
            f"{base_host:.3f}s * {1 + tolerance:.2f} + {ABSOLUTE_FLOOR}s"
        )

    cut_host = fresh["host_seconds"].get("cut-size", 0.0)
    cut_limit = CUT_HOST_FRACTION * fresh_host + CUT_HOST_FLOOR
    if cut_host > cut_limit:
        failures.append(
            f"cut-size host time {cut_host:.3f}s exceeds "
            f"{CUT_HOST_FRACTION:.0%} of the {fresh_host:.3f}s sweep "
            f"(+{CUT_HOST_FLOOR}s floor) — the per-batch cut read is "
            "no longer incremental"
        )
    return failures


def check_backend_parity(fresh: dict) -> list[str]:
    """Re-run the gate workload under every other available backend.

    The deterministic outputs must match the default-backend run
    exactly; host time is not compared (that is the whole point of a
    faster backend).
    """
    failures: list[str] = []
    default_name = fresh["workload"].get("backend", "numpy")
    for name in available_backends():
        if name == default_name:
            continue
        w = fresh["workload"]
        other = run_hotpath(
            w["n_vertices"],
            w["batches"],
            seed=w["seed"],
            k=w["k"],
            mode=w["mode"],
            backend=name,
        )
        for key in ("ledger", "final_cut", "partition_sha256"):
            if other[key] != fresh[key]:
                failures.append(
                    f"backend {name!r} diverged from {default_name!r} "
                    f"on {key}: {other[key]!r} != {fresh[key]!r}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help="baseline JSON (default: repo-root BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional host-time regression (default 0.20)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-measure and rewrite the baseline's gate section",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"perf-gate: baseline {args.baseline} not found", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    gate = baseline["gate"]

    fresh = run_gate_workload(gate)

    if args.update:
        baseline["gate"] = fresh
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"perf-gate: baseline gate section updated in {args.baseline}")
        return 0

    failures = compare(gate, fresh, args.tolerance)
    failures += check_backend_parity(fresh)
    base_host = gate["host_seconds"]["sweep_total"]
    fresh_host = fresh["host_seconds"]["sweep_total"]
    print(
        f"perf-gate: host sweep {fresh_host*1e3:.1f}ms "
        f"(baseline {base_host*1e3:.1f}ms), "
        f"ledger {fresh['ledger']['warp_instructions']} instr / "
        f"{fresh['ledger']['transactions']} trans, "
        f"cut {fresh['final_cut']}"
    )
    if failures:
        for msg in failures:
            print(f"perf-gate FAIL: {msg}", file=sys.stderr)
        return 1
    print("perf-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
