"""Serve observability gate: tracing, dashboards, flight recorder.

Drives a seeded two-tenant workload through an in-process
:class:`~repro.serve.server.ServerThread` with one shared
:class:`~repro.obs.distrib.TraceRecorder` wired into both the clients
and the server, and enforces the PR 10 contracts end to end:

* **trace connectivity** — every recorded span belongs to a trace;
  each trace has exactly one root, the ``client.<op>`` span; every
  other span's parent resolves inside the same trace; the trace count
  equals the number of client calls issued; and at least one submit
  trace demonstrably spans all four roles (client span → server op
  span → worker execute span → folded engine spans);
* **exact attribution** — per tenant, the device cycles summed over
  the ``serve.<op>`` op spans equal the scraped
  ``serve_tenant_device_cycles_total`` *bit-exactly* (the server
  mirrors the same settled float into both);
* **deterministic structure** — two runs of the identical seeded
  workload produce bit-identical ``structure_digest()`` views (host
  start/duration are the only fields allowed to differ);
* **live dashboard** — ``GET /debug/dashboard`` returns a
  self-contained HTML page whose embedded dataset agrees exactly with
  an independent parse of the ``/metrics`` scrape;
* **flight recorder** — a chaos ``kill-worker`` leaves a
  ``flightrec-*.jsonl`` dump in the data dir that
  :func:`~repro.obs.distrib.validate_flight` (the ``repro-obs
  flightrec`` checker) accepts, naming the dead worker.

Writes ``results/serve_obs.txt`` and ``results/dashboard.html``
(consumed by ``tools/build_experiments_md.py`` / uploaded by CI).

Usage::

    python tools/serve_obs_gate.py             # run all checks
    python tools/serve_obs_gate.py --no-write  # skip the artifacts

Exit status 0 = pass, 1 = contract violation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graph.modifiers import EdgeInsert  # noqa: E402
from repro.obs.dashboard import (  # noqa: E402
    DASHBOARD_SCHEMA,
    dashboard_data,
    extract_data_block,
)
from repro.obs.distrib import (  # noqa: E402
    TraceRecorder,
    load_flight,
    validate_flight,
)
from repro.serve import (  # noqa: E402
    ServeClient,
    ServerConfig,
    ServerThread,
    build_graph,
)

RESULTS = REPO_ROOT / "results"
HOST = "127.0.0.1"

#: Seeded two-tenant workload (clean insert-only streams, so cycle
#: attribution is exact and no quarantine path fires).
TENANTS = {
    "acme": {
        "graph": {
            "generator": "circuit",
            "args": {"num_vertices": 72, "edge_ratio": 1.3, "seed": 11},
        },
        "k": 3,
        "seed": 4,
        "modifiers": 24,
        "stride": 17,
    },
    "bravo": {
        "graph": {
            "generator": "community",
            "args": {"num_vertices": 64, "edges_per_vertex": 4, "seed": 6},
        },
        "k": 4,
        "seed": 9,
        "modifiers": 18,
        "stride": 23,
    },
}

CHUNK = 6

#: Engine-touching ops the workload issues per tenant, in order.
WORKLOAD_OPS = ("create", "submit", "flush", "digest")


def clean_modifiers(spec: dict) -> list:
    """Deterministic insert-only stream of absent, non-repeating edges."""
    graph = build_graph(spec["graph"])
    nv = spec["graph"]["args"]["num_vertices"]
    stride = spec["stride"]
    out: list = []
    seen: set = set()
    candidate = 0
    while len(out) < spec["modifiers"]:
        u = candidate % nv
        v = (u + stride + candidate // nv) % nv
        candidate += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(EdgeInsert(u=u, v=v))
    return out


STREAMS = {name: clean_modifiers(TENANTS[name]) for name in sorted(TENANTS)}


def http_get(port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://{HOST}:{port}{path}", timeout=30
    ) as response:
        return response.read().decode("utf-8")


def run_traced(data_dir: str) -> dict:
    """One seeded traced run; returns everything the checks consume."""
    recorder = TraceRecorder(session="serve-obs-gate")
    calls = 0
    with ServerThread(
        ServerConfig(
            workers=2,
            data_dir=data_dir,
            trace_recorder=recorder,
            flight_capacity=256,
        )
    ) as thread:
        clients = {
            name: ServeClient(
                HOST,
                thread.tcp_port,
                tenant=name,
                retry_seed=7,
                trace_recorder=recorder,
            )
            for name in sorted(TENANTS)
        }
        for name in sorted(TENANTS):
            spec = TENANTS[name]
            clients[name].create(
                "s0",
                spec["graph"],
                k=spec["k"],
                seed=spec["seed"],
                target_batch_size=CHUNK,
            )
            calls += 1
        for name in sorted(TENANTS):
            stream = STREAMS[name]
            for offset in range(0, len(stream), CHUNK):
                clients[name].submit(
                    "s0", stream[offset : offset + CHUNK]
                )
                calls += 1
        digests = {}
        for name in sorted(TENANTS):
            clients[name].flush("s0", drain=True)
            digests[name] = clients[name].digest("s0")["sha256"]
            calls += 3  # flush + digest + metrics (below)
        tenant_metrics = {
            name: clients[name].metrics()["metrics"]
            for name in sorted(TENANTS)
        }
        for client in clients.values():
            client.close()
        dashboard_html = http_get(thread.http_port, "/debug/dashboard")
        scrape = http_get(thread.http_port, "/metrics")
    return {
        "recorder": recorder,
        "calls": calls,
        "digests": digests,
        "tenant_metrics": tenant_metrics,
        "dashboard_html": dashboard_html,
        "scrape": scrape,
    }


# -- check 1: every span joins one connected, client-rooted trace ---------------


def check_connectivity(run: dict, report: list) -> list[str]:
    failures: list[str] = []
    recorder: TraceRecorder = run["recorder"]
    groups = recorder.traces()
    orphans = groups.pop("", [])
    if orphans:
        failures.append(
            f"{len(orphans)} recorded spans carry no trace context "
            f"(first: {orphans[0].name!r})"
        )
    if len(groups) != run["calls"]:
        failures.append(
            f"trace count {len(groups)} != client calls issued "
            f"{run['calls']} (each call must mint exactly one trace)"
        )
    full_role_traces = 0
    for trace_id in sorted(groups):
        events = groups[trace_id]
        ids = {event.span_id for event in events}
        roots = [e for e in events if e.parent is None]
        if len(roots) != 1:
            failures.append(
                f"trace {trace_id!r} has {len(roots)} roots "
                "(expected exactly the client span)"
            )
            continue
        if not roots[0].name.startswith("client."):
            failures.append(
                f"trace {trace_id!r} is rooted at {roots[0].name!r}, "
                "not a client span"
            )
        broken = [
            e.name
            for e in events
            if e.parent is not None and e.parent not in ids
        ]
        if broken:
            failures.append(
                f"trace {trace_id!r} has spans whose parents resolve "
                f"outside the trace: {broken[:3]}"
            )
        names = {event.name for event in events}
        if (
            any(n.startswith("client.") for n in names)
            and any(
                n == f"serve.{op}" for n in names for op in WORKLOAD_OPS
            )
            and "serve.worker.execute" in names
            and any(
                e.depth >= 3 or e.kind == "kernel" for e in events
            )
        ):
            full_role_traces += 1
    if full_role_traces == 0:
        failures.append(
            "no trace spans all four roles "
            "(client -> server -> worker -> engine)"
        )
    report.append(
        f"  {len(groups)} traces, {len(recorder.events)} spans, "
        f"{full_role_traces} spanning client->server->worker->engine"
    )
    return failures


# -- check 2: op-span cycles == scraped per-tenant cycle counters ----------------


def check_attribution(run: dict, report: list) -> list[str]:
    failures: list[str] = []
    recorder: TraceRecorder = run["recorder"]
    span_cycles = {name: 0.0 for name in sorted(TENANTS)}
    for event in recorder.events:
        trace = event.trace
        if trace is None:
            continue
        tenant = trace.get("tenant")
        if tenant not in span_cycles:
            continue
        if event.name == f"serve.{trace.get('op')}":
            span_cycles[tenant] += event.device_cycles
    for name in sorted(TENANTS):
        scraped = run["tenant_metrics"][name].get(
            "serve_tenant_device_cycles_total", 0.0
        )
        if span_cycles[name] != scraped:
            failures.append(
                f"tenant {name!r}: op-span cycles {span_cycles[name]!r}"
                f" != scraped serve_tenant_device_cycles_total "
                f"{scraped!r} (attribution must be bit-exact)"
            )
        report.append(
            f"  {name:<6} op-span cycles {span_cycles[name]:.1f} "
            f"scrape {scraped:.1f} "
            f"{'exact' if span_cycles[name] == scraped else 'MISMATCH'}"
        )
    return failures


# -- check 3: two seeded runs, bit-identical trace structure ---------------------


def check_determinism(
    run: dict, rerun: dict, report: list
) -> list[str]:
    failures: list[str] = []
    first = run["recorder"].structure_digest()
    second = rerun["recorder"].structure_digest()
    if run["digests"] != rerun["digests"]:
        failures.append(
            "partition digests differ between identical seeded runs"
        )
    if first != second:
        divergence = len(first)
        for index, (a, b) in enumerate(zip(first, second)):
            if a != b:
                divergence = index
                break
        failures.append(
            f"trace structure diverged between identical seeded runs "
            f"(at event {divergence} of {len(first)}/{len(second)})"
        )
    report.append(
        f"  run 1: {len(first)} events, run 2: {len(second)} events, "
        f"structure {'identical' if first == second else 'DIVERGED'}"
    )
    return failures


# -- check 4: /debug/dashboard agrees with the scrape ----------------------------


def check_dashboard(run: dict, report: list) -> list[str]:
    failures: list[str] = []
    page = run["dashboard_html"]
    if not page.lstrip().lower().startswith("<!doctype html"):
        failures.append("/debug/dashboard is not an HTML document")
    for needle in ("<svg", "</html>", DASHBOARD_SCHEMA):
        if needle not in page:
            failures.append(
                f"dashboard page is missing {needle!r}"
            )
    for external in ("<script src=", "<link rel="):
        if external in page:
            failures.append(
                f"dashboard is not self-contained: found {external!r}"
            )
    try:
        embedded = extract_data_block(page)
    except ValueError as err:
        failures.append(f"dashboard data block unreadable: {err}")
        return failures
    independent = dashboard_data(run["scrape"])
    if embedded != independent:
        keys = [
            key
            for key in sorted(set(embedded) | set(independent))
            if embedded.get(key) != independent.get(key)
        ]
        failures.append(
            "dashboard dataset disagrees with an independent parse of "
            f"/metrics (differing keys: {keys})"
        )
    tenants = sorted(embedded.get("tenants", {}))
    report.append(
        f"  {len(page)} bytes, tenants {tenants}, "
        f"dataset {'matches' if embedded == independent else 'MISMATCH'}"
        " the /metrics scrape"
    )
    return failures


# -- check 5: chaos worker kill leaves a valid flight dump -----------------------


def check_flight_dump(report: list) -> list[str]:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as data_dir:
        with ServerThread(
            ServerConfig(
                workers=2,
                data_dir=data_dir,
                enable_chaos=True,
                flight_capacity=256,
            )
        ) as thread:
            clients = {
                name: ServeClient(
                    HOST, thread.tcp_port, tenant=name, retry_seed=7
                )
                for name in sorted(TENANTS)
            }
            for name in sorted(TENANTS):
                spec = TENANTS[name]
                clients[name].create(
                    "s0",
                    spec["graph"],
                    k=spec["k"],
                    seed=spec["seed"],
                    target_batch_size=CHUNK,
                )
                clients[name].submit("s0", STREAMS[name][:CHUNK])
            clients["acme"].kill_worker(0, reason="obs gate")
            dumps = sorted(Path(data_dir).glob("flightrec-*.jsonl"))
            for client in clients.values():
                client.close()
        if not dumps:
            failures.append(
                "kill-worker produced no flightrec-*.jsonl dump"
            )
            return failures
        errors = validate_flight(dumps[-1])
        if errors:
            failures.append(
                f"flight dump fails validation: {errors[0]}"
                + (f" (+{len(errors) - 1} more)" if len(errors) > 1 else "")
            )
            return failures
        header, events = load_flight(dumps[-1])
        if "worker-0-dead" not in header.get("reason", ""):
            failures.append(
                f"flight dump reason {header.get('reason')!r} does not "
                "name the dead worker"
            )
        kinds = sorted({event["kind"] for event in events})
        if "worker_dead" not in kinds:
            failures.append(
                f"flight dump records no worker_dead event ({kinds})"
            )
        if "request" not in kinds:
            failures.append(
                "flight dump holds no request history leading up to "
                f"the fault ({kinds})"
            )
        report.append(
            f"  {dumps[-1].name}: {len(events)} events {kinds}, "
            f"reason {header.get('reason')!r}, validation clean"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="skip writing results/serve_obs.txt and dashboard.html",
    )
    args = parser.parse_args()

    report: list[str] = []
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as data_dir:
        run = run_traced(data_dir)
    with tempfile.TemporaryDirectory() as data_dir:
        rerun = run_traced(data_dir)

    report.append("trace connectivity (client -> server -> worker -> engine):")
    failures.extend(check_connectivity(run, report))
    report.append("per-tenant cycle attribution (op spans vs scrape):")
    failures.extend(check_attribution(run, report))
    report.append("trace structure determinism (two seeded runs):")
    failures.extend(check_determinism(run, rerun, report))
    report.append("/debug/dashboard self-contained HTML:")
    failures.extend(check_dashboard(run, report))
    report.append("chaos worker kill -> flight recorder dump:")
    failures.extend(check_flight_dump(report))

    status = "PASS" if not failures else "FAIL"
    report.append(f"serve obs gate: {status}")
    text = "\n".join(report)
    print(text)
    if failures:
        print("\nserve obs gate failures:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
    if not args.no_write:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "serve_obs.txt").write_text(text + "\n")
        (RESULTS / "dashboard.html").write_text(run["dashboard_html"])
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
