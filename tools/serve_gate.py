"""Serving gate: the ``repro.serve`` contracts, enforced.

Boots an in-process :class:`~repro.serve.server.ServerThread` and
drives a seeded three-tenant workload over **one** shared simulated
device, then asserts the guarantees the serving layer sells:

* **bit-identical hosting** — each tenant's final partition sha256
  equals a standalone :class:`~repro.stream.session.StreamSession` run
  of the same seeded workload (interleaving three tenants on a shared
  device must not perturb anyone's result), including across a
  checkpoint-evict-reattach cycle for one tenant;
* **attribution sums** — per-tenant device-cycle charges on each
  worker sum exactly (``math.isclose``) to that worker's total, and
  every tenant's charge is nonzero;
* **valid scrape** — ``GET /metrics`` parses as Prometheus text format
  0.0.4 (HELP/TYPE discipline, sample syntax, finite values) and
  carries one ``tenant``-labeled sample per tenant for the per-tenant
  series;
* **no shedding at low load** — the baseline workload finishes with a
  zero global shed counter and zero per-tenant sheds;
* **typed shedding under overload** — against a second server with a
  tiny backlog watermark, submits are rejected with the retryable
  ``shed-overload`` code, the shed counter is nonzero, and the
  flush-and-resubmit retry loop still lands every modifier: the same
  overload scenario run twice produces the same digest, and an
  evict/re-attach round-trip preserves it (sheds never corrupt state).

Writes ``results/serve.txt`` (consumed by
``tools/build_experiments_md.py``).

Usage::

    python tools/serve_gate.py             # run all checks
    python tools/serve_gate.py --no-write  # skip the results/ artifact

Exit status 0 = pass, 1 = contract violation.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.graph.modifiers import EdgeDelete, EdgeInsert  # noqa: E402
from repro.partition.config import PartitionConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServerConfig,
    ServerThread,
    ShedPolicy,
    build_graph,
    partition_sha256,
)
from repro.stream.session import StreamSession  # noqa: E402
from repro.utils.errors import ServeError  # noqa: E402

RESULTS = REPO_ROOT / "results"

#: The seeded three-tenant workload: distinct graphs, seeds, and
#: stream lengths so a cross-tenant state leak cannot cancel out.
TENANTS = {
    "acme": {
        "graph": {
            "generator": "circuit",
            "args": {"num_vertices": 400, "edge_ratio": 1.4, "seed": 11},
        },
        "k": 4,
        "seed": 3,
        "modifiers": 120,
        "mod_seed": 101,
    },
    "globex": {
        "graph": {
            "generator": "random",
            "args": {"num_vertices": 300, "edge_ratio": 2.0, "seed": 5},
        },
        "k": 3,
        "seed": 9,
        "modifiers": 90,
        "mod_seed": 202,
    },
    "initech": {
        "graph": {
            "generator": "community",
            "args": {"num_vertices": 350, "edges_per_vertex": 4, "seed": 2},
        },
        "k": 5,
        "seed": 1,
        "modifiers": 100,
        "mod_seed": 303,
    },
}

#: Tenant that additionally goes through checkpoint -> evict ->
#: transparent re-attach mid-stream.
EVICTED_TENANT = "globex"

#: Overload scenario: a deliberately tiny watermark so a short stream
#: trips the shedder.
OVERLOAD = {
    "high_watermark": 8,
    "low_watermark": 0,
    "modifiers": 64,
    "chunk": 4,
}


def make_modifiers(count: int, num_vertices: int, seed: int) -> list:
    """Seeded modifier stream: mostly inserts, some deletes of earlier
    inserts (exercises coalescing through the serving path)."""
    rng = np.random.default_rng(seed)
    out = []
    inserted: list[tuple[int, int]] = []
    for i in range(count):
        if inserted and i % 7 == 6:
            u, v = inserted[int(rng.integers(0, len(inserted)))]
            out.append(EdgeDelete(u=u, v=v))
            continue
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u == v:
            v = (v + 1) % num_vertices
        out.append(EdgeInsert(u=u, v=v))
        inserted.append((u, v))
    return out


def standalone_digest(spec: dict, journal_dir: str) -> str:
    """The reference run: one private StreamSession, same stream."""
    csr = build_graph(spec["graph"])
    session = StreamSession(
        csr,
        PartitionConfig(k=spec["k"], seed=spec["seed"]),
        journal_dir=journal_dir,
        policy="reject",
    )
    session.start()
    nv = spec["graph"]["args"]["num_vertices"]
    for modifier in make_modifiers(
        spec["modifiers"], nv, spec["mod_seed"]
    ):
        session.submit(modifier)
    session.drain()
    digest = partition_sha256(session.partition)
    session.close()
    return digest


# -- Prometheus 0.0.4 validation ------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(\{{[^{{}}]*\}})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$"
)
_LABEL_RE = re.compile(
    rf'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def validate_prometheus(text: str) -> tuple[list[str], dict]:
    """Validate Prometheus text format 0.0.4; return (failures, samples).

    ``samples`` maps metric name -> list of (labels-dict, value).
    """
    failures: list[str] = []
    typed: dict[str, str] = {}
    helped: set[str] = set()
    samples: dict[str, list] = {}
    if text and not text.endswith("\n"):
        failures.append("scrape does not end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not re.fullmatch(_METRIC_NAME, parts[2]):
                failures.append(f"line {lineno}: malformed HELP: {line!r}")
                continue
            if parts[2] in helped:
                failures.append(
                    f"line {lineno}: duplicate HELP for {parts[2]}"
                )
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                failures.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            if parts[2] in typed:
                failures.append(
                    f"line {lineno}: duplicate TYPE for {parts[2]}"
                )
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            failures.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, labelblock, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            failures.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        labels = {}
        if labelblock:
            body = labelblock[1:-1].rstrip(",")
            parsed = _LABEL_RE.findall(body)
            stripped = re.sub(_LABEL_RE, "", body).replace(",", "").strip()
            if stripped:
                failures.append(
                    f"line {lineno}: unparseable label block {labelblock!r}"
                )
            labels = dict(parsed)
        try:
            parsed_value = float(value)
        except ValueError:
            failures.append(f"line {lineno}: bad sample value {value!r}")
            continue
        samples.setdefault(name, []).append((labels, parsed_value))
    return failures, samples


# -- checks ---------------------------------------------------------------------


def check_multi_tenant(report: list) -> list[str]:
    """Baseline scenario: 3 tenants, 1 shared device, bit-identity +
    attribution + scrape validity + zero shed."""
    failures: list[str] = []
    with ServerThread(
        ServerConfig(workers=1)
    ) as server_thread, tempfile.TemporaryDirectory() as tmp:
        clients = {
            name: ServeClient(
                "127.0.0.1", server_thread.tcp_port, tenant=name
            )
            for name in sorted(TENANTS)
        }
        streams = {}
        for name in sorted(TENANTS):
            spec = TENANTS[name]
            clients[name].create(
                "s0", spec["graph"], k=spec["k"], seed=spec["seed"]
            )
            nv = spec["graph"]["args"]["num_vertices"]
            streams[name] = make_modifiers(
                spec["modifiers"], nv, spec["mod_seed"]
            )
        # Interleave submits round-robin so the tenants genuinely share
        # the device rather than running back to back.
        cursors = {name: 0 for name in sorted(TENANTS)}
        chunk = 10
        progressed = True
        while progressed:
            progressed = False
            for name in sorted(TENANTS):
                cur = cursors[name]
                batch = streams[name][cur : cur + chunk]
                if not batch:
                    continue
                clients[name].submit("s0", batch)
                cursors[name] = cur + len(batch)
                progressed = True
                if name == EVICTED_TENANT and cur == chunk * 3:
                    clients[name].checkpoint("s0")
                    clients[name].evict("s0")
                    # Next touch transparently re-attaches via recover.
        digests = {}
        for name in sorted(TENANTS):
            clients[name].flush("s0", drain=True)
            digests[name] = clients[name].digest("s0")["sha256"]

        for name in sorted(TENANTS):
            ref = standalone_digest(
                TENANTS[name], f"{tmp}/{name}-standalone"
            )
            tag = " (with evict/re-attach)" if name == EVICTED_TENANT else ""
            if digests[name] != ref:
                failures.append(
                    f"tenant {name!r}{tag}: hosted sha256 "
                    f"{digests[name][:16]} != standalone {ref[:16]}"
                )
            report.append(
                f"  {name:<8} sha256={digests[name][:16]}.. "
                f"standalone={'match' if digests[name] == ref else 'MISMATCH'}"
                f"{tag}"
            )

        stats = clients["acme"].stats()
        for worker in stats["workers"]:
            by_tenant = worker["cycles_by_tenant"]
            total = worker["total_cycles"]
            attributed = sum(by_tenant.values())
            if not math.isclose(attributed, total, rel_tol=1e-9):
                failures.append(
                    f"worker {worker['index']}: per-tenant cycles sum "
                    f"{attributed} != total {total}"
                )
            missing = sorted(set(TENANTS) - set(by_tenant))
            if missing:
                failures.append(
                    f"worker {worker['index']}: no cycles attributed "
                    f"to {missing}"
                )
            zero = sorted(t for t, c in by_tenant.items() if c <= 0)
            if zero:
                failures.append(
                    f"worker {worker['index']}: zero cycle charge "
                    f"for {zero}"
                )
            report.append(
                f"  worker {worker['index']}: total={total:.0f} cycles, "
                f"attribution residual="
                f"{abs(attributed - total):.3g}"
            )

        scrape = urllib.request.urlopen(
            f"http://127.0.0.1:{server_thread.http_port}/metrics",
            timeout=30,
        )
        content_type = scrape.headers.get("Content-Type", "")
        body = scrape.read().decode("utf-8")
        if "version=0.0.4" not in content_type:
            failures.append(
                f"/metrics Content-Type {content_type!r} does not "
                "declare text format 0.0.4"
            )
        prom_failures, samples = validate_prometheus(body)
        failures.extend(f"/metrics: {f}" for f in prom_failures)
        labeled = samples.get("serve_tenant_requests_total", [])
        seen_tenants = sorted(
            labels.get("tenant", "") for labels, _ in labeled
        )
        if seen_tenants != sorted(TENANTS):
            failures.append(
                "per-tenant series serve_tenant_requests_total carries "
                f"labels {seen_tenants}, expected {sorted(TENANTS)}"
            )
        report.append(
            f"  /metrics: {len(body.splitlines())} lines, "
            f"{len(samples)} metric names, tenants={seen_tenants}"
        )

        shed_total = sum(v for _, v in samples.get("serve_shed_total", []))
        tenant_shed = sum(
            v for _, v in samples.get("serve_tenant_shed_total", [])
        )
        if shed_total != 0 or tenant_shed != 0:
            failures.append(
                f"low-load run shed requests (global={shed_total}, "
                f"tenant={tenant_shed}); expected zero"
            )
        report.append(f"  low-load shed counters: global={shed_total:.0f} "
                      f"tenant={tenant_shed:.0f}")
        for client in clients.values():
            client.close()
    return failures


def _run_overload_scenario() -> tuple[str, int, int, str, str]:
    """One overload run; returns (digest, sheds_seen, shed_counter,
    digest_before_evict, digest_after_reattach)."""
    spec = TENANTS["acme"]
    nv = spec["graph"]["args"]["num_vertices"]
    modifiers = make_modifiers(OVERLOAD["modifiers"], nv, spec["mod_seed"])
    config = ServerConfig(
        workers=1,
        shed=ShedPolicy(
            high_watermark=OVERLOAD["high_watermark"],
            low_watermark=OVERLOAD["low_watermark"],
        ),
    )
    sheds_seen = 0
    with ServerThread(config) as server_thread:
        with ServeClient(
            "127.0.0.1", server_thread.tcp_port, tenant="acme"
        ) as client:
            client.create(
                "s0", spec["graph"], k=spec["k"], seed=spec["seed"]
            )
            pending = list(modifiers)
            while pending:
                batch = pending[: OVERLOAD["chunk"]]
                try:
                    client.submit("s0", batch)
                except ServeError as err:
                    if err.code != "shed-overload":
                        raise
                    if not err.retryable:
                        raise ServeError(
                            "shed-overload response not marked retryable"
                        )
                    sheds_seen += 1
                    client.flush("s0", drain=True)
                    continue  # resubmit the same slice
                pending = pending[OVERLOAD["chunk"]:]
            client.flush("s0", drain=True)
            digest = client.digest("s0")["sha256"]
            stats = client.stats()
            shed_counter = int(
                stats["server_metrics"].get("serve_shed_total", 0)
            )
            client.evict("s0")
            after = client.digest("s0")["sha256"]
    return digest, sheds_seen, shed_counter, digest, after


def check_overload(report: list) -> list[str]:
    """Overload scenario: typed retryable sheds, convergent retries."""
    failures: list[str] = []
    first = _run_overload_scenario()
    second = _run_overload_scenario()
    digest, sheds_seen, shed_counter, before, after = first
    if sheds_seen == 0:
        failures.append(
            "overload run saw no shed-overload rejections "
            f"(watermark={OVERLOAD['high_watermark']})"
        )
    if shed_counter == 0:
        failures.append("serve_shed_total stayed zero under overload")
    if after != before:
        failures.append(
            "evict/re-attach after shedding changed the partition "
            f"({before[:16]} -> {after[:16]})"
        )
    if second[0] != digest:
        failures.append(
            "two identical overload runs diverged "
            f"({digest[:16]} vs {second[0][:16]}); "
            "shedding corrupted state"
        )
    report.append(
        f"  overload: {sheds_seen} typed sheds (client), "
        f"serve_shed_total={shed_counter}, "
        f"rerun={'identical' if second[0] == digest else 'DIVERGED'}, "
        f"evict-roundtrip={'ok' if after == before else 'CORRUPT'}"
    )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write", action="store_true",
        help="skip writing results/serve.txt",
    )
    args = parser.parse_args()

    report: list[str] = []
    failures: list[str] = []

    report.append("multi-tenant bit-identity (3 tenants, 1 shared device):")
    failures.extend(check_multi_tenant(report))
    report.append("overload shedding:")
    failures.extend(check_overload(report))

    status = "PASS" if not failures else "FAIL"
    report.append(f"serve gate: {status}")
    text = "\n".join(report)
    print(text)
    if failures:
        print("\nserve gate failures:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
    if not args.no_write:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "serve.txt").write_text(text + "\n")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
