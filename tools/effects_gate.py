"""Interprocedural effects gate — runs the whole-repo invariant pass.

Three stages, each independently pass/fail:

1. **Fixture self-test** — every invariant in the catalog must fire on
   its seeded-bad fixture tree and stay silent on the corrected twin
   (see :mod:`repro.analysis.effects.fixtures`).  A checker that cannot
   re-find the seeded bugs would let stage 2 pass vacuously.
2. **Repo-wide pass** — call-graph construction + effect inference +
   invariant checking over ``src/repro``, filtered through the shared
   ``tools/analysis_baseline.json``.  Any new finding or stale baseline
   entry fails.
3. **Performance budget** — the whole pass must finish in under the
   budget (default 10s); an analysis too slow for ``make check`` would
   get skipped, and a skipped gate is no gate.

The deterministic report (call-graph stats, per-invariant timing,
findings) is written to ``results/effects.txt``, which
``tools/build_experiments_md.py`` folds into EXPERIMENTS.md.

Usage::

    python tools/effects_gate.py
    python tools/effects_gate.py --budget 30 --no-report

Exit status 0 = pass, 1 = any stage failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Baseline, Finding  # noqa: E402
from repro.analysis.effects import (  # noqa: E402
    EffectsReport,
    format_report,
    run_effects_analysis,
)
from repro.analysis.effects.fixtures import run_selftest  # noqa: E402

BASELINE_PATH = REPO_ROOT / "tools" / "analysis_baseline.json"
REPORT_PATH = REPO_ROOT / "results" / "effects.txt"
DEFAULT_BUDGET_SECONDS = 10.0


def stage_selftest() -> list[str]:
    return [f"fixture self-test: {f}" for f in run_selftest()]


def stage_repo(
    budget: float, report_path: Path | None
) -> tuple[list[str], list[str]]:
    """Run the repo-wide pass.  Returns (failures, notices)."""
    failures: list[str] = []
    notices: list[str] = []
    findings, timing = run_effects_analysis([REPO_ROOT / "src" / "repro"])
    # Baseline keys are repo-relative; relativize before filtering.
    findings = [
        Finding(
            rule=f.rule,
            path=Path(f.path).resolve().relative_to(REPO_ROOT).as_posix(),
            line=f.line,
            message=f.message,
            symbol=f.symbol,
        )
        for f in findings
    ]
    baseline = Baseline.load(BASELINE_PATH)
    new, stale = baseline.filter(findings)
    # Stale entries for *lint* rules are expected here: the shared
    # baseline also covers the per-module rule pack, which this gate
    # does not run.  Only effect-invariant staleness is ours to report.
    invariant_ids = {r.invariant.id for r in timing.results}
    stale = [s for s in stale if any(f"[{i}]" in s for i in invariant_ids)]
    failures.extend(f"new effects finding: {f}" for f in new)
    failures.extend(f"stale baseline entry: {s}" for s in stale)
    notices.append(
        f"{timing.n_functions} functions, "
        f"{len(findings)} finding(s) ({len(new)} new), "
        f"{timing.total_seconds:.2f}s"
    )
    if timing.total_seconds > budget:
        failures.append(
            f"performance budget exceeded: {timing.total_seconds:.2f}s "
            f"> {budget:.0f}s"
        )
    if report_path is not None:
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report = EffectsReport(findings=new, timing=timing)
        report_path.write_text(
            format_report(report, timing.engine), encoding="utf-8"
        )
        notices.append(f"report written to {report_path.relative_to(REPO_ROOT)}")
    return failures, notices


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_SECONDS,
        metavar="SECONDS",
        help="fail when the repo-wide pass takes longer than this "
        f"(default: {DEFAULT_BUDGET_SECONDS:.0f})",
    )
    parser.add_argument(
        "--no-report",
        action="store_true",
        help="skip writing results/effects.txt",
    )
    args = parser.parse_args(argv)

    report_path = None if args.no_report else REPORT_PATH
    repo_failures, notices = stage_repo(args.budget, report_path)
    stages = [
        ("fixture self-test", stage_selftest()),
        ("repo-wide invariants", repo_failures),
    ]
    failed = False
    for name, failures in stages:
        if failures:
            failed = True
            print(f"effects gate: {name} FAILED")
            for failure in failures:
                print(f"  {failure}")
        else:
            print(f"effects gate: {name} ok")
    for notice in notices:
        print(f"effects gate: note: {notice}")
    print("effects gate:", "FAILED" if failed else "PASSED")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
