#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the template and the results/ artifacts.

Run after ``igkway-eval all --iterations 100 --out results/``:

    python tools/build_experiments_md.py
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def artifact(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        raise SystemExit(f"missing {path}; run igkway-eval all first")
    return path.read_text().rstrip()


def obs_artifact() -> str:
    """The obs-gate trace summary; optional (tracing is opt-in)."""
    path = RESULTS / "obs.txt"
    if not path.exists():
        return (
            "(no trace captured on this run; "
            "`python tools/obs_gate.py` writes results/obs.txt)"
        )
    return path.read_text().rstrip()


def serve_artifact() -> str:
    """The serve-gate report; optional (serving is opt-in)."""
    path = RESULTS / "serve.txt"
    if not path.exists():
        return (
            "(no serving run captured; "
            "`python tools/serve_gate.py` writes results/serve.txt)"
        )
    return path.read_text().rstrip()


def serve_chaos_artifact() -> str:
    """The serve chaos-gate report; optional (serving is opt-in)."""
    path = RESULTS / "serve_chaos.txt"
    if not path.exists():
        return (
            "(no chaos run captured; "
            "`python tools/serve_chaos_gate.py` writes "
            "results/serve_chaos.txt)"
        )
    return path.read_text().rstrip()


def optional_artifact(name: str, command: str) -> str:
    """A results/ artifact that an opt-in gate writes; absent is fine."""
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return f"(not captured on this run; `{command}` writes {path.name})"
    return path.read_text().rstrip()


def graph_inventory() -> str:
    from repro.graph import BENCHMARKS, graph_summary, make_benchmark_graph

    lines = [
        f"{'name':<18} {'|V|':>7} {'|E|':>7} {'E/V':>5} {'class':>16} "
        f"{'paper |V|':>11} {'paper |E|':>11}"
    ]
    for name, spec in BENCHMARKS.items():
        csr = make_benchmark_graph(name, seed=0)
        summary = graph_summary(csr)
        lines.append(
            f"{name:<18} {summary['vertices']:>7} {summary['edges']:>7} "
            f"{summary['edge_vertex_ratio']:>5.2f} "
            f"{summary['structure_class']:>16} "
            f"{spec.paper.vertices:>11,} {spec.paper.edges:>11,}"
        )
    return "\n".join(lines)


def main() -> int:
    template = (ROOT / "EXPERIMENTS.md.template").read_text()
    substitutions = {
        "<<TABLE1>>": artifact("table1"),
        "<<FIG1>>": artifact("fig1"),
        "<<FIG6>>": artifact("fig6"),
        "<<FIG7>>": artifact("fig7"),
        "<<FIG8>>": artifact("fig8"),
        "<<ABLATIONS>>": artifact("ablations"),
        "<<SELFCHECK>>": artifact("selfcheck"),
        "<<VARIANCE>>": artifact("variance"),
        "<<OBSTRACE>>": obs_artifact(),
        "<<EFFECTS>>": optional_artifact(
            "effects", "python tools/effects_gate.py"
        ),
        "<<ANALYSIS>>": optional_artifact(
            "analysis", "python tools/analysis_gate.py"
        ),
        "<<SERVE>>": serve_artifact(),
        "<<SERVECHAOS>>": serve_chaos_artifact(),
        "<<GRAPHS>>": graph_inventory(),
    }
    for key, value in substitutions.items():
        if key not in template:
            raise SystemExit(f"template is missing {key}")
        template = template.replace(key, value)
    (ROOT / "EXPERIMENTS.md").write_text(template)
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
