"""Static-analysis and sanitizer gate — the third leg of ``make check``.

Four stages, each independently pass/fail:

1. **Lint** — run the ``repro-lint`` rule pack over ``src``, ``tools``,
   ``benchmarks`` and ``examples`` (NOT ``tests`` — lint fixtures there
   violate rules on purpose) and subtract the checked-in baseline
   ``tools/analysis_baseline.json``.  Any new finding, or any stale
   baseline entry, fails.
2. **Sanitizer self-test** — the deliberately racy fixture kernels must
   be flagged (a silent sanitizer would let stage 3 pass vacuously) and
   the clean fixture must produce zero findings (no false positives).
3. **Sanitized sweep** — the seeded bench_common workload runs under
   shadow-memory mode twice; zero race findings and bit-identical
   access-trace digests are required.
4. **Third-party tools** — ``ruff check`` and ``mypy`` run when the
   executables exist; when they are not installed the stage is skipped
   with a notice (the container does not ship them), never failed.

Usage::

    python tools/analysis_gate.py            # run all stages
    python tools/analysis_gate.py --skip-external

Exit status 0 = pass, 1 = any stage failed.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    Finding,
    get_rules,
    lint_paths,
)
from repro.analysis.fixtures import (  # noqa: E402
    run_clean_kernel,
    run_intra_warp_racy_kernel,
    run_racy_kernel,
)
from repro.analysis.sweep import check_determinism  # noqa: E402

LINT_TARGETS = ("src", "tools", "benchmarks", "examples")
BASELINE_PATH = REPO_ROOT / "tools" / "analysis_baseline.json"


def stage_lint() -> list[str]:
    targets = [REPO_ROOT / t for t in LINT_TARGETS if (REPO_ROOT / t).exists()]
    baseline = Baseline.load(BASELINE_PATH)
    # Baseline keys are repo-relative; lint_paths reports the paths it
    # was given, so relativize before filtering.
    findings = [
        Finding(
            rule=f.rule,
            path=Path(f.path).resolve().relative_to(REPO_ROOT).as_posix(),
            line=f.line,
            message=f.message,
        )
        for f in lint_paths(targets, get_rules())
    ]
    new, stale = baseline.filter(findings)
    failures = [f"new lint finding: {f}" for f in new]
    failures.extend(f"stale baseline entry: {s}" for s in stale)
    return failures


def stage_selftest() -> list[str]:
    failures: list[str] = []
    racy = run_racy_kernel()
    if racy.n_conflicts == 0:
        failures.append(
            "sanitizer self-test: the racy fixture kernel was NOT flagged"
        )
    intra = run_intra_warp_racy_kernel()
    if not any(f.kind == "intra-warp-write" for f in intra.findings):
        failures.append(
            "sanitizer self-test: the intra-warp scatter fixture was "
            "NOT flagged"
        )
    clean = run_clean_kernel()
    if clean.n_conflicts:
        failures.append(
            "sanitizer self-test: the clean fixture kernel produced "
            f"{clean.n_conflicts} false positive(s): "
            + "; ".join(str(f) for f in clean.findings[:3])
        )
    return failures


def stage_sweep() -> list[str]:
    report, problems = check_determinism()
    failures = [f"sanitized sweep determinism: {p}" for p in problems]
    if not report.clean:
        failures.append(
            f"sanitized sweep found {report.n_conflicts} race(s): "
            + "; ".join(str(f) for f in report.findings[:5])
        )
    return failures


def stage_external() -> tuple[list[str], list[str]]:
    """Run ruff/mypy when available.  Returns (failures, notices)."""
    failures: list[str] = []
    notices: list[str] = []
    commands = {
        "ruff": ["ruff", "check", "src", "tools", "benchmarks"],
        "mypy": ["mypy", "--config-file", "pyproject.toml"],
    }
    for tool, cmd in commands.items():
        if shutil.which(tool) is None:
            notices.append(f"{tool} not installed; skipping (config-only)")
            continue
        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, capture_output=True, text=True
        )
        if proc.returncode != 0:
            tail = (proc.stdout + proc.stderr).strip().splitlines()[-15:]
            failures.append(f"{tool} failed:\n  " + "\n  ".join(tail))
    return failures, notices


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-external",
        action="store_true",
        help="skip the ruff/mypy stage even when the tools are installed",
    )
    args = parser.parse_args(argv)

    stages: list[tuple[str, list[str]]] = [
        ("lint", stage_lint()),
        ("sanitizer self-test", stage_selftest()),
        ("sanitized sweep", stage_sweep()),
    ]
    notices: list[str] = []
    if args.skip_external:
        notices.append("external tools skipped (--skip-external)")
    else:
        ext_failures, ext_notices = stage_external()
        stages.append(("external tools", ext_failures))
        notices.extend(ext_notices)

    failed = False
    for name, failures in stages:
        if failures:
            failed = True
            print(f"analysis gate: {name} FAILED")
            for failure in failures:
                print(f"  {failure}")
        else:
            print(f"analysis gate: {name} ok")
    for notice in notices:
        print(f"analysis gate: note: {notice}")
    print("analysis gate:", "FAILED" if failed else "PASSED")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
