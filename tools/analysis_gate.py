"""Static-analysis and sanitizer gate — the third leg of ``make check``.

Five stages, each independently pass/fail:

1. **Lint** — run the ``repro-lint`` rule pack over ``src``, ``tools``,
   ``benchmarks`` and ``examples`` (NOT ``tests`` — lint fixtures there
   violate rules on purpose) and subtract the checked-in baseline
   ``tools/analysis_baseline.json``.  Any new finding, or any stale
   baseline entry, fails.
2. **Effects self-test** — every interprocedural invariant must fire on
   its seeded-bad fixture tree and stay silent on the corrected twin
   (the repo-wide pass itself runs in ``tools/effects_gate.py``).
3. **Sanitizer self-test** — the deliberately racy fixture kernels must
   be flagged (a silent sanitizer would let stage 4 pass vacuously) and
   the clean fixture must produce zero findings (no false positives).
4. **Sanitized sweep** — the seeded bench_common workload runs under
   shadow-memory mode twice; zero race findings and bit-identical
   access-trace digests are required.
5. **Third-party tools** — ``ruff check`` and ``mypy`` run when the
   executables exist; when they are not installed the stage is skipped
   with a notice (the container does not ship them), never failed.

A per-rule timing and finding-count summary is written to
``results/analysis.txt`` so ``tools/build_experiments_md.py`` can fold
it into EXPERIMENTS.md.

Usage::

    python tools/analysis_gate.py            # run all stages
    python tools/analysis_gate.py --skip-external

Exit status 0 = pass, 1 = any stage failed.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    Finding,
    get_rules,
)
from repro.analysis.lintcore import (  # noqa: E402
    iter_python_files,
    load_module,
)
from repro.analysis.effects.fixtures import (  # noqa: E402
    run_selftest as run_effects_selftest,
)
from repro.analysis.fixtures import (  # noqa: E402
    run_clean_kernel,
    run_intra_warp_racy_kernel,
    run_racy_kernel,
)
from repro.analysis.sweep import check_determinism  # noqa: E402

LINT_TARGETS = ("src", "tools", "benchmarks", "examples")
BASELINE_PATH = REPO_ROOT / "tools" / "analysis_baseline.json"
SUMMARY_PATH = REPO_ROOT / "results" / "analysis.txt"

#: (rule id, seconds, total findings pre-baseline) per lint rule —
#: filled by stage_lint, rendered by write_summary.
_rule_rows: list[tuple[str, float, int]] = []


def stage_lint() -> list[str]:
    targets = [REPO_ROOT / t for t in LINT_TARGETS if (REPO_ROOT / t).exists()]
    baseline = Baseline.load(BASELINE_PATH)
    # Parse every module once, then time each rule across the parsed
    # set — findings are identical to one combined lint_paths pass
    # (rules are independent), but the summary gets per-rule wall time
    # without re-parsing the tree per rule.
    findings: list[Finding] = []
    infos = []
    for path in iter_python_files(targets):
        try:
            infos.append(load_module(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=str(path),
                    line=exc.lineno or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    for info in infos:
        findings.extend(info.pragma_findings)
    _rule_rows.clear()
    for rule in get_rules():
        start = time.perf_counter()
        rule_findings = [
            f
            for info in infos
            if rule.applies_to(info)
            for f in rule.check(info)
            if not info.is_allowed(rule.id, f.line)
        ]
        elapsed = time.perf_counter() - start
        _rule_rows.append((rule.id, elapsed, len(rule_findings)))
        findings.extend(rule_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    # Baseline keys are repo-relative; lint_paths reports the paths it
    # was given, so relativize before filtering.
    findings = [
        Finding(
            rule=f.rule,
            path=Path(f.path).resolve().relative_to(REPO_ROOT).as_posix(),
            line=f.line,
            message=f.message,
            symbol=f.symbol,
        )
        for f in findings
    ]
    new, stale = baseline.filter(findings)
    failures = [f"new lint finding: {f}" for f in new]
    failures.extend(f"stale baseline entry: {s}" for s in stale)
    return failures


def stage_effects_selftest() -> list[str]:
    return [f"effects self-test: {f}" for f in run_effects_selftest()]


def write_summary() -> None:
    """Write the per-rule timing/finding table to results/analysis.txt."""
    lines = ["# repro-lint gate summary"]
    lines.append(f"{'rule':24s} {'seconds':>9s} {'findings':>9s}")
    for rule_id, elapsed, count in _rule_rows:
        lines.append(f"{rule_id:24s} {round(elapsed, 4):>9} {count:>9}")
    total_s = sum(r[1] for r in _rule_rows)
    total_n = sum(r[2] for r in _rule_rows)
    lines.append(f"{'total':24s} {round(total_s, 4):>9} {total_n:>9}")
    lines.append("")
    lines.append("(findings are pre-baseline; the gate subtracts")
    lines.append("tools/analysis_baseline.json before failing)")
    SUMMARY_PATH.parent.mkdir(parents=True, exist_ok=True)
    SUMMARY_PATH.write_text("\n".join(lines) + "\n", encoding="utf-8")


def stage_selftest() -> list[str]:
    failures: list[str] = []
    racy = run_racy_kernel()
    if racy.n_conflicts == 0:
        failures.append(
            "sanitizer self-test: the racy fixture kernel was NOT flagged"
        )
    intra = run_intra_warp_racy_kernel()
    if not any(f.kind == "intra-warp-write" for f in intra.findings):
        failures.append(
            "sanitizer self-test: the intra-warp scatter fixture was "
            "NOT flagged"
        )
    clean = run_clean_kernel()
    if clean.n_conflicts:
        failures.append(
            "sanitizer self-test: the clean fixture kernel produced "
            f"{clean.n_conflicts} false positive(s): "
            + "; ".join(str(f) for f in clean.findings[:3])
        )
    return failures


def stage_sweep() -> list[str]:
    report, problems = check_determinism()
    failures = [f"sanitized sweep determinism: {p}" for p in problems]
    if not report.clean:
        failures.append(
            f"sanitized sweep found {report.n_conflicts} race(s): "
            + "; ".join(str(f) for f in report.findings[:5])
        )
    return failures


def stage_external() -> tuple[list[str], list[str]]:
    """Run ruff/mypy when available.  Returns (failures, notices)."""
    failures: list[str] = []
    notices: list[str] = []
    commands = {
        "ruff": ["ruff", "check", "src", "tools", "benchmarks"],
        "mypy": ["mypy", "--config-file", "pyproject.toml"],
    }
    for tool, cmd in commands.items():
        if shutil.which(tool) is None:
            notices.append(f"{tool} not installed; skipping (config-only)")
            continue
        proc = subprocess.run(
            cmd, cwd=REPO_ROOT, capture_output=True, text=True
        )
        if proc.returncode != 0:
            tail = (proc.stdout + proc.stderr).strip().splitlines()[-15:]
            failures.append(f"{tool} failed:\n  " + "\n  ".join(tail))
    return failures, notices


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-external",
        action="store_true",
        help="skip the ruff/mypy stage even when the tools are installed",
    )
    args = parser.parse_args(argv)

    stages: list[tuple[str, list[str]]] = [
        ("lint", stage_lint()),
        ("effects self-test", stage_effects_selftest()),
        ("sanitizer self-test", stage_selftest()),
        ("sanitized sweep", stage_sweep()),
    ]
    write_summary()
    notices: list[str] = []
    if args.skip_external:
        notices.append("external tools skipped (--skip-external)")
    else:
        ext_failures, ext_notices = stage_external()
        stages.append(("external tools", ext_failures))
        notices.extend(ext_notices)

    failed = False
    for name, failures in stages:
        if failures:
            failed = True
            print(f"analysis gate: {name} FAILED")
            for failure in failures:
                print(f"  {failure}")
        else:
            print(f"analysis gate: {name} ok")
    for notice in notices:
        print(f"analysis gate: note: {notice}")
    print("analysis gate:", "FAILED" if failed else "PASSED")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
