"""Observability gate: the ``repro.obs`` contracts, enforced.

Runs a seeded incremental sweep under the span tracer and asserts the
guarantees the rest of the tooling builds on:

* **schema validity** — the emitted JSONL trace passes
  ``repro.obs.validate_trace`` and its Chrome trace-event rendering
  passes ``validate_chrome_trace``;
* **bit-identical attribution** — two traced runs of the same seeded
  workload produce *zero* device-cycle/instruction/transaction delta
  in ``repro-obs diff`` for every span and kernel aggregate (host
  seconds are wall clock and exempt);
* **sum-to-ledger** — depth-0 spans partition the sweep, so their
  device-cycle attributions must sum to the ledger's own total;
* **phase coverage** — the trace contains spans for modification,
  balancing, refinement and the refinement commit;
* **ledger neutrality** — a traced run's ledger counters equal an
  untraced run's exactly (spans observe cost, they never charge it);
* **zero-cost when off** — with no tracer active, ``obs.span`` is one
  module-global read; the gate times the disabled path and fails if a
  no-op span costs more than ``--max-off-ns`` (generous bound so a
  loaded machine cannot flake the gate, tight enough to catch
  accidental work on the disabled path).

The traced run's artifacts are written to ``results/obs_trace.jsonl``
and ``results/obs.txt`` (consumed by ``tools/build_experiments_md.py``).

Usage::

    python tools/obs_gate.py             # run all checks
    python tools/obs_gate.py --no-write  # skip the results/ artifacts

Exit status 0 = pass, 1 = contract violation.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from bench_common import seeded_workload  # noqa: E402

from repro.core.igkway import IGKway  # noqa: E402
from repro.gpusim.context import GpuContext  # noqa: E402
from repro.obs import (  # noqa: E402
    Tracer,
    chrome_trace,
    diff_traces,
    format_summary,
    span,
    validate_chrome_trace,
    validate_trace,
    write_trace,
)
from repro.partition.config import PartitionConfig  # noqa: E402

WORKLOAD = {"n_vertices": 1_200, "batches": 3, "seed": 7, "k": 4}

#: Spans the trace must contain (ISSUE acceptance: modification,
#: balancing, refinement and commit are all attributable).
REQUIRED_SPANS = ("modifiers", "balance", "refine", "refine.commit")

#: Relative slack for float accumulation in the sum-to-ledger check.
SUM_EPSILON = 1e-9


def run_traced(workload: dict) -> tuple[Tracer, object]:
    """One seeded sweep under the tracer; returns (tracer, ledger)."""
    csr, trace = seeded_workload(
        workload["n_vertices"], workload["batches"], seed=workload["seed"]
    )
    ctx = GpuContext()
    ig = IGKway(csr, PartitionConfig(k=workload["k"]), ctx=ctx)
    tracer = Tracer(ledger=ctx.ledger, session="obs-gate")
    with tracer.activate():
        ig.full_partition()
        for batch in trace:
            ig.apply(batch)
    return tracer, ctx.ledger


def run_untraced(workload: dict) -> object:
    """The same sweep with tracing off; returns the ledger."""
    csr, trace = seeded_workload(
        workload["n_vertices"], workload["batches"], seed=workload["seed"]
    )
    ctx = GpuContext()
    ig = IGKway(csr, PartitionConfig(k=workload["k"]), ctx=ctx)
    ig.full_partition()
    for batch in trace:
        ig.apply(batch)
    return ctx.ledger


def check_schema(trace_path: Path) -> list[str]:
    errors = validate_trace(trace_path)
    return [f"trace schema: {e}" for e in errors]


def check_chrome(tracer: Tracer) -> list[str]:
    rendered = chrome_trace(tracer.header(), tracer.events)
    errors = validate_chrome_trace(rendered)
    return [f"chrome export: {e}" for e in errors]


def check_required_spans(tracer: Tracer) -> list[str]:
    names = {e.name for e in tracer.events if e.kind == "span"}
    return [
        f"required span {name!r} missing from trace "
        f"(got {sorted(names)})"
        for name in REQUIRED_SPANS
        if name not in names
    ]


def check_deterministic_attribution(
    first: Tracer, second: Tracer
) -> list[str]:
    """Two seeded runs must diff to zero on every deterministic field."""
    failures: list[str] = []
    diff = diff_traces(first.events, second.events)
    if diff.has_structural_change:
        failures.append(
            "trace structure changed between identical seeded runs: "
            f"only_before={diff.only_before} only_after={diff.only_after}"
        )
    for delta in diff.deltas:
        if (
            delta.device_cycles_delta != 0.0
            or delta.instruction_delta != 0
            or delta.transaction_delta != 0
            or delta.count_delta != 0
        ):
            failures.append(
                f"attribution for {delta.key!r} not bit-identical across "
                f"seeded runs: cycles {delta.device_cycles_delta:+g}, "
                f"instr {delta.instruction_delta:+d}, "
                f"trans {delta.transaction_delta:+d}, "
                f"count {delta.count_delta:+d}"
            )
    return failures


def check_sum_to_ledger(tracer: Tracer, ledger) -> list[str]:
    """Depth-0 spans partition the sweep: cycles must sum to the total."""
    total_seconds = ledger.model.seconds(ledger.total)
    total_cycles = total_seconds * ledger.model.device.clock_ghz * 1e9
    attributed = sum(
        e.device_cycles
        for e in tracer.events
        if e.kind == "span" and e.depth == 0
    )
    slack = SUM_EPSILON * max(1.0, abs(total_cycles))
    if abs(attributed - total_cycles) > slack:
        return [
            "depth-0 span device cycles do not sum to the ledger total: "
            f"attributed={attributed!r} ledger={total_cycles!r}"
        ]
    return []


def check_ledger_neutrality(traced_ledger, untraced_ledger) -> list[str]:
    failures = []
    for counter in ("warp_instructions", "transactions", "atomic_ops"):
        traced = getattr(traced_ledger.total, counter)
        untraced = getattr(untraced_ledger.total, counter)
        if traced != untraced:
            failures.append(
                f"tracer perturbed ledger counter {counter!r}: "
                f"traced={traced} untraced={untraced}"
            )
    return failures


def check_disabled_overhead(max_off_ns: float) -> tuple[list[str], float]:
    """Time ``obs.span`` with no active tracer; must stay unmeasurable."""
    n = 200_000
    # Warm up, then measure the no-op path.
    for _ in range(1_000):
        with span("obs-gate.off"):
            pass
    t0 = time.perf_counter()
    for _ in range(n):
        with span("obs-gate.off"):
            pass
    per_call_ns = (time.perf_counter() - t0) / n * 1e9
    if per_call_ns > max_off_ns:
        return (
            [
                f"tracing-off span cost {per_call_ns:.0f}ns/call exceeds "
                f"{max_off_ns:.0f}ns — the disabled path must stay a "
                "single global read"
            ],
            per_call_ns,
        )
    return [], per_call_ns


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--max-off-ns", type=float, default=5_000.0,
        help="ceiling on one disabled span() in nanoseconds "
        "(default %(default)s; a no-op context manager plus one "
        "global read is ~1µs in CPython)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="skip writing results/obs_trace.jsonl and results/obs.txt",
    )
    args = parser.parse_args(argv)

    first, first_ledger = run_traced(WORKLOAD)
    second, _ = run_traced(WORKLOAD)
    untraced_ledger = run_untraced(WORKLOAD)

    import tempfile

    if args.no_write:
        tmp = tempfile.TemporaryDirectory()
        trace_path = Path(tmp.name) / "obs_trace.jsonl"
    else:
        trace_path = REPO_ROOT / "results" / "obs_trace.jsonl"
    write_trace(first, trace_path)

    failures = check_schema(trace_path)
    failures += check_chrome(first)
    failures += check_required_spans(first)
    failures += check_deterministic_attribution(first, second)
    failures += check_sum_to_ledger(first, first_ledger)
    failures += check_ledger_neutrality(first_ledger, untraced_ledger)
    off_failures, per_call_ns = check_disabled_overhead(args.max_off_ns)
    failures += off_failures

    summary = format_summary(first.events)
    if not args.no_write:
        out = REPO_ROOT / "results" / "obs.txt"
        out.write_text(
            "repro.obs gate summary "
            f"(|V|={WORKLOAD['n_vertices']}, "
            f"batches={WORKLOAD['batches']}, seed={WORKLOAD['seed']}, "
            f"k={WORKLOAD['k']})\n"
            f"tracing-off span cost: {per_call_ns:.0f} ns/call\n\n"
            + summary
            + "\n"
        )

    n_spans = sum(1 for e in first.events if e.kind == "span")
    n_kernels = sum(1 for e in first.events if e.kind == "kernel")
    print(
        f"obs-gate: {n_spans} spans, {n_kernels} kernel aggregates, "
        f"off-path {per_call_ns:.0f}ns/span"
    )
    if failures:
        for msg in failures:
            print(f"obs-gate FAIL: {msg}", file=sys.stderr)
        return 1
    print("obs-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
