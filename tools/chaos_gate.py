#!/usr/bin/env python
"""Chaos gate: prove the fault-tolerance contracts under injected faults.

Three scenarios, every assertion on deterministic simulated-GPU state
(nothing here is wall-clock dependent):

1. **Rollback bit-identity** — for each poison/structural fault class
   and for *both* execution modes (warp and vector), a batch carrying
   the fault must fail and leave the graph + partition at exactly the
   pre-batch sha256 ``state_digest``.  The two modes must also agree on
   every intermediate digest (rolled-back state included), and each
   rollback's ``"rollback"`` ledger section must cost no more device
   time than the failed forward attempt it undoes.

2. **Stream degradation** — a journaled :class:`StreamSession` fed a
   trace with embedded poison and a pool-exhaustion episode must (a)
   apply every healthy modifier (none lost), (b) route every rejection
   into quarantine or the dead-letter ledger (rejections are a subset
   of the injected poison), (c) keep the accounting identity
   ``ingested == applied + coalesced_dropped + dead_lettered +
   quarantine_pending + queue_depth``, and (d) escalate to a full
   rebuild that drains the quarantine once the pool is exhausted.

3. **Journal recovery** — after a simulated crash, recovery from (a)
   the pristine journal, (b) a journal with a torn tail record, and
   (c) a journal whose newest checkpoint is truncated mid-write (falls
   back to the previous checkpoint) must all land bit-identical to the
   uninterrupted run.

Exit status 0 when every check passes, 1 otherwise.  ``--smoke`` runs
the same checks at a reduced scale for CI / the verify loop::

    PYTHONPATH=src python tools/chaos_gate.py --smoke
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (REPO_ROOT / "src",):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

import numpy as np

from repro.core.igkway import IGKway
from repro.core.transaction import state_digest
from repro.gpusim.cost import Counters
from repro.graph.bucketlist import EMPTY
from repro.graph.generators import circuit_graph
from repro.graph.modifiers import EdgeInsert, ModifierBatch
from repro.partition.config import PartitionConfig
from repro.stream.journal import StreamJournal
from repro.stream.scheduler import SchedulerConfig
from repro.stream.session import StreamSession
from repro.utils.errors import CapacityError, ModifierError
from repro.utils.faultinject import (
    FAULT_CLASSES,
    FaultInjector,
    InjectedAbort,
)

POISON_CLASSES = ("duplicate_edge", "missing_edge", "dead_vertex_op")

MODES = ("warp", "vector")


def fresh_edges(graph, rng, count, taken):
    """``count`` deterministic edge inserts the graph does not have.

    ``taken`` accumulates chosen pairs (both orientations) so repeated
    calls — and calls before earlier picks have been applied — never
    produce a duplicate.
    """
    active = graph.active_vertices()
    picks = []
    attempts = 0
    while len(picks) < count:
        attempts += 1
        if attempts > 200 * count:
            raise RuntimeError("could not find enough fresh edges")
        u = int(active[rng.integers(len(active))])
        v = int(active[rng.integers(len(active))])
        if u == v or (u, v) in taken or graph.has_edge(u, v):
            continue
        taken.add((u, v))
        taken.add((v, u))
        picks.append(EdgeInsert(u, v))
    return picks


def _overflow_batch(graph, taken):
    """Inserts on one vertex guaranteed to need a bucket allocation."""
    active = graph.active_vertices()
    u = int(active[0])
    slots = graph.slots(u)
    spare = int((slots == EMPTY).sum())
    picks = []
    for v in active:
        v = int(v)
        if v == u or (u, v) in taken or graph.has_edge(u, v):
            continue
        picks.append(EdgeInsert(u, v))
        if len(picks) > spare:
            return picks
    raise RuntimeError("graph too dense to build an overflow batch")


def _failed_attempt(ig, thunk, expected, failures, label):
    """Run ``thunk`` expecting ``expected``; check digest + cost bound.

    Returns the post-rollback digest (or None when the gate itself
    failed, with the reason appended to ``failures``).
    """
    ledger = ig.ctx.ledger
    pre = state_digest(ig.graph, ig.state)
    before_total = ledger.seconds()
    before_rollback = ledger.seconds("rollback")
    try:
        thunk()
    except expected:
        pass
    else:
        failures.append(f"{label}: fault did not raise {expected}")
        return None
    post = state_digest(ig.graph, ig.state)
    if post != pre:
        failures.append(
            f"{label}: rollback digest mismatch "
            f"({post[:12]} != {pre[:12]})"
        )
        return None
    rollback_s = ledger.seconds("rollback") - before_rollback
    forward_s = (ledger.seconds() - before_total) - rollback_s
    # Recovery cost bound: one rollback is a single kernel launch that
    # scatters the partition snapshot back (fixed cost in the partition
    # size) plus an undo scatter proportional to what the failed attempt
    # managed to write — i.e. a constant floor plus O(forward cost).
    model = ledger.model
    n = ig.state.partition.size
    floor_s = model.seconds(
        Counters(
            kernel_launches=1,
            overlapped_kernel_seconds=model.kernel_seconds(
                2, 2 + (n + 15) // 16
            ),
        )
    )
    allowed_s = floor_s + 4 * max(forward_s, 0.0) + model.kernel_seconds(2, 2)
    if rollback_s > allowed_s:
        failures.append(
            f"{label}: unbounded recovery cost — rollback "
            f"{rollback_s:.3e}s exceeds snapshot-restore floor "
            f"{floor_s:.3e}s + 4x the failed attempt's forward cost "
            f"{forward_s:.3e}s"
        )
    return post


def scenario_rollback(n_vertices, k, seed, rounds):
    """Scenario 1: per-class rollback bit-identity across both modes."""
    failures = []
    per_mode_digests = {}
    per_mode_edges = {}
    for mode in MODES:
        csr = circuit_graph(n_vertices, edge_ratio=1.3, seed=seed)
        ig = IGKway(csr, PartitionConfig(k=k, mode=mode, seed=seed))
        ig.full_partition()
        # Every rollback self-verifies its digest inside apply() too.
        ig.verify_rollback_digest = True
        injector = FaultInjector(seed + 1)
        rng = np.random.default_rng(seed + 2)
        taken = set()
        applied_edges = []
        digests = []
        for round_idx in range(rounds):
            for fault in POISON_CLASSES + ("pool_exhaustion", "kernel_abort"):
                label = f"[{mode}] round {round_idx} {fault}"
                graph = ig.graph
                if fault in POISON_CLASSES:
                    # Healthy work around the poison: the rollback must
                    # undo real writes, not just refuse a bad op.
                    batch = fresh_edges(graph, rng, 3, taken)
                    batch.insert(2, injector.poison(graph, fault))
                    for mod in batch:
                        if isinstance(mod, EdgeInsert):
                            taken.discard((mod.u, mod.v))
                            taken.discard((mod.v, mod.u))
                    digest = _failed_attempt(
                        ig,
                        lambda b=batch: ig.apply(ModifierBatch(b)),
                        ModifierError,
                        failures,
                        label,
                    )
                elif fault == "pool_exhaustion":
                    batch = _overflow_batch(graph, taken)

                    def thunk(b=batch):
                        with injector.pool_exhaustion(graph):
                            ig.apply(ModifierBatch(b))

                    digest = _failed_attempt(
                        ig, thunk, CapacityError, failures, label
                    )
                else:  # kernel_abort
                    batch = fresh_edges(graph, rng, 4, taken)
                    for mod in batch:
                        taken.discard((mod.u, mod.v))
                        taken.discard((mod.v, mod.u))

                    def thunk(b=batch):
                        with injector.kernel_abort(graph, after_writes=3):
                            ig.apply(ModifierBatch(b))

                    digest = _failed_attempt(
                        ig, thunk, InjectedAbort, failures, label
                    )
                if digest is not None:
                    digests.append((label.split("] ")[1], digest))
                # A healthy batch must still apply cleanly after every
                # rollback (no lingering corruption / stuck undo log).
                healthy = fresh_edges(ig.graph, rng, 3, taken)
                ig.apply(ModifierBatch(healthy))
                applied_edges.extend((m.u, m.v) for m in healthy)
                digests.append(
                    ("healthy", state_digest(ig.graph, ig.state))
                )
        ig.validate()
        missing = [
            (u, v) for u, v in applied_edges if not ig.graph.has_edge(u, v)
        ]
        if missing:
            failures.append(
                f"[{mode}] healthy edges lost after recovery: "
                f"{missing[:5]}"
            )
        expected_edges = csr.num_edges + len(applied_edges)
        final_csr, _id_map = ig.graph.to_csr()
        if final_csr.num_edges != expected_edges:
            failures.append(
                f"[{mode}] edge count drifted: {final_csr.num_edges} "
                f"!= initial {csr.num_edges} + healthy "
                f"{len(applied_edges)}"
            )
        per_mode_digests[mode] = digests
        per_mode_edges[mode] = applied_edges
    if per_mode_digests["warp"] != per_mode_digests["vector"]:
        pairs = zip(per_mode_digests["warp"], per_mode_digests["vector"])
        for (step_w, d_w), (_step_v, d_v) in pairs:
            if d_w != d_v:
                failures.append(
                    f"warp/vector digest divergence at step "
                    f"'{step_w}': {d_w[:12]} != {d_v[:12]}"
                )
                break
    checked = len(per_mode_digests["warp"])
    return failures, f"{checked} digests x {len(MODES)} modes"


def _poison_plan(graph, injector, count):
    """Poison drawn from the *initial* graph so it stays poison forever
    (nothing in the healthy trace creates the missing edges, revives
    the dead vertices, or deletes the duplicated ones)."""
    plan = []
    for i in range(count):
        kind = POISON_CLASSES[i % len(POISON_CLASSES)]
        plan.append(injector.poison(graph, kind))
    return plan


def _blocked_pairs(poison):
    pairs = set()
    for mod in poison:
        u = getattr(mod, "u", None)
        v = getattr(mod, "v", None)
        if u is not None and v is not None:
            pairs.add((u, v))
            pairs.add((v, u))
    return pairs


def scenario_stream(n_vertices, k, seed, healthy_count, poison_count):
    """Scenario 2: graceful degradation of a journaled stream."""
    failures = []
    tmp = Path(tempfile.mkdtemp(prefix="chaos_stream_"))
    try:
        csr = circuit_graph(n_vertices, edge_ratio=1.3, seed=seed)
        session = StreamSession(
            csr,
            PartitionConfig(k=k, seed=seed),
            journal_dir=tmp / "journal",
            scheduler=SchedulerConfig(target_batch_size=12),
            checkpoint_every=4,
            max_quarantine=64,
            quarantine_max_attempts=10,
            quarantine_backoff_cycles=1.0,
            escalate_after=3,
        )
        session.start()
        injector = FaultInjector(seed + 1)
        rng = np.random.default_rng(seed + 2)
        graph = session.partitioner.graph
        poison_plan = _poison_plan(graph, injector, poison_count)
        taken = _blocked_pairs(poison_plan)
        healthy = fresh_edges(graph, rng, healthy_count, taken)

        poison_seqs = set()
        healthy_iter = iter(healthy)
        stride = max(1, healthy_count // max(1, poison_count))
        submitted_healthy = []
        for i, mod in enumerate(healthy_iter):
            submitted_healthy.append(mod)
            session.submit(mod)
            if (i + 1) % stride == 0 and poison_plan:
                poison_seqs.add(session.submit(poison_plan.pop(0)))
        for mod in poison_plan:
            poison_seqs.add(session.submit(mod))
        session.drain()

        # Pool-exhaustion episode: enough single-vertex inserts to need
        # an allocation while the pool is pinned at its current fill.
        overflow = _overflow_batch(session.partitioner.graph, taken)
        with injector.pool_exhaustion(session.partitioner.graph):
            for mod in overflow:
                session.submit(mod)
            session.drain()
        # Capacity-starved (healthy!) modifiers sit in quarantine; the
        # next flush after the pool recovers must retry and apply them.
        post_episode = fresh_edges(
            session.partitioner.graph, rng, 3, taken
        )
        for mod in post_episode:
            session.submit(mod)
        session.drain()
        metrics = session.metrics()

        for mod in submitted_healthy + overflow + post_episode:
            if not session.partitioner.graph.has_edge(mod.u, mod.v):
                failures.append(
                    f"stream: healthy edge ({mod.u}, {mod.v}) lost"
                )
                break
        session.partitioner.validate()

        identity = (
            metrics["applied_modifiers"]
            + metrics["coalesced_dropped"]
            + metrics["dead_lettered"]
            + metrics["quarantine_pending"]
            + metrics["queue_depth"]
        )
        if metrics["ingested"] != identity:
            failures.append(
                f"stream: accounting identity broken — ingested "
                f"{metrics['ingested']} != {identity}"
            )
        if metrics["escalations"] < 1:
            failures.append(
                "stream: pool exhaustion never escalated to a rebuild"
            )
        if metrics["quarantine_recovered"] < 1:
            failures.append(
                "stream: no quarantined modifier was ever recovered"
            )

        live_digest = state_digest(
            session.partitioner.graph, session.partitioner.inner.state
        )
        session.close()

        state = StreamJournal(tmp / "journal").load()
        bad_dead = set(state.dead_letters) - poison_seqs
        if bad_dead:
            failures.append(
                f"stream: dead letters outside the injected poison: "
                f"{sorted(bad_dead)[:5]}"
            )
        quarantine_meta = (
            state.meta.get("resilience", {})
            .get("quarantine", {})
            .get("entries", [])
        )
        bad_quarantined = {
            e["s"] for e in quarantine_meta
        } - poison_seqs
        if bad_quarantined:
            failures.append(
                f"stream: quarantined seqs outside the injected "
                f"poison: {sorted(bad_quarantined)[:5]}"
            )

        recovered = StreamSession.recover(tmp / "journal")
        rec_digest = state_digest(
            recovered.partitioner.graph,
            recovered.partitioner.inner.state,
        )
        if rec_digest != live_digest:
            failures.append(
                f"stream: recovery digest {rec_digest[:12]} != live "
                f"{live_digest[:12]}"
            )
        recovered.close()
        summary = (
            f"{metrics['quarantined']} quarantined, "
            f"{metrics['dead_lettered']} dead-lettered, "
            f"{metrics['escalations']} escalations"
        )
        return failures, summary
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def scenario_journal(n_vertices, k, seed, healthy_count, poison_count):
    """Scenario 3: crash recovery survives torn tails and a corrupted
    newest checkpoint (journal-truncation fault class)."""
    failures = []
    tmp = Path(tempfile.mkdtemp(prefix="chaos_journal_"))
    try:
        main_dir = tmp / "main"
        csr = circuit_graph(n_vertices, edge_ratio=1.3, seed=seed)
        session = StreamSession(
            csr,
            PartitionConfig(k=k, seed=seed),
            journal_dir=main_dir,
            scheduler=SchedulerConfig(target_batch_size=8),
            checkpoint_every=2,
            quarantine_backoff_cycles=1e12,  # park poison for good
            escalate_after=10,
        )
        session.start()
        injector = FaultInjector(seed + 1)
        rng = np.random.default_rng(seed + 2)
        graph = session.partitioner.graph
        poison_plan = _poison_plan(graph, injector, poison_count)
        taken = _blocked_pairs(poison_plan)
        healthy = fresh_edges(graph, rng, healthy_count, taken)
        mid = healthy_count // 2
        for mod in healthy[:mid]:
            session.submit(mod)
        for mod in poison_plan:
            session.submit(mod)
        for mod in healthy[mid:]:
            session.submit(mod)
        session.drain()
        live_digest = state_digest(
            session.partitioner.graph, session.partitioner.inner.state
        )
        # Crash: release the log handle, but never checkpoint/close.
        session.journal.close()
        journal = StreamJournal(main_dir)
        if not journal.prev_checkpoint_path.exists():
            failures.append(
                "journal: run too short — no previous checkpoint to "
                "fall back to"
            )

        variants = {"pristine": None}
        torn_dir = tmp / "torn"
        shutil.copytree(main_dir, torn_dir)
        with (torn_dir / "journal.log").open("a") as handle:
            handle.write('{"r":"m","s":999999,"t":"ei","u":0,')
        variants["torn tail"] = torn_dir

        corrupt_dir = tmp / "corrupt"
        shutil.copytree(main_dir, corrupt_dir)
        checkpoint = corrupt_dir / "checkpoint.npz"
        injector.truncate(checkpoint, fraction=0.4)
        variants["corrupt checkpoint"] = corrupt_dir
        variants["pristine"] = main_dir

        for name, directory in variants.items():
            recovered = StreamSession.recover(directory)
            recovered.drain()
            digest = state_digest(
                recovered.partitioner.graph,
                recovered.partitioner.inner.state,
            )
            if digest != live_digest:
                failures.append(
                    f"journal[{name}]: recovered digest {digest[:12]} "
                    f"!= uninterrupted {live_digest[:12]}"
                )
            recovered.journal.close()
        return failures, f"{len(variants)} recovery variants"
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI / the verify loop",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        rollback_scale = dict(n_vertices=300, k=4, rounds=1)
        stream_scale = dict(
            n_vertices=400, k=4, healthy_count=40, poison_count=4
        )
        journal_scale = dict(
            n_vertices=400, k=4, healthy_count=36, poison_count=2
        )
    else:
        rollback_scale = dict(n_vertices=900, k=8, rounds=2)
        stream_scale = dict(
            n_vertices=1200, k=8, healthy_count=120, poison_count=9
        )
        journal_scale = dict(
            n_vertices=1200, k=8, healthy_count=90, poison_count=4
        )

    failures = []
    scenarios = [
        ("rollback bit-identity", scenario_rollback, rollback_scale),
        ("stream degradation", scenario_stream, stream_scale),
        ("journal recovery", scenario_journal, journal_scale),
    ]
    for name, fn, scale in scenarios:
        scenario_failures, summary = fn(seed=args.seed, **scale)
        status = "FAIL" if scenario_failures else "ok"
        print(f"chaos[{name}] {status}: {summary}")
        failures.extend(scenario_failures)

    print(
        f"chaos: fault classes covered: {', '.join(FAULT_CLASSES)} "
        f"({len(FAULT_CLASSES)} classes)"
    )
    if failures:
        print(f"\nchaos gate FAILED ({len(failures)} problems):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("chaos gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
