#!/usr/bin/env python
"""Quickstart: partition a circuit graph, then modify it incrementally.

This walks the whole public API surface in ~60 lines:

1. generate a netlist-like graph,
2. full-partition it with G-kway + constrained coarsening,
3. apply a batch of graph modifiers (the paper's Figure 4 set:
   vertex deletion, vertex insertion, edge deletions/insertions),
4. inspect the refreshed partition, cut size and modeled GPU times.

Run:  python examples/quickstart.py [--vertices 5000] [--k 4]
"""

from __future__ import annotations

import argparse

from repro import IGKway, PartitionConfig
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
    circuit_graph,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=5000)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    print(f"Generating a {args.vertices}-cell netlist-like graph ...")
    csr = circuit_graph(args.vertices, edge_ratio=1.35, seed=args.seed)
    print(f"  |V| = {csr.num_vertices}, |E| = {csr.num_edges}")

    partitioner = IGKway(csr, PartitionConfig(k=args.k, seed=args.seed))
    report = partitioner.full_partition()
    print(
        f"Full partitioning: cut = {report.cut}, balanced = "
        f"{report.balanced}, modeled GPU time = {report.seconds:.4f}s"
    )

    # The Figure 4 modifier set, adapted to this graph: delete a vertex,
    # insert a new one, and rewire a few edges.  Note a vertex deletion
    # implicitly removes its incident edges; a vertex insertion arrives
    # isolated and is wired up by subsequent edge insertions.
    victim = 2
    newcomer = csr.num_vertices  # next free vertex ID
    batch = ModifierBatch(
        [
            VertexDelete(victim),
            VertexInsert(newcomer, weight=1),
            EdgeInsert(newcomer, 10),
            EdgeInsert(newcomer, 11),
            EdgeDelete(0, 1),
            EdgeInsert(0, 20),
        ]
    )
    print(f"\nApplying {len(batch)} modifiers incrementally ...")
    iteration = partitioner.apply(batch)
    print(
        f"  modification time  = {iteration.modification_seconds:.2e}s "
        f"(modeled GPU)"
    )
    print(
        f"  partitioning time  = {iteration.partitioning_seconds:.2e}s "
        f"(modeled GPU)"
    )
    print(f"  cut size           = {iteration.cut}")
    print(f"  balanced           = {iteration.balanced}")
    print(
        f"  affected vertices  = "
        f"{iteration.balance_stats.affected_marked}, of which "
        f"{iteration.balance_stats.pseudo_total} entered the "
        f"pseudo-partition"
    )
    print(
        f"  refinement         = {iteration.refine_stats.rounds} rounds, "
        f"{iteration.refine_stats.moves_applied} vertex moves"
    )
    print(
        f"\nNew vertex {newcomer} landed in partition "
        f"{int(partitioner.partition[newcomer])}"
    )
    partitioner.validate()
    print("All structural invariants hold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
