#!/usr/bin/env python
"""Operational features: kernel profiling, what-if devices, checkpoints.

Three things a team adopting the library needs beyond partitioning:

1. **Profiling** — which simulated kernels dominate an incremental
   iteration (the cost ledger's kernel trace),
2. **What-if analysis** — how modeled runtimes shift on a faster or
   slower device, and why the iG-kway speedup is robust to that,
3. **Checkpointing** — park a long incremental session to disk and
   resume it bit-identically.

Run:  python examples/profiling_and_checkpoint.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GKwayDagger, IGKway, PartitionConfig
from repro.core.serialize import load_partitioner, save_partitioner
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import circuit_graph
from repro.gpusim import A6000, GpuContext, scale_device


def main() -> int:
    csr = circuit_graph(3000, edge_ratio=1.35, seed=11)
    trace = generate_trace(
        csr,
        TraceConfig(iterations=10, modifiers_per_iteration=60, seed=11),
    )

    # -- 1. profiling ---------------------------------------------------------
    ctx = GpuContext()
    ig = IGKway(csr, PartitionConfig(k=4, seed=11), ctx=ctx)
    ig.full_partition()
    ctx.ledger.enable_trace()
    for batch in trace[:5]:
        ig.apply(batch)
    print("Hottest kernels over 5 incremental iterations:")
    print(ctx.ledger.format_trace(limit=8))

    # -- 2. what-if devices ------------------------------------------------------
    print("\nDevice sensitivity (5 iterations, modeled seconds):")
    header = f"{'device':<28} {'iG-kway':>12} {'G-kway†':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for label, device in [
        ("A6000 (calibrated)", A6000),
        ("2x memory bandwidth", scale_device(A6000, memory=2.0)),
        ("4x launch latency", scale_device(A6000, launch=0.25)),
    ]:
        config = PartitionConfig(k=4, seed=11)
        a = IGKway(csr, config, ctx=GpuContext(device))
        b = GKwayDagger(csr, config, ctx=GpuContext(device))
        a.full_partition()
        b.full_partition()
        ig_s = bl_s = 0.0
        for batch in trace[:5]:
            ra = a.apply(batch)
            rb = b.apply(batch)
            ig_s += ra.partitioning_seconds
            bl_s += rb.partitioning_seconds
        print(
            f"{label:<28} {ig_s:>12.5f} {bl_s:>12.5f} "
            f"{bl_s / ig_s:>8.1f}x"
        )

    # -- 3. checkpointing ----------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.npz"
        save_partitioner(ig, path)
        resumed = load_partitioner(path)
        for batch in trace[5:]:
            ig.apply(batch)
            resumed.apply(batch)
        match = (resumed.partition == ig.partition).all()
        print(
            f"\nCheckpoint resume: {path.stat().st_size / 1024:.0f} KiB, "
            f"continued identically = {bool(match)}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
