#!/usr/bin/env python
"""Figure 3 demo: union-find coarsening vs constrained coarsening.

Reproduces the paper's Section IV argument quantitatively: plain
union-find coarsening (G-kway) produces wildly imbalanced coarse vertex
weights, which later frustrates balanced partitioning; the constrained
strategy sorts subset members by their union-find join iteration and
chops them into fixed groups of ``s``, keeping coarse weights flat while
preserving locality.

Run:  python examples/coarsening_demo.py [--vertices 4096]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.graph import mesh_graph_2d
from repro.partition import (
    GKwayPartitioner,
    PartitionConfig,
    build_groups_constrained,
    build_groups_unionfind,
    coarse_weight_imbalance,
    group_vertices,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=4096)
    parser.add_argument("--group-size", type=int, default=6)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    csr = mesh_graph_2d(args.vertices)
    print(
        f"Mesh graph: |V| = {csr.num_vertices}, |E| = {csr.num_edges}\n"
    )

    roots, join_iteration = group_vertices(
        csr, match_iterations=3, seed=args.seed
    )
    subset_sizes = np.bincount(np.bincount(roots, minlength=roots.size))
    print("Union-find subset size histogram (size: count):")
    for size, count in enumerate(subset_sizes):
        if count and size:
            print(f"  {size:>3}: {count}")

    uf_map = build_groups_unionfind(roots)
    con_map = build_groups_constrained(
        roots, join_iteration, args.group_size
    )
    print("\nCoarse vertex weight imbalance (max / mean, lower is better):")
    print(f"  union-find (Figure 3 a) : "
          f"{coarse_weight_imbalance(uf_map, csr.vwgt):.2f}")
    print(f"  constrained (Figure 3 b): "
          f"{coarse_weight_imbalance(con_map, csr.vwgt):.2f}")

    print("\nDownstream effect on a full k=8 partitioning:")
    for strategy in ("unionfind", "constrained"):
        result = GKwayPartitioner(
            PartitionConfig(
                k=8,
                seed=args.seed,
                coarsening=strategy,
                group_size=args.group_size,
            )
        ).partition(csr)
        imbalance = result.part_weights.max() / result.part_weights.mean()
        print(
            f"  {strategy:<12}: cut = {result.cut:>5}, balanced = "
            f"{str(result.balanced):<5}, max/mean weight = {imbalance:.3f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
