#!/usr/bin/env python
"""The Figure 8 quality cliff, and the Section VI.C rescue.

The paper's Figure 8 shows that when modifier batches get large,
iG-kway's incremental refinement loses the plot: the graph drifts away
from the structure the partition was built for, and the cut degrades.
The paper's advice: "applications can resort to FGP ... especially when
the number of graph modifiers reaches 50% of the graph's size."

This example demonstrates both halves on one heavy workload:

* pure iG-kway — fast, but watch the cut climb;
* `AdaptiveIGKway` — same incremental engine, plus the paper's fallback
  policy, which periodically re-partitions and pulls the cut back down
  at a fraction of always-FGP cost;
* G-kway† — the quality reference, at full price.

Run:  python examples/quality_cliff_rescue.py [--iterations 15]
"""

from __future__ import annotations

import argparse

from repro import AdaptiveIGKway, GKwayDagger, IGKway, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import circuit_graph


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=2500)
    parser.add_argument("--iterations", type=int, default=15)
    parser.add_argument("--modifiers", type=int, default=150,
                        help="per iteration; ~6%% of |V| = heavy")
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    csr = circuit_graph(args.vertices, edge_ratio=1.3, seed=args.seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=args.iterations,
            modifiers_per_iteration=args.modifiers,
            seed=args.seed,
        ),
    )
    config = PartitionConfig(k=2, seed=args.seed)
    systems = {
        "iG-kway": IGKway(csr, config),
        "adaptive": AdaptiveIGKway(
            csr, config, volume_threshold=0.25, batch_threshold=0.2
        ),
        "G-kway†": GKwayDagger(csr, config),
    }
    for system in systems.values():
        system.full_partition()

    print(
        f"{args.modifiers} modifiers/iteration on {args.vertices} "
        f"vertices (~{100 * args.modifiers / args.vertices:.0f}% of |V| "
        f"per iteration)\n"
    )
    header = (
        f"{'iter':>5} {'iG cut':>8} {'adaptive':>9} {'G† cut':>8}  "
        f"{'(F = adaptive fell back)'}"
    )
    print(header)
    print("-" * len(header))
    totals = {name: 0.0 for name in systems}
    for index, batch in enumerate(trace):
        row = {}
        flag = " "
        for name, system in systems.items():
            report = system.apply(batch)
            iteration = report.iteration if name == "adaptive" else report
            totals[name] += (
                iteration.modification_seconds
                + iteration.partitioning_seconds
            )
            row[name] = iteration.cut
            if name == "adaptive" and report.used_fallback:
                flag = "F"
        print(
            f"{index:>5} {row['iG-kway']:>8} {row['adaptive']:>8}{flag} "
            f"{row['G-kway†']:>8}"
        )

    print("-" * len(header))
    print("Totals (modeled GPU seconds):")
    for name, seconds in totals.items():
        print(f"  {name:<9} {seconds:>9.4f}s  final cut "
              f"{systems[name].cut_size():>5}")
    fallbacks = systems["adaptive"].fallbacks_taken
    print(
        f"\nThe adaptive policy fell back {fallbacks} time(s): it keeps "
        f"the cut near the from-scratch reference at a fraction of "
        f"G-kway†'s cost — the paper's Section VI.C recommendation, "
        f"operationalized."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
