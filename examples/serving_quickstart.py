#!/usr/bin/env python
"""Tour of the multi-tenant partition server (:mod:`repro.serve`).

One process, two tenants, one shared simulated device.  Each tenant
owns a journaled streaming session on the server and pushes its own
seeded modifier stream over the framed-JSON TCP protocol; the server
multiplexes them over the device pool, attributes every simulated
cycle to the tenant that spent it, and exposes the whole thing as one
Prometheus scrape with per-tenant labels.

The punchline is the last section: hosting changes *nothing about the
math*.  Each tenant's final partition hashes bit-identically to a
standalone ``StreamSession`` run of the same stream — the server adds
multiplexing, quotas, and observability, never drift.

Run:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import urllib.request

import numpy as np

from repro.graph import EdgeInsert, circuit_graph, random_graph
from repro.partition.config import PartitionConfig
from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    partition_sha256,
)
from repro.stream import StreamSession

TENANTS = {
    "acme": {
        "graph": {
            "generator": "circuit",
            "args": {"num_vertices": 400, "edge_ratio": 1.4, "seed": 11},
        },
        "k": 4,
        "seed": 3,
        "mod_seed": 21,
    },
    "globex": {
        "graph": {
            "generator": "random",
            "args": {"num_vertices": 300, "edge_ratio": 2.0, "seed": 5},
        },
        "k": 3,
        "seed": 9,
        "mod_seed": 42,
    },
}

STREAM_LEN = 80


def edge_stream(num_vertices: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(STREAM_LEN):
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u == v:
            v = (v + 1) % num_vertices
        out.append(EdgeInsert(u=u, v=v))
    return out


def standalone_digest(spec: dict, journal_dir: str) -> str:
    """The same workload without a server: one private session."""
    generator = {"circuit": circuit_graph, "random": random_graph}[
        spec["graph"]["generator"]
    ]
    csr = generator(**spec["graph"]["args"])
    session = StreamSession(
        csr,
        PartitionConfig(k=spec["k"], seed=spec["seed"]),
        journal_dir=journal_dir,
        policy="reject",
    )
    session.start()
    nv = spec["graph"]["args"]["num_vertices"]
    for modifier in edge_stream(nv, spec["mod_seed"]):
        session.submit(modifier)
    session.drain()
    digest = partition_sha256(session.partition)
    session.close()
    return digest


def main() -> None:
    print("=== serving quickstart: two tenants, one shared device ===\n")
    with ServerThread(ServerConfig(workers=1)) as server:
        print(
            f"server up: tcp={server.tcp_port} http={server.http_port}\n"
        )
        clients = {
            name: ServeClient(
                "127.0.0.1", server.tcp_port, tenant=name
            )
            for name in sorted(TENANTS)
        }

        # -- create one session per tenant ------------------------------
        for name, client in clients.items():
            spec = TENANTS[name]
            created = client.create(
                "main", spec["graph"], k=spec["k"], seed=spec["seed"]
            )
            print(
                f"[{name}] created session 'main' on worker "
                f"{created['worker']}, initial cut={created['cut']}"
            )

        # -- interleaved streaming --------------------------------------
        streams = {
            name: edge_stream(
                TENANTS[name]["graph"]["args"]["num_vertices"],
                TENANTS[name]["mod_seed"],
            )
            for name in sorted(TENANTS)
        }
        chunk = 10
        for offset in range(0, STREAM_LEN, chunk):
            for name, client in clients.items():
                client.submit(
                    "main", streams[name][offset : offset + chunk]
                )

        # globex goes idle: checkpoint + evict, then touch it again —
        # the server re-attaches transparently from the journal.
        clients["globex"].evict("main")
        print("\n[globex] evicted (journaled, zero device state) ...")
        info = clients["globex"].attach("main")
        print(
            f"[globex] re-attached: live={info['live']} "
            f"evictions={info['evictions']}\n"
        )

        digests = {}
        for name, client in clients.items():
            client.flush("main", drain=True)
            result = client.digest("main")
            digests[name] = result["sha256"]
            print(
                f"[{name}] final cut={result['cut']} "
                f"sha256={result['sha256'][:16]}.."
            )

        # -- the live scrape --------------------------------------------
        url = f"http://127.0.0.1:{server.http_port}/metrics"
        body = urllib.request.urlopen(url, timeout=30).read().decode()
        interesting = [
            line
            for line in body.splitlines()
            if line.startswith("serve_tenant_device_cycles_total")
            or line.startswith("serve_sessions_live")
        ]
        print(f"\ncurl {url}  (excerpt):")
        for line in interesting:
            print(f"  {line}")

        for client in clients.values():
            client.close()

    # -- bit-identity vs standalone -------------------------------------
    print("\n=== hosted vs standalone ===")
    with tempfile.TemporaryDirectory() as tmp:
        for name in sorted(TENANTS):
            ref = standalone_digest(TENANTS[name], f"{tmp}/{name}")
            assert digests[name] == ref, (
                f"{name}: hosted {digests[name][:16]} != standalone "
                f"{ref[:16]}"
            )
            print(
                f"[{name}] standalone sha256={ref[:16]}.. -> "
                "bit-identical to the hosted run"
            )
    print("\nServing is pure plumbing: same bits, now with tenants.")


if __name__ == "__main__":
    main()
