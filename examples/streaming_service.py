#!/usr/bin/env python
"""Tour of the streaming partition service (:mod:`repro.stream`).

The batch-replay API assumes someone upstream already groups modifiers
into well-sized batches.  ``StreamSession`` removes that assumption:
producers push modifiers one at a time and the service handles the
rest — coalescing redundant work, flushing batches sized against the
adaptive fallback thresholds, journaling everything, and recovering
bit-identically after a crash.

The demo shows four moments in a session's life:

1. **Ingest + scheduling** — submit a churny stream one modifier at a
   time; the scheduler picks the batch boundaries.
2. **Coalescing** — flip-flopped edges (insert, delete, re-insert) are
   cancelled before they cost simulated GPU cycles.
3. **Crash** — the process "dies" (we simply abandon the session) with
   work applied since the last checkpoint plus a queued backlog.
4. **Recovery** — ``StreamSession.recover`` replays the journal; final
   cut and partition match an uninterrupted run exactly.

Run:  python examples/streaming_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph import EdgeDelete, EdgeInsert, circuit_graph
from repro.stream import SchedulerConfig, StreamSession
from repro.utils.seeding import make_rng


def churny_stream(csr, seed: int = 3):
    """A per-modifier stream where 30% of edge inserts flip-flop."""
    trace = generate_trace(
        csr,
        TraceConfig(iterations=10, modifiers_per_iteration=40, seed=seed),
    )
    rng = make_rng(seed, "example-churn")
    stream = []
    for batch in trace:
        for modifier in batch:
            stream.append(modifier)
            if isinstance(modifier, EdgeInsert) and rng.random() < 0.3:
                stream.append(EdgeDelete(modifier.u, modifier.v))
                stream.append(modifier)
    return stream


def main() -> int:
    csr = circuit_graph(2000, edge_ratio=1.35, seed=3)
    config = PartitionConfig(k=4, seed=3)
    scheduler = SchedulerConfig(target_batch_size=48)
    stream = churny_stream(csr)
    print(f"Stream of {len(stream)} modifiers over |V|={csr.num_vertices}")

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "journal"

        # -- 1+2: ingest, scheduling, coalescing ------------------------------
        session = StreamSession(
            csr,
            config,
            journal_dir=journal,
            scheduler=scheduler,
            checkpoint_every=4,
        )
        report = session.start()
        print(
            f"Initial full partitioning: cut = {report.cut} "
            f"(modeled {report.seconds:.4f}s)"
        )

        crash_at = int(len(stream) * 0.6)
        for modifier in stream[:crash_at]:
            session.submit(modifier)
        live = session.metrics()
        print(
            f"After {crash_at} submissions: {live['batches']} batches "
            f"applied, coalescing ratio {live['coalescing_ratio']:.1%}, "
            f"queue depth {live['queue_depth']}, "
            f"checkpoints {live['checkpoints_written']}"
        )

        # -- 3: crash ---------------------------------------------------------
        # No close(), no final checkpoint: the journal's checkpoint is
        # stale and the tail lives only in the append-only log.
        print(
            "\n-- simulated crash (session abandoned mid-stream) --\n"
        )
        del session

        # -- 4: recovery ------------------------------------------------------
        recovered = StreamSession.recover(journal)
        print(
            f"Recovered: applied_seq = {recovered.applied_seq}, "
            f"backlog re-queued = {recovered.queue.depth}, "
            f"cut = {recovered.cut_size()}"
        )
        for modifier in stream[crash_at:]:
            recovered.submit(modifier)
        recovered.drain()

        # Reference: the same stream, never interrupted.
        reference = StreamSession(
            csr, config, scheduler=scheduler
        )
        reference.start()
        for modifier in stream:
            reference.submit(modifier)
        reference.drain()

        same_cut = recovered.cut_size() == reference.cut_size()
        same_partition = np.array_equal(
            recovered.partition, reference.partition
        )
        print(
            f"Uninterrupted run cut = {reference.cut_size()}; "
            f"recovered run cut = {recovered.cut_size()}"
        )
        print(
            f"Crash-recovery equivalence: cut match = {same_cut}, "
            f"partition match = {same_partition}"
        )
        final = recovered.metrics()
        print(
            f"\nLifetime telemetry: ingested = {final['ingested']}, "
            f"applied = {final['applied_modifiers']}, coalesced away = "
            f"{final['coalesced_dropped']} "
            f"({final['coalescing_ratio']:.1%}), recoveries = "
            f"{final['recoveries']}, cut drift = "
            f"{final['cut_drift']:.2f}x"
        )
        recovered.close()
        assert same_cut and same_partition
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
