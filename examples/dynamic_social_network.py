#!/usr/bin/env python
"""Non-CAD scenario: partitioning an evolving collaboration network.

The paper evaluates iG-kway on three DIMACS graphs "to demonstrate its
applicability beyond CAD algorithms" (Section VI).  This example plays
that role: a co-authorship network grows over time — new authors join,
collaborations form and dissolve — and a balanced k-way partition is
maintained incrementally, e.g. to shard the network across servers with
minimal cross-shard edges.

Run:  python examples/dynamic_social_network.py [--authors 3000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import IGKway, PartitionConfig
from repro.graph import (
    EdgeDelete,
    EdgeInsert,
    ModifierBatch,
    VertexInsert,
    community_graph,
)
from repro.partition import imbalance
from repro.utils.seeding import make_rng


def growth_batch(partitioner, rng, new_authors, new_edges, drops):
    """One epoch of network evolution, validated against the live graph."""
    graph = partitioner.graph
    batch = ModifierBatch()
    # New authors, each wired to a few existing ones (preferential-ish).
    for _ in range(new_authors):
        author = graph.num_vertices + sum(
            1 for m in batch if isinstance(m, VertexInsert)
        )
        batch.append(VertexInsert(author, weight=1))
        active = graph.active_vertices()
        for collaborator in rng.choice(active, size=3, replace=False):
            batch.append(EdgeInsert(author, int(collaborator)))
    # New collaborations between existing authors.
    active = graph.active_vertices()
    added = 0
    guard = 0
    pending = set()
    while added < new_edges and guard < new_edges * 20:
        guard += 1
        u, v = (int(x) for x in rng.choice(active, size=2, replace=False))
        key = (min(u, v), max(u, v))
        if graph.has_edge(u, v) or key in pending:
            continue
        pending.add(key)
        batch.append(EdgeInsert(u, v))
        added += 1
    # Some collaborations go stale.
    dropped = 0
    guard = 0
    while dropped < drops and guard < drops * 20:
        guard += 1
        u = int(rng.choice(active))
        nbrs = graph.neighbors(u)
        if nbrs.size == 0:
            continue
        v = int(rng.choice(nbrs))
        key = (min(u, v), max(u, v))
        if key in pending:
            continue
        pending.add(key)
        batch.append(EdgeDelete(u, v))
        dropped += 1
    return batch


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--authors", type=int, default=3000)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    csr = community_graph(args.authors, edges_per_vertex=4, seed=args.seed)
    print(
        f"Collaboration network: {csr.num_vertices} authors, "
        f"{csr.num_edges} collaborations, sharded {args.k} ways"
    )
    partitioner = IGKway(
        csr, PartitionConfig(k=args.k, seed=args.seed), capacity_factor=2.0
    )
    fgp = partitioner.full_partition()
    print(f"Initial sharding: cross-shard edges = {fgp.cut}")

    rng = make_rng(args.seed, "growth")
    for epoch in range(args.epochs):
        batch = growth_batch(
            partitioner, rng, new_authors=8, new_edges=25, drops=15
        )
        report = partitioner.apply(batch)
        state = partitioner.state
        imb = imbalance(
            state.part_weights, state.total_weight(), args.k
        )
        print(
            f"epoch {epoch:>2}: {len(batch):>3} events, cross-shard = "
            f"{report.cut:>5}, imbalance = {imb:+.3f}, repartition time "
            f"= {report.partitioning_seconds:.2e}s (modeled GPU)"
        )

    partitioner.validate()
    shards = np.bincount(
        partitioner.partition[partitioner.graph.active_vertices()],
        minlength=args.k,
    )
    print(f"\nFinal shard sizes: {shards.tolist()}")
    print("Graph and partition invariants verified.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
