#!/usr/bin/env python
"""CAD scenario: a timing-driven ECO loop over a circuit graph.

This is the workload the paper's introduction motivates: an optimizer
(here: a mock timing-driven ECO engine) repeatedly perturbs a circuit
netlist — swapping cells, rerouting nets — and after each change needs a
fresh balanced k-way partition to dispatch work to parallel timing
engines.  The loop compares iG-kway against the re-partition-from-
scratch baseline G-kway† on the *same* modifier trace and prints a
Table-I-style summary.

Run:  python examples/incremental_eco_flow.py [--iterations 30]
"""

from __future__ import annotations

import argparse

from repro import GKwayDagger, IGKway, PartitionConfig
from repro.eval.workloads import TraceConfig, generate_trace, trace_summary
from repro.graph import circuit_graph


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=4000)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--modifiers", type=int, default=80)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    csr = circuit_graph(args.vertices, edge_ratio=1.3, seed=args.seed)
    print(
        f"ECO flow on a {csr.num_vertices}-cell / {csr.num_edges}-net "
        f"circuit, k = {args.k}"
    )

    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=args.iterations,
            modifiers_per_iteration=args.modifiers,
            seed=args.seed,
        ),
    )
    print(f"ECO trace: {trace_summary(trace)}")

    config = PartitionConfig(k=args.k, seed=args.seed)
    incremental = IGKway(csr, config)
    baseline = GKwayDagger(csr, config)
    ig_fgp = incremental.full_partition()
    bl_fgp = baseline.full_partition()
    print(
        f"Initial FGP: iG-kway cut {ig_fgp.cut}, G-kway† cut {bl_fgp.cut}"
    )

    ig_time = bl_time = 0.0
    header = (
        f"{'iter':>5} {'mods':>5} {'iG cut':>7} {'G† cut':>7} "
        f"{'iG (s)':>10} {'G† (s)':>10} {'speedup':>8}"
    )
    print("\n" + header)
    print("-" * len(header))
    for index, batch in enumerate(trace):
        ig_report = incremental.apply(batch)
        bl_report = baseline.apply(batch)
        ig_iter = (
            ig_report.modification_seconds
            + ig_report.partitioning_seconds
        )
        bl_iter = (
            bl_report.modification_seconds
            + bl_report.partitioning_seconds
        )
        ig_time += ig_iter
        bl_time += bl_iter
        if index % max(1, args.iterations // 10) == 0:
            print(
                f"{index:>5} {len(batch):>5} {ig_report.cut:>7} "
                f"{bl_report.cut:>7} {ig_iter:>10.2e} {bl_iter:>10.2e} "
                f"{bl_iter / ig_iter:>7.1f}x"
            )

    print("-" * len(header))
    print(
        f"Totals over {args.iterations} ECO iterations (modeled GPU "
        f"seconds):"
    )
    print(f"  iG-kway : {ig_time:.4f}s")
    print(f"  G-kway† : {bl_time:.4f}s")
    print(f"  speedup : {bl_time / ig_time:.1f}x")
    print(
        f"  final cut: iG-kway {incremental.cut_size()}, "
        f"G-kway† {baseline.cut_size()}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
