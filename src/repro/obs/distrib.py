"""Distributed trace context + flight recorder for the serve layer.

The engine tracer (:mod:`repro.obs.tracer`) attributes ledger cycles
exactly, but only *inside one engine*: a request entering
:class:`~repro.serve.client.ServeClient` crosses the framed protocol,
the worker pool, WAL writes, and possibly a failover with no identity
tying those hops together.  This module adds the two pieces that close
the gap:

* :class:`TraceRecorder` — a thread-safe collector of
  :class:`~repro.obs.tracer.TraceEvent` records spanning *processes
  roles* (client, server, worker, engine).  The in-process harness
  (:class:`~repro.serve.server.ServerThread` + blocking client) shares
  one recorder, so span ids allocate from a single counter and every
  parent reference resolves inside one exported JSONL file.  Requests
  carry a ``trace`` field on the wire (:func:`wire_trace` /
  :func:`parse_wire_trace`); every event the request causes — the
  client span, the server op span, the worker execute span, WAL
  appends, engine spans and kernel aggregates — is stamped with the
  same deterministic ``trace_id``, so one trace file reconstructs
  client → server → worker → kernel causality, including retry
  attempts and failover replay.
* :class:`FlightRecorder` — a bounded ring buffer of recent protocol
  events and op spans, dumped to ``data_dir/flightrec-<ts>-<n>.jsonl``
  on worker failure, chaos fault, or unclean shutdown, so every
  injected fault leaves a self-describing artifact
  (``repro-flightrec-v1``; load with :func:`load_flight`, check with
  :func:`validate_flight` or ``repro-obs flightrec``).

Standing contracts, same as the engine tracer's:

* **zero cost when off** — with no recorder configured the client adds
  one attribute read per call and the server skips every trace branch
  on a single ``None`` check (``bench_serve.py`` measures the
  disabled-path cost against the obs-gate bound);
* **ledger-neutral** — recording reads the ledger, never charges it;
* **deterministic structure** — trace ids count requests (never wall
  clock or RNG), span ids allocate sequentially, and every
  device-derived field is exact, so two seeded runs differ only in
  host ``start``/``duration``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.export import write_trace_records
from repro.obs.tracer import TRACE_SCHEMA, TraceEvent

#: Flight-recorder dump schema identifier (header line).
FLIGHT_SCHEMA = "repro-flightrec-v1"

#: Closed set of keys a ``trace`` context dict may carry.
TRACE_CONTEXT_KEYS = ("attempt", "id", "op", "tenant", "worker")

#: Closed set of flight-recorder event kinds.
FLIGHT_KINDS = (
    "crash",
    "fault",
    "recovery",
    "reject",
    "request",
    "response",
    "span",
    "worker_dead",
)


def make_trace_id(tenant: str, op: str, counter: int) -> str:
    """Deterministic trace id: request counter, never clock or RNG."""
    return f"{tenant}/{op}#{counter}"


def wire_trace(
    trace_id: str,
    parent_span: Optional[int] = None,
    attempt: int = 0,
) -> dict:
    """The ``"trace"`` field a request carries on the wire."""
    out: dict = {"id": trace_id, "attempt": attempt}
    if parent_span is not None:
        out["parent"] = parent_span
    return out


def parse_wire_trace(request: dict) -> Optional[dict]:
    """Validate and return a request's ``trace`` field (None if absent).

    Raises ``ValueError`` on a malformed context — the server maps that
    to a typed ``bad-request`` so a corrupt trace header can never be
    mistaken for an untraced request.
    """
    trace = request.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, dict):
        raise ValueError("trace context must be an object")
    if not isinstance(trace.get("id"), str) or not trace["id"]:
        raise ValueError("trace context needs a non-empty string id")
    parent = trace.get("parent")
    if parent is not None and (
        not isinstance(parent, int) or isinstance(parent, bool)
    ):
        raise ValueError("trace context parent must be an integer")
    attempt = trace.get("attempt", 0)
    if not isinstance(attempt, int) or isinstance(attempt, bool):
        raise ValueError("trace context attempt must be an integer")
    if attempt < 0:
        raise ValueError("trace context attempt must be >= 0")
    return {"id": trace["id"], "parent": parent, "attempt": attempt}


class TraceRecorder:
    """Thread-safe distributed-trace event collector.

    One recorder spans every role of an in-process serve harness: the
    blocking client thread and the server's event loop both allocate
    span ids from the same locked counter and append finished events,
    so exported traces have globally unique ids and resolvable parents.
    (Across real processes, export one recorder per process and join on
    the shared ``trace`` ids instead of span parents.)
    """

    def __init__(self, session: str = "serve") -> None:
        self.session = session
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        self._next_id = 0
        self._t_origin = time.perf_counter()

    def now(self) -> float:
        """Host seconds since recorder creation (span timestamps)."""
        return time.perf_counter() - self._t_origin

    def next_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def record_span(
        self,
        name: str,
        trace: Optional[dict] = None,
        parent: Optional[int] = None,
        depth: int = 0,
        span_id: Optional[int] = None,
        start: float = 0.0,
        duration: float = 0.0,
        device_cycles: float = 0.0,
        batch: Optional[int] = None,
    ) -> TraceEvent:
        """Record one finished span; allocates an id unless given one."""
        if span_id is None:
            span_id = self.next_span_id()
        event = TraceEvent(
            kind="span",
            name=name,
            span_id=span_id,
            parent=parent,
            depth=depth,
            batch=batch,
            start=start,
            duration=duration,
            device_cycles=device_cycles,
            trace=dict(trace) if trace is not None else None,
        )
        self.record(event)
        return event

    def fold(
        self,
        events: Iterable[TraceEvent],
        trace: Optional[dict] = None,
        parent: Optional[int] = None,
        base_depth: int = 0,
        start_offset: float = 0.0,
    ) -> List[TraceEvent]:
        """Graft a finished engine tracer's events into this trace.

        The engine :class:`~repro.obs.tracer.Tracer` allocates span ids
        from zero per activation; folding remaps every id through this
        recorder's counter (preserving internal parent/child links),
        re-parents the engine's roots under ``parent``, shifts depths
        by ``base_depth``, stamps the ``trace`` context, and offsets
        host timestamps by ``start_offset`` (the engine tracer's
        activation time on this recorder's clock).
        """
        events = list(events)
        grafted_events: List[TraceEvent] = []
        with self._lock:
            mapping: Dict[int, int] = {}
            for event in events:
                mapping[event.span_id] = self._next_id
                self._next_id += 1
            for event in events:
                grafted = TraceEvent(
                    kind=event.kind,
                    name=event.name,
                    span_id=mapping[event.span_id],
                    parent=(
                        mapping[event.parent]
                        if event.parent is not None
                        else parent
                    ),
                    depth=event.depth + base_depth,
                    batch=event.batch,
                    start=event.start + start_offset,
                    duration=event.duration,
                    warp_instructions=event.warp_instructions,
                    transactions=event.transactions,
                    atomic_ops=event.atomic_ops,
                    kernel_launches=event.kernel_launches,
                    device_seconds=event.device_seconds,
                    device_cycles=event.device_cycles,
                    section=event.section,
                    count=event.count,
                    trace=dict(trace) if trace is not None else None,
                )
                self._events.append(grafted)
                grafted_events.append(grafted)
        return grafted_events

    # -- results -------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of every recorded event (safe to iterate)."""
        with self._lock:
            return list(self._events)

    def header(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "session": self.session,
            "has_ledger": True,
        }

    def traces(self) -> Dict[str, List[TraceEvent]]:
        """Events grouped by trace id, in recording order.

        Events with no trace context group under ``""``.
        """
        groups: Dict[str, List[TraceEvent]] = {}
        for event in self.events:
            key = ""
            if event.trace is not None:
                key = str(event.trace.get("id", ""))
            groups.setdefault(key, []).append(event)
        return groups

    def export(self, path: "str | Path") -> Path:
        """Write the recorded trace as ``repro-trace-v1`` JSONL."""
        return write_trace_records(self.header(), self.events, path)

    def structure_digest(self) -> List[tuple]:
        """Host-time-free view of the trace, for determinism checks.

        Two seeded runs must produce identical digests: everything but
        the host ``start``/``duration`` fields, in recording order.
        """
        digest: List[tuple] = []
        for event in self.events:
            trace = event.trace
            digest.append(
                (
                    event.kind,
                    event.name,
                    event.span_id,
                    event.parent,
                    event.depth,
                    event.batch,
                    event.warp_instructions,
                    event.transactions,
                    event.atomic_ops,
                    event.kernel_launches,
                    event.device_cycles,
                    event.section,
                    event.count,
                    (
                        tuple(sorted(trace.items()))
                        if trace is not None
                        else None
                    ),
                )
            )
        return digest


class FlightRecorder:
    """Bounded ring of recent spans + protocol events, dumped on faults.

    Always-on and cheap: each record is a small dict appended to a
    ``deque(maxlen=capacity)``; nothing touches the ledger.  The server
    dumps the ring to ``<dir>/flightrec-<ts>-<n>.jsonl`` when a worker
    dies, a chaos fault fires, or the process "crashes" uncleanly —
    the dump *is* the black box for the post-mortem.
    """

    def __init__(self, capacity: int = 512, session: str = "serve"):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.session = session
        self._lock = threading.Lock()
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._recorded = 0
        self.dumps: List[Path] = []

    def record(self, kind: str, **fields) -> None:
        """Append one event to the ring (oldest entries roll off)."""
        if kind not in FLIGHT_KINDS:
            raise ValueError(f"unknown flight event kind {kind!r}")
        with self._lock:
            record = {"kind": kind, "seq": self._seq}
            self._seq += 1
            record.update(fields)
            self._ring.append(record)
            self._recorded += 1

    def note_span(self, event: TraceEvent) -> None:
        """Ring one finished op span (compact: name/trace/cycles)."""
        self.record(
            "span",
            name=event.name,
            span_id=event.span_id,
            trace=dict(event.trace) if event.trace is not None else None,
            device_cycles=event.device_cycles,
            duration=event.duration,
        )

    def snapshot(self) -> List[dict]:
        with self._lock:
            return [dict(r) for r in self._ring]

    def dump(self, directory: "str | Path", reason: str) -> Path:
        """Write the ring to a self-describing JSONL artifact.

        The filename carries a wall timestamp plus a per-recorder dump
        counter, so several faults in one second never collide.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        path = directory / (
            f"flightrec-{stamp}-{len(self.dumps)}.jsonl"
        )
        records = self.snapshot()
        header = {
            "schema": FLIGHT_SCHEMA,
            "session": self.session,
            "reason": reason,
            "capacity": self.capacity,
            "recorded_total": self._recorded,
            "events": len(records),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in records
        )
        path.write_text("\n".join(lines) + "\n")
        self.dumps.append(path)
        return path


def load_flight(path: "str | Path") -> Tuple[dict, List[dict]]:
    """Read a flight-recorder dump; raises ``ValueError`` if invalid."""
    errors = validate_flight(path)
    if errors:
        raise ValueError(
            f"{path}: invalid flight dump: {errors[0]}"
            + (f" (+{len(errors) - 1} more)" if len(errors) > 1 else "")
        )
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    header = json.loads(lines[0])
    return header, [json.loads(line) for line in lines[1:]]


def validate_flight(path: "str | Path") -> List[str]:
    """Schema-check a flight dump; returns all violations (empty = ok)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable flight dump: {exc}"]
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["empty flight dump (missing header line)"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: header is not valid JSON: {exc}"]
    if (
        not isinstance(header, dict)
        or header.get("schema") != FLIGHT_SCHEMA
    ):
        errors.append(
            f"line 1: header schema must be {FLIGHT_SCHEMA!r}"
        )
    elif header.get("events") != len(lines) - 1:
        errors.append(
            f"line 1: header says {header.get('events')} events, "
            f"file has {len(lines) - 1}"
        )
    prev_seq: Optional[int] = None
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: event is not an object")
            continue
        kind = record.get("kind")
        if kind not in FLIGHT_KINDS:
            errors.append(
                f"line {lineno}: kind must be one of {FLIGHT_KINDS}"
            )
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            errors.append(f"line {lineno}: seq must be an integer")
        else:
            if prev_seq is not None and seq <= prev_seq:
                errors.append(
                    f"line {lineno}: seq {seq} is not increasing"
                )
            prev_seq = seq
    return errors
