"""Typed metrics registry: counters, gauges, and histograms.

The streaming telemetry, scheduler, quarantine, and transaction layer
all publish into a :class:`MetricsRegistry`; exporters render one
registry as a flat dict (eval/JSON), Prometheus text exposition, or a
block in a report.  The registry is deliberately minimal — a name maps
to exactly one typed instrument, re-registering with the same type
returns the existing instrument, and re-registering with a different
type raises — so independent components can share a registry without
coordination.

Exports are *sorted by metric name* (and histogram buckets by bound):
two registries that saw the same updates in different orders serialize
identically, the contract the ``flushes_by_reason`` checkpoint bug
taught us to hold everywhere (see ``StreamTelemetry.as_dict``).

Usage::

    registry = MetricsRegistry()
    flushes = registry.counter("stream_flushes_total", "windows flushed")
    flushes.inc()
    print(registry.to_prometheus())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds-flavored).
DEFAULT_BUCKETS: tuple = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, float("inf"),
)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def sync(self, value: Number) -> None:
        """Set the absolute value (telemetry snapshot publishing).

        Counters normally only :meth:`inc`; ``sync`` exists for
        components like :class:`~repro.stream.telemetry.StreamTelemetry`
        that own their own monotonic counts and mirror them into a
        registry after the fact.
        """
        self.value = value


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    help: str = ""
    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an observation lands in every bucket
    whose bound is >= the value, plus ``sum``/``count``.
    """

    name: str
    help: str = ""
    buckets: Sequence[float] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        bounds = sorted(float(b) for b in self.buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: Number) -> None:
        self.sum += float(value)
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def quantile_bound(self, q: float) -> float:
        """Upper bound of the bucket containing quantile ``q``."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cumulative in zip(self.buckets, self.counts):
            if cumulative >= rank:
                return bound
        return self.buckets[-1]


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed store of typed instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def _register(
        self, cls: type, name: str, help: str, **kwargs: object
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name=name, help=help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        """Flat ``{name: value}`` snapshot, sorted by name.

        Histograms flatten to ``name_sum`` / ``name_count`` plus
        per-bucket ``name_bucket_<le>`` entries.
        """
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}_count"] = metric.count
                out[f"{name}_sum"] = metric.sum
                for bound, cnt in zip(metric.buckets, metric.counts):
                    out[f"{name}_bucket_{_format_bound(bound)}"] = cnt
            else:
                out[name] = metric.value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_format_value(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for bound, cnt in zip(metric.buckets, metric.counts):
                    lines.append(
                        f'{name}_bucket{{le="{_format_bound(bound)}"}} {cnt}'
                    )
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def merge_into(dest: MetricsRegistry, src: MetricsRegistry) -> None:
    """Fold ``src``'s instruments into ``dest`` by name, summing values.

    The serving layer aggregates one scrape per tenant out of several
    per-session registries: counters and gauges add, histograms add
    bucket counts / sum / count (and must agree on bucket bounds).
    Registering a name under two different types — or two bucket
    layouts — raises, mirroring :class:`MetricsRegistry`'s own
    single-type contract.
    """
    for name in sorted(src._metrics):
        metric = src._metrics[name]
        if isinstance(metric, Counter):
            dest.counter(name, metric.help).inc(metric.value)
        elif isinstance(metric, Gauge):
            dest.gauge(name, metric.help).inc(metric.value)
        else:
            merged = dest.histogram(
                name, metric.help, buckets=metric.buckets
            )
            if merged.buckets != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{merged.buckets} vs {metric.buckets}"
                )
            merged.sum += metric.sum
            merged.count += metric.count
            for i, cnt in enumerate(metric.counts):
                merged.counts[i] += cnt


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def to_prometheus_labeled(
    registries: "dict[str, MetricsRegistry]", label: str
) -> str:
    """Render several registries as one labeled Prometheus exposition.

    ``registries`` maps a label *value* (e.g. a tenant name) to that
    tenant's registry.  Metrics sharing a name across registries are
    grouped under a single ``# HELP`` / ``# TYPE`` header — required by
    the text format — with one sample per label value, sorted by metric
    name then label value.  A name registered with different instrument
    types in two registries raises :class:`TypeError`.
    """
    by_name: Dict[str, List[tuple]] = {}
    for value in sorted(registries):
        registry = registries[value]
        for name in sorted(registry._metrics):
            by_name.setdefault(name, []).append(
                (value, registry._metrics[name])
            )
    lines: List[str] = []
    for name in sorted(by_name):
        samples = by_name[name]
        first = samples[0][1]
        for _value, metric in samples[1:]:
            if type(metric) is not type(first):
                raise TypeError(
                    f"metric {name!r} registered as "
                    f"{type(first).__name__} and "
                    f"{type(metric).__name__} across labeled registries"
                )
        help_text = next((m.help for _v, m in samples if m.help), "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        if isinstance(first, Counter):
            lines.append(f"# TYPE {name} counter")
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {name} gauge")
        else:
            lines.append(f"# TYPE {name} histogram")
        for value, metric in samples:
            pair = f'{label}="{escape_label_value(value)}"'
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{{{pair}}} {_format_value(metric.value)}"
                )
            else:
                for bound, cnt in zip(metric.buckets, metric.counts):
                    lines.append(
                        f'{name}_bucket{{{pair},le='
                        f'"{_format_bound(bound)}"}} {cnt}'
                    )
                lines.append(
                    f"{name}_sum{{{pair}}} {_format_value(metric.sum)}"
                )
                lines.append(f"{name}_count{{{pair}}} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else repr(bound)


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: Process-wide registry for cross-cutting counters whose owners have
#: no natural registry handle (e.g. transactional rollbacks).  Sessions
#: and benches create their own registries; this one is for code that
#: fires rarely and from deep inside the core layers.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT


def reset_default_registry() -> MetricsRegistry:
    """Swap in a fresh default registry (tests)."""
    global _DEFAULT
    _DEFAULT = MetricsRegistry()
    return _DEFAULT
