"""Trace and metrics exporters: JSONL, Chrome trace-event, Prometheus.

Three render targets for one trace:

* **JSONL** (``repro-trace-v1``) — the on-disk interchange format; a
  header line followed by one :class:`~repro.obs.tracer.TraceEvent`
  record per line, keys sorted so seeded runs diff cleanly.
* **Chrome trace-event JSON** — open ``chrome://tracing`` (or Perfetto)
  and load the file to see the sweep as a flamegraph: spans become
  complete (``"ph": "X"``) slices on the host timeline with their
  ledger attribution in ``args``; kernel aggregates become instant
  events at their span's start so device work stays visible without
  inventing fake host durations.
* **Prometheus text** — lives on :class:`~repro.obs.metrics.MetricsRegistry`
  (:meth:`to_prometheus`); re-exported here for discoverability.

:func:`validate_trace` / :func:`validate_chrome_trace` implement the
schema checks ``tools/obs_gate.py`` gates on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.obs.tracer import TRACE_SCHEMA, TraceEvent, Tracer

#: Required keys of one JSONL event record, with their allowed types.
_EVENT_FIELDS: dict = {
    "kind": str,
    "name": str,
    "span_id": int,
    "parent": (int, type(None)),
    "depth": int,
    "batch": (int, type(None)),
    "start": (int, float),
    "duration": (int, float),
    "warp_instructions": int,
    "transactions": int,
    "atomic_ops": int,
    "kernel_launches": int,
    "device_seconds": (int, float),
    "device_cycles": (int, float),
    "section": (str, type(None)),
    "count": int,
}

#: Optional keys (with allowed types): absent in traces written before
#: the field existed, so old ``repro-trace-v1`` files stay valid.
_OPTIONAL_EVENT_FIELDS: dict = {
    "trace": (dict, type(None)),
}

#: Keys a ``trace`` context dict may carry (closed set), with types.
_TRACE_CONTEXT_FIELDS: dict = {
    "attempt": int,
    "id": str,
    "op": str,
    "parent": (int, type(None)),
    "tenant": str,
    "worker": int,
}

_EVENT_KINDS = ("span", "kernel")


def write_trace(
    tracer: Tracer, path: "str | Path"
) -> Path:
    """Serialize a finished tracer to a JSONL trace file."""
    return write_trace_records(
        tracer.header(), tracer.events, path
    )


def write_trace_records(
    header: dict,
    events: Iterable[TraceEvent],
    path: "str | Path",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(event.as_dict(), sort_keys=True) for event in events
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: "str | Path") -> Tuple[dict, List[TraceEvent]]:
    """Read a JSONL trace back into (header, events).

    Raises ``ValueError`` on schema violations — callers that want a
    report instead use :func:`validate_trace`.
    """
    errors, header, events = _parse(Path(path).read_text())
    if errors:
        raise ValueError(
            f"{path}: invalid trace: {errors[0]}"
            + (f" (+{len(errors) - 1} more)" if len(errors) > 1 else "")
        )
    assert header is not None
    return header, events


def validate_trace(path: "str | Path") -> List[str]:
    """Schema-check a JSONL trace; returns all violations (empty = ok)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable trace file: {exc}"]
    errors, _header, _events = _parse(text)
    return errors


def _parse(
    text: str,
) -> Tuple[List[str], Optional[dict], List[TraceEvent]]:
    errors: List[str] = []
    events: List[TraceEvent] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["empty trace file (missing header line)"], None, []
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: header is not valid JSON: {exc}"], None, []
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        errors.append(
            f"line 1: header schema must be {TRACE_SCHEMA!r}, "
            f"got {header.get('schema') if isinstance(header, dict) else header!r}"
        )
    records: List[Tuple[int, dict]] = []
    seen_ids: set = set()
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON: {exc}")
            continue
        event_errors = _check_event(record, lineno, seen_ids)
        if event_errors:
            errors.extend(event_errors)
            continue
        seen_ids.add(record["span_id"])
        records.append((lineno, record))
    # Parent references are checked against the whole trace: child
    # spans close (and are emitted) before their parents.
    for lineno, record in records:
        parent = record["parent"]
        if parent is not None and parent not in seen_ids:
            errors.append(
                f"line {lineno}: parent {parent} does not exist in trace"
            )
            continue
        events.append(TraceEvent(**record))
    return errors, (header if isinstance(header, dict) else None), events


def _check_event(record: object, lineno: int, seen_ids: set) -> List[str]:
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"line {lineno}: event is not an object"]
    for key, types in _EVENT_FIELDS.items():
        if key not in record:
            errors.append(f"line {lineno}: missing field {key!r}")
        elif not isinstance(record[key], types) or isinstance(
            record[key], bool
        ):
            errors.append(
                f"line {lineno}: field {key!r} has type "
                f"{type(record[key]).__name__}"
            )
    for key, types in _OPTIONAL_EVENT_FIELDS.items():
        if key in record and not isinstance(record[key], types):
            errors.append(
                f"line {lineno}: field {key!r} has type "
                f"{type(record[key]).__name__}"
            )
    extra = sorted(
        set(record) - set(_EVENT_FIELDS) - set(_OPTIONAL_EVENT_FIELDS)
    )
    if extra:
        errors.append(f"line {lineno}: unknown fields {extra}")
    if errors:
        return errors
    errors.extend(_check_trace_context(record.get("trace"), lineno))
    if errors:
        return errors
    if record["kind"] not in _EVENT_KINDS:
        errors.append(
            f"line {lineno}: kind must be one of {_EVENT_KINDS}"
        )
    if record["span_id"] in seen_ids:
        errors.append(
            f"line {lineno}: duplicate span_id {record['span_id']}"
        )
    for key in ("duration", "device_seconds", "device_cycles", "count"):
        if record[key] < 0:
            errors.append(f"line {lineno}: field {key!r} is negative")
    return errors


def _check_trace_context(trace: object, lineno: int) -> List[str]:
    """Validate one event's optional distributed-trace context."""
    if trace is None:
        return []
    assert isinstance(trace, dict)  # type-checked by the caller
    errors: List[str] = []
    extra = sorted(set(trace) - set(_TRACE_CONTEXT_FIELDS))
    if extra:
        errors.append(
            f"line {lineno}: unknown trace context keys {extra}"
        )
    if not isinstance(trace.get("id"), str) or not trace.get("id"):
        errors.append(
            f"line {lineno}: trace context needs a non-empty string id"
        )
    for key, types in _TRACE_CONTEXT_FIELDS.items():
        if key == "id":
            continue
        if key in trace and (
            not isinstance(trace[key], types)
            or isinstance(trace[key], bool)
        ):
            errors.append(
                f"line {lineno}: trace context key {key!r} has type "
                f"{type(trace[key]).__name__}"
            )
    return errors


# -- Chrome trace-event export ----------------------------------------------

#: Phases the exporter emits (complete slices and instant events).
_CHROME_PHASES = ("X", "i")


def chrome_trace(
    header: dict, events: Iterable[TraceEvent]
) -> dict:
    """Render a trace as Chrome trace-event JSON (object format).

    Spans map to complete events (``ph: "X"``, microsecond timestamps
    on the host timeline); kernel aggregates map to instant events at
    their parent span's start, carrying the device attribution in
    ``args`` so the flamegraph tooltip shows modeled cycles next to
    host time.
    """
    events = list(events)
    span_start = {
        e.span_id: e.start for e in events if e.kind == "span"
    }
    trace_events: List[dict] = []
    for event in events:
        args = {
            "batch": event.batch,
            "warp_instructions": event.warp_instructions,
            "transactions": event.transactions,
            "device_seconds": event.device_seconds,
            "device_cycles": event.device_cycles,
            "count": event.count,
        }
        if event.section is not None:
            args["section"] = event.section
        if event.trace is not None:
            args["trace"] = {
                key: event.trace[key] for key in sorted(event.trace)
            }
        if event.kind == "span":
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "ts": event.start * 1e6,
                    "dur": event.duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "cat": "span",
                    "args": args,
                }
            )
        else:
            ts = span_start.get(event.parent, 0.0) * 1e6
            trace_events.append(
                {
                    "name": f"kernel:{event.name}",
                    "ph": "i",
                    "ts": ts,
                    "s": "t",
                    "pid": 1,
                    "tid": 1,
                    "cat": "kernel",
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": header.get("schema", TRACE_SCHEMA),
            "session": header.get("session", ""),
        },
    }


def write_chrome_trace(
    header: dict, events: Iterable[TraceEvent], path: "str | Path"
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(header, events), indent=2) + "\n"
    )
    return path


def validate_chrome_trace(document: "dict | str | Path") -> List[str]:
    """Check a Chrome trace-event document against the format's rules.

    Accepts the parsed object or a path to the JSON file.  Checks the
    object form: a ``traceEvents`` array whose entries carry ``name``,
    ``ph``, ``pid``, ``tid`` and a non-negative numeric ``ts``;
    complete events (``X``) additionally need a non-negative ``dur``,
    instant events (``i``) a scope ``s``.
    """
    if not isinstance(document, dict):
        try:
            document = json.loads(Path(document).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable chrome trace: {exc}"]
    errors: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents array"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"traceEvents[{i}]: not an object")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                errors.append(f"traceEvents[{i}]: missing {key!r}")
        ph = event.get("ph")
        if ph not in _CHROME_PHASES:
            errors.append(
                f"traceEvents[{i}]: unsupported phase {ph!r}"
            )
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"traceEvents[{i}]: ts must be a number >= 0")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"traceEvents[{i}]: complete event needs dur >= 0"
                )
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            errors.append(
                f"traceEvents[{i}]: instant event needs scope s in g/p/t"
            )
    return errors
