"""repro.obs — unified tracing, metrics, and trace-diff attribution.

The observability layer over the whole stack (docs/ARCHITECTURE.md
section 11):

* :mod:`repro.obs.tracer` — the span tracer.  Hot paths bracket phases
  with :func:`span`; a :class:`Tracer` activated around a run attaches
  host wall time, ledger deltas (warp instructions, transactions,
  modeled device seconds/cycles) and batch/session correlation ids to
  every span, plus per-kernel aggregates via the cost ledger's
  ``obs_hook``.  Zero cost when no tracer is active (one global read —
  the same bar shadow mode meets).
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms in a
  :class:`MetricsRegistry`; the streaming telemetry, scheduler,
  quarantine and transaction layer publish here.
* :mod:`repro.obs.export` — JSONL (``repro-trace-v1``), Prometheus
  text, and Chrome trace-event exporters with schema validators.
* :mod:`repro.obs.diff` — per-phase regression attribution between two
  traces (the ``repro-obs diff`` command).
* :mod:`repro.obs.distrib` — distributed trace context for the serve
  layer (:class:`TraceRecorder`, wire ``trace`` propagation) plus the
  crash :class:`FlightRecorder` (``repro-flightrec-v1`` dumps).
* :mod:`repro.obs.dashboard` — self-contained HTML dashboard rendered
  from one Prometheus scrape (``GET /debug/dashboard`` /
  ``repro-obs dashboard``).

Quickstart::

    from repro.obs import Tracer, span, write_trace

    tracer = Tracer(ledger=ig.ctx.ledger, session="sweep")
    with tracer.activate():
        for batch in trace:
            ig.apply(batch)
    write_trace(tracer, "run.jsonl")
    # then: repro-obs summary run.jsonl / repro-obs chrome run.jsonl
"""

from repro.obs.dashboard import (
    dashboard_data,
    extract_data_block,
    parse_prometheus,
    render_dashboard,
)
from repro.obs.diff import (
    PhaseAggregate,
    PhaseDelta,
    TraceDiff,
    aggregate,
    diff_traces,
    event_key,
    format_diff,
    format_summary,
    summarize,
)
from repro.obs.export import (
    chrome_trace,
    load_trace,
    validate_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_trace,
    write_trace_records,
)
from repro.obs.distrib import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    TraceRecorder,
    load_flight,
    make_trace_id,
    parse_wire_trace,
    validate_flight,
    wire_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    escape_label_value,
    merge_into,
    reset_default_registry,
    to_prometheus_labeled,
)
from repro.obs.tracer import (
    TRACE_SCHEMA,
    TraceEvent,
    Tracer,
    active_tracer,
    span,
)

__all__ = [
    "FLIGHT_SCHEMA",
    "TRACE_SCHEMA",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseAggregate",
    "PhaseDelta",
    "TraceDiff",
    "TraceEvent",
    "TraceRecorder",
    "Tracer",
    "active_tracer",
    "aggregate",
    "chrome_trace",
    "dashboard_data",
    "default_registry",
    "diff_traces",
    "event_key",
    "extract_data_block",
    "format_diff",
    "format_summary",
    "load_flight",
    "load_trace",
    "escape_label_value",
    "make_trace_id",
    "merge_into",
    "parse_prometheus",
    "parse_wire_trace",
    "render_dashboard",
    "reset_default_registry",
    "span",
    "summarize",
    "to_prometheus_labeled",
    "validate_chrome_trace",
    "validate_flight",
    "validate_trace",
    "wire_trace",
    "write_chrome_trace",
    "write_trace",
    "write_trace_records",
]
