"""``repro-obs``: trace tooling for the observability layer.

Five subcommands::

    repro-obs diff before.jsonl after.jsonl   # regression attribution
    repro-obs summary trace.jsonl             # per-span cost table
    repro-obs chrome trace.jsonl -o out.json  # flamegraph export
    repro-obs dashboard scrape.prom -o d.html # HTML dashboard
    repro-obs flightrec flightrec-*.jsonl     # validate a flight dump

``diff`` exits 1 when the traces disagree on *deterministic* evidence —
a nonzero device-cycle delta or a phase appearing/disappearing — or,
with ``--fail-on-host``, when host time regressed beyond the noise
floor.  Two seeded runs of the same revision must diff to zero (the
``tools/obs_gate.py`` contract).

``python -m repro.obs.cli ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.obs.dashboard import render_dashboard
from repro.obs.diff import (
    HOST_ABSOLUTE_FLOOR,
    diff_traces,
    format_diff,
    format_summary,
)
from repro.obs.distrib import load_flight, validate_flight
from repro.obs.export import (
    load_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.tracer import TraceEvent


def _load_or_die(path: Path) -> "tuple[dict, list[TraceEvent]]":
    errors = validate_trace(path)
    if errors:
        for error in errors[:10]:
            print(f"repro-obs: {path}: {error}", file=sys.stderr)
        raise SystemExit(1)
    return load_trace(path)


def cmd_diff(args: argparse.Namespace) -> int:
    _before_header, before = _load_or_die(args.before)
    _after_header, after = _load_or_die(args.after)
    diff = diff_traces(before, after)
    print(
        format_diff(
            diff,
            top=args.top,
            tolerance=args.host_tolerance,
            floor=args.host_floor,
        )
    )
    if args.json is not None:
        payload = {
            "only_before": diff.only_before,
            "only_after": diff.only_after,
            "deltas": [
                {
                    "key": d.key,
                    "device_cycles_delta": d.device_cycles_delta,
                    "host_delta_seconds": d.host_delta,
                    "instruction_delta": d.instruction_delta,
                    "transaction_delta": d.transaction_delta,
                    "count_delta": d.count_delta,
                }
                for d in diff.deltas
            ],
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
    failed = bool(diff.device_regressions()) or diff.has_structural_change
    if args.fail_on_host and diff.host_regressions(
        args.host_tolerance, args.host_floor
    ):
        failed = True
    return 1 if failed else 0


def cmd_summary(args: argparse.Namespace) -> int:
    _header, events = _load_or_die(args.trace)
    print(format_summary(events, top=args.top))
    return 0


def cmd_chrome(args: argparse.Namespace) -> int:
    header, events = _load_or_die(args.trace)
    out = args.out
    if out is None:
        out = args.trace.with_suffix(".chrome.json")
    write_chrome_trace(header, events, out)
    print(f"repro-obs: wrote {out} (open in chrome://tracing or Perfetto)")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    scrape = args.scrape.read_text()
    page = render_dashboard(
        scrape, title=args.title, slo_seconds=args.slo
    )
    out = args.out
    if out is None:
        out = args.scrape.with_suffix(".html")
    out.write_text(page)
    print(f"repro-obs: wrote {out}")
    return 0


def cmd_flightrec(args: argparse.Namespace) -> int:
    failed = False
    for path in args.dumps:
        errors = validate_flight(path)
        if errors:
            failed = True
            for error in errors[:10]:
                print(f"repro-obs: {path}: {error}", file=sys.stderr)
            continue
        header, events = load_flight(path)
        kinds: dict = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        summary = ", ".join(
            f"{kind}={kinds[kind]}" for kind in sorted(kinds)
        )
        print(
            f"{path}: valid ({header['reason']}; "
            f"{len(events)} events: {summary or 'empty'})"
        )
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Trace diffing, summaries and flamegraph export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser(
        "diff", help="attribute host/device deltas between two traces"
    )
    p_diff.add_argument("before", type=Path)
    p_diff.add_argument("after", type=Path)
    p_diff.add_argument("--top", type=int, default=10)
    p_diff.add_argument(
        "--host-tolerance",
        type=float,
        default=0.20,
        help="fractional host-time slack per phase (default 0.20)",
    )
    p_diff.add_argument(
        "--host-floor",
        type=float,
        default=HOST_ABSOLUTE_FLOOR,
        help="absolute host-seconds noise floor (default %(default)s)",
    )
    p_diff.add_argument(
        "--fail-on-host",
        action="store_true",
        help="also exit 1 on host-time regressions (default: only "
        "deterministic device-cycle deltas fail)",
    )
    p_diff.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write the full delta list as JSON here",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_summary = sub.add_parser(
        "summary", help="per-span host/device cost table of one trace"
    )
    p_summary.add_argument("trace", type=Path)
    p_summary.add_argument("--top", type=int, default=20)
    p_summary.set_defaults(func=cmd_summary)

    p_chrome = sub.add_parser(
        "chrome", help="export a trace as chrome://tracing JSON"
    )
    p_chrome.add_argument("trace", type=Path)
    p_chrome.add_argument("-o", "--out", type=Path, default=None)
    p_chrome.set_defaults(func=cmd_chrome)

    p_dash = sub.add_parser(
        "dashboard",
        help="render a /metrics scrape as a self-contained HTML page",
    )
    p_dash.add_argument(
        "scrape", type=Path, help="Prometheus text scrape file"
    )
    p_dash.add_argument("-o", "--out", type=Path, default=None)
    p_dash.add_argument(
        "--title", default="repro-serve dashboard"
    )
    p_dash.add_argument(
        "--slo",
        type=float,
        default=0.025,
        help="latency SLO line in seconds (default %(default)s)",
    )
    p_dash.set_defaults(func=cmd_dashboard)

    p_flight = sub.add_parser(
        "flightrec",
        help="validate and summarize flight-recorder dumps",
    )
    p_flight.add_argument("dumps", type=Path, nargs="+")
    p_flight.set_defaults(func=cmd_flightrec)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
