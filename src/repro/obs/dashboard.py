"""Per-tenant live dashboard: self-contained HTML over one scrape.

``render_dashboard`` turns one Prometheus text exposition — exactly
what ``GET /metrics`` returns — into a single dependency-free HTML
page: per-tenant op-latency histograms with the serve SLO threshold
drawn on them, device-cycle attribution, shed/quota rejections, and
worker-pool health.  The server mounts it at ``GET /debug/dashboard``;
``repro-obs dashboard`` renders the same page from a scrape file or a
live endpoint.

Two contracts keep the page honest:

* **numbers come from the scrape, nothing else** — the page embeds its
  parsed dataset as a ``<script type="application/json">`` block
  (:func:`dashboard_data`), so ``tools/serve_obs_gate.py`` can assert
  the dashboard agrees with the scrape byte-for-byte;
* **no dependencies, no JS** — charts are server-rendered inline SVG
  with native ``<title>`` hover tooltips, and every figure also
  appears in a plain table (the accessibility relief for low-contrast
  marks).

The categorical palette (3 slots max; extra tenants fold into a table
row) and its dark-mode steps were validated for CVD separation,
normal-vision separation, and surface contrast in both modes.
"""

from __future__ import annotations

import html
import json
import re
from typing import Dict, List, Optional, Tuple

#: Schema tag of the embedded JSON data block.
DASHBOARD_SCHEMA = "repro-dashboard-v1"

#: Metric-name prefix of the per-op serve latency histograms
#: (``repro.serve.quotas``); ops are discovered from the scrape.
LATENCY_PREFIX = "serve_tenant_op_latency_seconds_"

#: Default latency objective drawn on every histogram — mirrors
#: ``repro.serve.quotas.SERVE_LATENCY_SLO_SECONDS`` (an exact bucket
#: bound, so SLO compliance is one cumulative bucket read).
DEFAULT_SLO_SECONDS = 0.025

#: Validated categorical slots (light, dark): tenants beyond three
#: keep their table rows but share the overflow color.
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70")
_OVERFLOW_LIGHT = "#52514e"
_OVERFLOW_DARK = "#c3c2b7"

_SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def parse_prometheus(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse text exposition into ``{name: [(labels, value), ...]}``.

    Comment (``# HELP`` / ``# TYPE``) and blank lines are skipped;
    unparsable sample lines raise ``ValueError`` — a dashboard fed a
    corrupt scrape must fail loudly, not render zeros.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"scrape line {lineno} is not a metric sample: {line!r}"
            )
        name, raw_labels, raw_value = match.groups()
        labels = {
            key: _unescape(val)
            for key, val in _LABEL_RE.findall(raw_labels or "")
        }
        try:
            value = float(raw_value)
        except ValueError as err:
            raise ValueError(
                f"scrape line {lineno} has non-numeric value "
                f"{raw_value!r}"
            ) from err
        samples.setdefault(name, []).append((labels, value))
    return samples


def _by_tenant(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]],
    name: str,
) -> Dict[str, float]:
    return {
        labels["tenant"]: value
        for labels, value in samples.get(name, [])
        if "tenant" in labels
    }


def _scalar(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]],
    name: str,
) -> Optional[float]:
    for labels, value in samples.get(name, []):
        if not labels:
            return value
    return None


def dashboard_data(
    scrape: str, slo_seconds: float = DEFAULT_SLO_SECONDS
) -> dict:
    """Extract the dashboard's dataset from one scrape.

    This dict *is* the page's embedded JSON block — the gate parses
    the served HTML and asserts these figures equal its own read of
    ``/metrics``.  Bucket bounds keep their scrape spelling
    (``"+Inf"`` included) so the comparison never rounds.
    """
    samples = parse_prometheus(scrape)
    tenants = sorted(
        set(_by_tenant(samples, "serve_tenant_requests_total"))
        | set(_by_tenant(samples, "serve_tenant_device_cycles_total"))
    )
    ops = sorted(
        {
            name[len(LATENCY_PREFIX):-len("_bucket")]
            for name in samples
            if name.startswith(LATENCY_PREFIX)
            and name.endswith("_bucket")
        }
    )
    data: dict = {
        "schema": DASHBOARD_SCHEMA,
        "slo_seconds": slo_seconds,
        "ops": ops,
        "tenants": {},
        "workers": {
            "alive": _scalar(samples, "serve_workers_alive") or 0.0,
            "dead": _scalar(samples, "serve_workers_dead") or 0.0,
        },
        "server": {
            "requests_total": (
                _scalar(samples, "serve_requests_total") or 0.0
            ),
            "rejected_total": (
                _scalar(samples, "serve_rejected_total") or 0.0
            ),
            "flight_dumps_total": (
                _scalar(samples, "serve_flight_dumps_total") or 0.0
            ),
        },
    }
    for tenant in tenants:
        latency: dict = {}
        for op in ops:
            base = f"{LATENCY_PREFIX}{op}"
            buckets = sorted(
                (
                    (labels["le"], value)
                    for labels, value in samples.get(
                        f"{base}_bucket", []
                    )
                    if labels.get("tenant") == tenant and "le" in labels
                ),
                key=lambda pair: float(pair[0]),
            )
            count = _by_tenant(samples, f"{base}_count").get(tenant)
            total = _by_tenant(samples, f"{base}_sum").get(tenant)
            if count is None:
                continue
            within = None
            if count > 0:
                for bound, cumulative in buckets:
                    if abs(float(bound) - slo_seconds) < 1e-12:
                        within = cumulative / count
                        break
            latency[op] = {
                "count": count,
                "sum": total if total is not None else 0.0,
                "buckets": [[bound, cum] for bound, cum in buckets],
                "within_slo": within,
            }
        data["tenants"][tenant] = {
            "requests": _by_tenant(
                samples, "serve_tenant_requests_total"
            ).get(tenant, 0.0),
            "rejected": _by_tenant(
                samples, "serve_tenant_rejected_total"
            ).get(tenant, 0.0),
            "shed": _by_tenant(
                samples, "serve_tenant_shed_total"
            ).get(tenant, 0.0),
            "device_cycles": _by_tenant(
                samples, "serve_tenant_device_cycles_total"
            ).get(tenant, 0.0),
            "sessions_live": _by_tenant(
                samples, "serve_tenant_sessions_live"
            ).get(tenant, 0.0),
            "latency": latency,
        }
    return data


# -- SVG helpers -------------------------------------------------------------


def _fmt(value: float) -> str:
    """Compact human figure for direct labels."""
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    if abs(value) >= 1e6:
        return f"{value:.3g}"
    return f"{value:.4g}"


def _esc(text: str) -> str:
    return html.escape(text, quote=True)


def _hbar_chart(
    rows: List[Tuple[str, float, int]], unit: str
) -> str:
    """Horizontal bars: ``rows`` are (label, value, series slot).

    Direct value labels on every bar (the contrast relief), native
    ``<title>`` hover tooltips, one x scale.
    """
    if not rows:
        return '<p class="empty">no data yet</p>'
    width, bar_h, gap, label_w = 640, 18, 8, 130
    peak = max(value for _l, value, _s in rows) or 1.0
    plot_w = width - label_w - 90
    height = len(rows) * (bar_h + gap) + gap
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'class="chart" aria-label="bar chart ({_esc(unit)})">'
    ]
    for i, (label, value, slot) in enumerate(rows):
        y = gap + i * (bar_h + gap)
        w = max(1.0, plot_w * value / peak) if value > 0 else 0.0
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
            f'text-anchor="end" class="lbl">{_esc(label)}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" '
            f'height="{bar_h}" rx="2" class="s{slot}">'
            f"<title>{_esc(label)}: {_fmt(value)} {_esc(unit)}</title>"
            f"</rect>"
        )
        parts.append(
            f'<text x="{label_w + w + 6:.1f}" y="{y + bar_h - 5}" '
            f'class="val">{_fmt(value)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _grouped_bars(
    rows: List[Tuple[str, float, float]],
    series: Tuple[str, str],
) -> str:
    """Two-series grouped horizontal bars (legend chips rendered by
    the caller); rows are (label, value_a, value_b)."""
    if not rows:
        return '<p class="empty">no data yet</p>'
    width, bar_h, gap, label_w = 640, 12, 4, 130
    peak = max(
        [v for _l, a, b in rows for v in (a, b)], default=0.0
    ) or 1.0
    plot_w = width - label_w - 90
    group_h = 2 * bar_h + gap
    height = len(rows) * (group_h + 10) + 10
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'class="chart" aria-label="grouped bar chart">'
    ]
    for i, (label, val_a, val_b) in enumerate(rows):
        y = 10 + i * (group_h + 10)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + group_h - 8}" '
            f'text-anchor="end" class="lbl">{_esc(label)}</text>'
        )
        for j, (value, name) in enumerate(
            ((val_a, series[0]), (val_b, series[1]))
        ):
            by = y + j * (bar_h + gap)
            w = max(1.0, plot_w * value / peak) if value > 0 else 0.0
            parts.append(
                f'<rect x="{label_w}" y="{by}" width="{w:.1f}" '
                f'height="{bar_h}" rx="2" class="s{j}">'
                f"<title>{_esc(label)} {_esc(name)}: "
                f"{_fmt(value)}</title></rect>"
            )
            parts.append(
                f'<text x="{label_w + w + 6:.1f}" y="{by + bar_h - 2}"'
                f' class="val">{_fmt(value)}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _histogram_svg(
    buckets: List[List[object]], slo_seconds: float
) -> str:
    """Per-bucket (de-cumulated) histogram with the SLO line.

    Bins render equal-width (the bounds are log-spaced); the SLO line
    sits on the right edge of its exact bucket bound.
    """
    if not buckets:
        return '<p class="empty">no observations</p>'
    counts: List[Tuple[str, float]] = []
    previous = 0.0
    for bound, cumulative in buckets:
        counts.append((str(bound), float(cumulative) - previous))
        previous = float(cumulative)
    width, height, base = 300, 96, 72
    bin_w = width / len(counts)
    peak = max(c for _b, c in counts) or 1.0
    slo_x = None
    for i, (bound, _c) in enumerate(counts):
        try:
            if abs(float(bound) - slo_seconds) < 1e-12:
                slo_x = (i + 1) * bin_w
        except ValueError:
            continue
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'class="chart hist" aria-label="latency histogram">'
    ]
    for i, (bound, count) in enumerate(counts):
        bar_h = (base - 6) * count / peak if count > 0 else 0.0
        x = i * bin_w + 1
        parts.append(
            f'<rect x="{x:.1f}" y="{base - bar_h:.1f}" '
            f'width="{bin_w - 2:.1f}" height="{bar_h:.1f}" rx="2" '
            f'class="s0"><title>le {_esc(str(bound))}s: '
            f"{_fmt(count)} requests</title></rect>"
        )
    parts.append(
        f'<line x1="0" y1="{base}" x2="{width}" y2="{base}" '
        f'class="axis"/>'
    )
    if slo_x is not None:
        parts.append(
            f'<line x1="{slo_x:.1f}" y1="6" x2="{slo_x:.1f}" '
            f'y2="{base}" class="slo"/>'
            f'<text x="{min(slo_x + 4, width - 70):.1f}" y="14" '
            f'class="slo-lbl">SLO {_fmt(slo_seconds * 1000)}ms</text>'
        )
    parts.append(
        f'<text x="2" y="{height - 4}" class="lbl">0</text>'
        f'<text x="{width - 2}" y="{height - 4}" text-anchor="end" '
        f'class="lbl">le {_esc(str(counts[-1][0]))}s</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


# -- page --------------------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  margin: 0; padding: 24px; font: 13px/1.45 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  --surface-1: #fcfcfb; --text-primary: #0b0b0b;
  --text-secondary: #52514e; --grid: #d8d7d2;
  --c0: #2a78d6; --c1: #eb6834; --c2: #1baf7a; --cx: #52514e;
  --good: #008300; --bad: #e34948;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1: #1a1a19; --text-primary: #ffffff;
    --text-secondary: #c3c2b7; --grid: #3a3a38;
    --c0: #3987e5; --c1: #d95926; --c2: #199e70; --cx: #c3c2b7;
    --good: #00a800; --bad: #e66767;
  }
}
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 26px 0 8px; }
h3 { font-size: 12px; margin: 12px 0 4px;
     color: var(--text-secondary); font-weight: 600; }
.sub { color: var(--text-secondary); margin: 0 0 18px; }
.chart { display: block; max-width: 760px; }
.chart .lbl, .chart .val { font: 11px system-ui, sans-serif;
  fill: var(--text-secondary); }
.chart .val { fill: var(--text-primary); }
.chart rect.s0 { fill: var(--c0); }
.chart rect.s1 { fill: var(--c1); }
.chart rect.s2 { fill: var(--c2); }
.chart rect.sx { fill: var(--cx); }
.chart .axis { stroke: var(--grid); stroke-width: 1; }
.chart .slo { stroke: var(--bad); stroke-width: 2;
  stroke-dasharray: 4 3; }
.chart .slo-lbl { font: 10px system-ui, sans-serif;
  fill: var(--text-primary); }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { border: 1px solid var(--grid); border-radius: 6px;
  padding: 10px 16px; min-width: 120px; }
.tile .n { font-size: 22px; font-weight: 700; }
.tile .t { color: var(--text-secondary); font-size: 11px; }
.tile.ok .n::before { content: "\\2713 "; color: var(--good); }
.tile.down .n::before { content: "\\2717 "; color: var(--bad); }
.legend { display: flex; gap: 14px; margin: 4px 0 6px;
  color: var(--text-secondary); font-size: 11px; }
.chip { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px; vertical-align: middle; }
.hists { display: flex; gap: 18px; flex-wrap: wrap; }
.hist-card { width: 300px; }
table { border-collapse: collapse; margin-top: 8px; }
th, td { border: 1px solid var(--grid); padding: 4px 10px;
  text-align: right; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--text-secondary); font-weight: 600; }
"""


def _slot(index: int) -> int:
    """Series slot for tenant ``index`` (overflow past 3 shares one)."""
    return index if index < 3 else 3


def render_dashboard(
    scrape: str,
    title: str = "repro-serve dashboard",
    slo_seconds: float = DEFAULT_SLO_SECONDS,
) -> str:
    """One scrape -> one self-contained HTML dashboard page."""
    data = dashboard_data(scrape, slo_seconds=slo_seconds)
    tenants = sorted(data["tenants"])
    workers = data["workers"]
    alive, dead = workers["alive"], workers["dead"]
    tiles = [
        f'<div class="tile {"ok" if dead == 0 else "down"}">'
        f'<div class="n">{_fmt(alive)}</div>'
        f'<div class="t">workers alive</div></div>',
        f'<div class="tile {"down" if dead else "ok"}">'
        f'<div class="n">{_fmt(dead)}</div>'
        f'<div class="t">workers dead</div></div>',
        f'<div class="tile"><div class="n">'
        f'{_fmt(data["server"]["requests_total"])}</div>'
        f'<div class="t">requests</div></div>',
        f'<div class="tile"><div class="n">'
        f'{_fmt(data["server"]["flight_dumps_total"])}</div>'
        f'<div class="t">flight dumps</div></div>',
    ]

    cycles_rows = [
        (
            tenant,
            data["tenants"][tenant]["device_cycles"],
            _slot(i),
        )
        for i, tenant in enumerate(tenants)
    ]
    reject_rows = [
        (
            tenant,
            data["tenants"][tenant]["rejected"],
            data["tenants"][tenant]["shed"],
        )
        for tenant in tenants
    ]

    sections: List[str] = []
    sections.append("<h2>Worker pool</h2>")
    sections.append(f'<div class="tiles">{"".join(tiles)}</div>')
    sections.append(
        "<h2>Device-cycle attribution (per tenant)</h2>"
        + _hbar_chart(cycles_rows, "cycles")
    )
    sections.append(
        "<h2>Rejections (per tenant)</h2>"
        '<div class="legend">'
        '<span><span class="chip" style="background:var(--c0)">'
        "</span>rejected (quota/typed)</span>"
        '<span><span class="chip" style="background:var(--c1)">'
        "</span>shed (overload)</span></div>"
        + _grouped_bars(reject_rows, ("rejected", "shed"))
    )

    for tenant in tenants:
        latency = data["tenants"][tenant]["latency"]
        if not latency:
            continue
        cards = []
        for op in sorted(latency):
            entry = latency[op]
            within = entry["within_slo"]
            within_text = (
                f"{within * 100:.1f}% within SLO"
                if within is not None
                else "no observations"
            )
            cards.append(
                f'<div class="hist-card"><h3>{_esc(op)} '
                f"&middot; {_fmt(entry['count'])} reqs &middot; "
                f"{_esc(within_text)}</h3>"
                + _histogram_svg(entry["buckets"], slo_seconds)
                + "</div>"
            )
        sections.append(
            f"<h2>Op latency &mdash; tenant "
            f"<code>{_esc(tenant)}</code></h2>"
            f'<div class="hists">{"".join(cards)}</div>'
        )

    rows = []
    for i, tenant in enumerate(tenants):
        info = data["tenants"][tenant]
        chip_slot = str(i) if i < 3 else "x"
        chip = (
            f'<span class="chip" '
            f'style="background:var(--c{chip_slot})"></span>'
        )
        rows.append(
            f"<tr><td>{chip}{_esc(tenant)}</td>"
            f"<td>{_fmt(info['requests'])}</td>"
            f"<td>{_fmt(info['rejected'])}</td>"
            f"<td>{_fmt(info['shed'])}</td>"
            f"<td>{_fmt(info['sessions_live'])}</td>"
            f"<td>{_fmt(info['device_cycles'])}</td></tr>"
        )
    sections.append(
        "<h2>All figures (table view)</h2>"
        "<table><thead><tr><th>tenant</th><th>requests</th>"
        "<th>rejected</th><th>shed</th><th>sessions</th>"
        "<th>device cycles</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table>'
    )

    payload = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="sub">rendered from one /metrics scrape &middot; '
        f"SLO {_fmt(slo_seconds * 1000)}ms &middot; schema "
        f"{DASHBOARD_SCHEMA}</p>\n"
        + "\n".join(sections)
        + '\n<script type="application/json" id="dashboard-data">'
        f"{payload}</script>\n"
        "</body></html>\n"
    )


def extract_data_block(page: str) -> dict:
    """Parse the JSON dataset back out of a rendered dashboard page
    (what the gate compares against its own scrape parse)."""
    match = re.search(
        r'<script type="application/json" id="dashboard-data">'
        r"(.*?)</script>",
        page,
        re.DOTALL,
    )
    if match is None:
        raise ValueError("page has no dashboard-data block")
    return json.loads(match.group(1).replace("<\\/", "</"))
