"""Trace diffing: attribute a regression to the phase that caused it.

``repro-obs diff before.jsonl after.jsonl`` answers "which kernel or
phase got slower" without scraping gates by hand: both traces are
aggregated per key (span name, or ``kernel:<name>@<section>`` for
kernel aggregates), then differenced on

* **device cycles** — deterministic for a seeded workload, so *any*
  nonzero delta is a real cost-model change (the obs gate requires two
  seeded runs to diff to zero), and
* **host seconds** — wall clock, compared against a noise floor
  (relative tolerance plus an absolute floor, the perf gate's policy)
  so machine jitter does not read as a regression.

The top regressions are ranked by absolute device-cycle delta first
(deterministic evidence beats noisy evidence) and host delta second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.obs.tracer import TraceEvent

#: Host-seconds slack below which a delta is noise, not a regression
#: (mirrors tools/perf_gate.py's ABSOLUTE_FLOOR).
HOST_ABSOLUTE_FLOOR = 0.05


@dataclass
class PhaseAggregate:
    """Per-key totals over one trace."""

    key: str
    count: int = 0
    host_seconds: float = 0.0
    device_seconds: float = 0.0
    device_cycles: float = 0.0
    warp_instructions: int = 0
    transactions: int = 0

    def add(self, event: TraceEvent) -> None:
        self.count += event.count if event.kind == "kernel" else 1
        self.host_seconds += event.duration
        self.device_seconds += event.device_seconds
        self.device_cycles += event.device_cycles
        self.warp_instructions += event.warp_instructions
        self.transactions += event.transactions


@dataclass
class PhaseDelta:
    """One key's before/after comparison."""

    key: str
    before: PhaseAggregate
    after: PhaseAggregate

    @property
    def host_delta(self) -> float:
        return self.after.host_seconds - self.before.host_seconds

    @property
    def device_cycles_delta(self) -> float:
        return self.after.device_cycles - self.before.device_cycles

    @property
    def instruction_delta(self) -> int:
        return self.after.warp_instructions - self.before.warp_instructions

    @property
    def transaction_delta(self) -> int:
        return self.after.transactions - self.before.transactions

    @property
    def count_delta(self) -> int:
        return self.after.count - self.before.count

    def is_device_regression(self, epsilon: float = 0.0) -> bool:
        return self.device_cycles_delta > epsilon

    def is_host_regression(
        self,
        tolerance: float = 0.20,
        floor: float = HOST_ABSOLUTE_FLOOR,
    ) -> bool:
        limit = self.before.host_seconds * tolerance + floor
        return self.host_delta > limit


@dataclass
class TraceDiff:
    """Full comparison of two traces."""

    deltas: List[PhaseDelta] = field(default_factory=list)
    only_before: List[str] = field(default_factory=list)
    only_after: List[str] = field(default_factory=list)

    def device_regressions(self, epsilon: float = 0.0) -> List[PhaseDelta]:
        return [
            d for d in self.deltas if d.is_device_regression(epsilon)
        ]

    def host_regressions(
        self,
        tolerance: float = 0.20,
        floor: float = HOST_ABSOLUTE_FLOOR,
    ) -> List[PhaseDelta]:
        return [
            d for d in self.deltas if d.is_host_regression(tolerance, floor)
        ]

    @property
    def has_structural_change(self) -> bool:
        """True when a phase appeared or disappeared between traces."""
        return bool(self.only_before or self.only_after)

    def max_abs_device_delta(self) -> float:
        return max(
            (abs(d.device_cycles_delta) for d in self.deltas),
            default=0.0,
        )


def event_key(event: TraceEvent) -> str:
    """Stable aggregation key for one event."""
    if event.kind == "kernel":
        section = event.section or "unattributed"
        return f"kernel:{event.name}@{section}"
    return event.name


def aggregate(events: Iterable[TraceEvent]) -> Dict[str, PhaseAggregate]:
    """Aggregate a trace's events per key (sorted by key)."""
    totals: Dict[str, PhaseAggregate] = {}
    for event in events:
        key = event_key(event)
        agg = totals.get(key)
        if agg is None:
            agg = PhaseAggregate(key=key)
            totals[key] = agg
        agg.add(event)
    return {key: totals[key] for key in sorted(totals)}


def diff_traces(
    before: Iterable[TraceEvent], after: Iterable[TraceEvent]
) -> TraceDiff:
    """Compare two traces; deltas ranked worst-regression first."""
    before_agg = aggregate(before)
    after_agg = aggregate(after)
    diff = TraceDiff(
        only_before=sorted(set(before_agg) - set(after_agg)),
        only_after=sorted(set(after_agg) - set(before_agg)),
    )
    for key in sorted(set(before_agg) & set(after_agg)):
        diff.deltas.append(
            PhaseDelta(
                key=key, before=before_agg[key], after=after_agg[key]
            )
        )
    diff.deltas.sort(
        key=lambda d: (
            -abs(d.device_cycles_delta),
            -abs(d.host_delta),
            d.key,
        )
    )
    return diff


def format_diff(
    diff: TraceDiff,
    top: int = 10,
    tolerance: float = 0.20,
    floor: float = HOST_ABSOLUTE_FLOOR,
) -> str:
    """Human-readable regression attribution report."""
    lines: List[str] = []
    if diff.only_after:
        lines.append(
            "phases only in AFTER trace: " + ", ".join(diff.only_after)
        )
    if diff.only_before:
        lines.append(
            "phases only in BEFORE trace: " + ", ".join(diff.only_before)
        )
    device = diff.device_regressions()
    host = diff.host_regressions(tolerance, floor)
    lines.append(
        f"{len(diff.deltas)} shared phases; "
        f"{len(device)} device-cycle regressions, "
        f"{len(host)} host-time regressions "
        f"(tolerance {tolerance:.0%} + {floor}s floor)"
    )
    header = (
        f"{'phase':<34} {'d.cycles Δ':>14} {'host Δ (ms)':>12} "
        f"{'instr Δ':>12} {'trans Δ':>10} {'count Δ':>8}"
    )
    lines.append(header)
    shown = diff.deltas[:top]
    for delta in shown:
        marker = ""
        if delta.is_device_regression():
            marker = " <- device"
        elif delta.is_host_regression(tolerance, floor):
            marker = " <- host"
        lines.append(
            f"{delta.key:<34} {delta.device_cycles_delta:>14.1f} "
            f"{delta.host_delta * 1e3:>12.2f} "
            f"{delta.instruction_delta:>12} "
            f"{delta.transaction_delta:>10} "
            f"{delta.count_delta:>8}{marker}"
        )
    if len(diff.deltas) > top:
        lines.append(f"... {len(diff.deltas) - top} more phases elided")
    return "\n".join(lines)


def summarize(
    events: Iterable[TraceEvent], spans_only: bool = True
) -> List[Tuple[str, PhaseAggregate]]:
    """Per-phase totals of one trace, heaviest device cost first."""
    totals = aggregate(
        e
        for e in events
        if not spans_only or e.kind == "span"
    )
    return sorted(
        totals.items(),
        key=lambda kv: (-kv[1].device_cycles, kv[0]),
    )


def format_summary(
    events: Iterable[TraceEvent], top: int = 20
) -> str:
    """Table of per-span host seconds and device cycles."""
    rows = summarize(events)
    lines = [
        f"{'span':<26} {'calls':>7} {'host ms':>10} "
        f"{'device ms':>11} {'device cycles':>15}"
    ]
    for key, agg in rows[:top]:
        lines.append(
            f"{key:<26} {agg.count:>7} {agg.host_seconds * 1e3:>10.2f} "
            f"{agg.device_seconds * 1e3:>11.4f} {agg.device_cycles:>15.1f}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more spans elided")
    return "\n".join(lines)
