"""Span tracer: structured, correlated phase events over the cost ledger.

One tracer is active at a time (a module global, mirroring the shadow
hook on :class:`~repro.gpusim.context.GpuContext`): hot paths bracket
their phases with :func:`span`, and when no tracer is active the
bracket is a no-op apart from a single global read — the same
zero-cost-when-off bar shadow mode meets, guarded by
``tools/obs_gate.py`` and the perf gate's ledger comparison.

A :class:`Tracer` activated with a :class:`~repro.gpusim.cost.CostLedger`
attaches *device* attribution to every span: the ledger counters are
snapshotted on entry and differenced on exit, so each span carries the
warp instructions, memory transactions, modeled device seconds and
device cycles it caused, alongside its host wall time.  The ledger's
``obs_hook`` (one attribute check in ``end_kernel``) additionally
aggregates per-kernel counts under the innermost open span, giving the
trace the paper's per-kernel granularity without one record per launch.

Usage::

    from repro.obs import Tracer, span

    tracer = Tracer(ledger=ctx.ledger, session="bench")
    with tracer.activate():
        with span("apply.batch", batch=7):
            ...                       # nested spans + kernels attach here
    events = tracer.events            # list[TraceEvent]

All device-derived fields are deterministic for a seeded workload —
two traced runs differ only in host ``start``/``duration`` — which is
what lets ``repro-obs diff`` attribute regressions exactly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.gpusim.cost import CostLedger, Counters

#: Trace record schema identifier (header line of every JSONL trace).
TRACE_SCHEMA = "repro-trace-v1"

#: The active tracer, or None.  Hot-path brackets check only this.
_ACTIVE: "Tracer | None" = None


def active_tracer() -> "Tracer | None":
    """The currently activated tracer (None when tracing is off)."""
    return _ACTIVE


@dataclass
class TraceEvent:
    """One span or per-span kernel aggregate.

    ``kind`` is ``"span"`` for host-timed brackets and ``"kernel"`` for
    the per-kernel aggregates attached to a span.  Kernel aggregates
    carry no host times (they are summed at span close from ledger
    scopes), so every one of their fields is deterministic for a seeded
    workload.
    """

    kind: str
    name: str
    span_id: int
    parent: Optional[int]
    depth: int
    #: Correlation: the stream batch (first journal seq) this event
    #: belongs to, and the tracer-wide session label.
    batch: Optional[int] = None
    #: Host wall clock, seconds relative to tracer activation (spans
    #: only; kernel aggregates keep both at 0.0).
    start: float = 0.0
    duration: float = 0.0
    #: Ledger attribution (deltas for spans, sums for kernel rows).
    warp_instructions: int = 0
    transactions: int = 0
    atomic_ops: int = 0
    kernel_launches: int = 0
    device_seconds: float = 0.0
    device_cycles: float = 0.0
    #: Ledger section the kernels ran under (kernel rows only).
    section: Optional[str] = None
    #: Number of launches aggregated into a kernel row (1 for spans).
    count: int = 1
    #: Distributed trace context (``repro.obs.distrib``): a dict with
    #: an ``"id"`` plus optional tenant/op/attempt/worker keys, or None
    #: for plain engine traces.  Optional in the JSONL schema, so every
    #: pre-existing ``repro-trace-v1`` file stays valid.
    trace: Optional[dict] = None

    def as_dict(self) -> dict:
        """Flat JSON-ready record (sorted keys happen at export).

        ``trace`` is emitted only when set: engine-only traces keep the
        exact byte shape earlier revisions wrote.
        """
        out = {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "parent": self.parent,
            "depth": self.depth,
            "batch": self.batch,
            "start": self.start,
            "duration": self.duration,
            "warp_instructions": self.warp_instructions,
            "transactions": self.transactions,
            "atomic_ops": self.atomic_ops,
            "kernel_launches": self.kernel_launches,
            "device_seconds": self.device_seconds,
            "device_cycles": self.device_cycles,
            "section": self.section,
            "count": self.count,
        }
        if self.trace is not None:
            out["trace"] = {
                key: self.trace[key] for key in sorted(self.trace)
            }
        return out


@dataclass
class _OpenSpan:
    """Book-keeping for a span that has not closed yet."""

    event: TraceEvent
    t0: float
    ledger_before: Optional[Counters]
    #: (kernel name, section) -> aggregate in progress.
    kernels: Dict[tuple, TraceEvent] = field(default_factory=dict)
    prev_batch: Optional[int] = None
    set_batch: bool = False


class Tracer:
    """Collects :class:`TraceEvent` records for one traced region.

    Args:
        ledger: Cost ledger to attribute device work from; None records
            host times only (the ``utils.timing`` compatibility mode).
        session: Free-form correlation label stamped on the trace
            header (e.g. a stream session or bench name).

    A tracer is single-use and single-threaded: :meth:`activate`
    installs it as the module-global active tracer and registers the
    ledger ``obs_hook``; both are restored on exit.  Activating a
    second tracer nests (the inner one wins until its block exits);
    activating from a different thread than the currently active
    tracer's owner raises ``RuntimeError`` — see
    :mod:`repro.utils.timing` for the single-threaded contract.
    """

    def __init__(
        self,
        ledger: CostLedger | None = None,
        session: str = "",
    ) -> None:
        self.ledger = ledger
        self.session = session
        self.events: List[TraceEvent] = []
        #: Host seconds accumulated per span name (the
        #: ``collect_phase_times`` compatibility surface).
        self.phase_seconds: Dict[str, float] = {}
        self.current_batch: Optional[int] = None
        self._stack: List[_OpenSpan] = []
        self._next_id = 0
        self._t_origin = 0.0
        self._owner_ident: Optional[int] = None
        self._ledger_at_start: Optional[Counters] = None

    # -- activation ----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the active one for the block."""
        global _ACTIVE
        previous = _ACTIVE
        if (
            previous is not None
            and previous._owner_ident is not None
            and previous._owner_ident != threading.get_ident()
        ):
            raise RuntimeError(
                "a tracer/phase collector is already active on thread "
                f"{previous._owner_ident}; repro.obs tracing is "
                "single-threaded (activate tracers from one thread only)"
            )
        self._owner_ident = threading.get_ident()
        self._t_origin = time.perf_counter()
        prev_hook = None
        if self.ledger is not None:
            self._ledger_at_start = self.ledger.snapshot()
            prev_hook = self.ledger.obs_hook
            self.ledger.obs_hook = self._on_kernel
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous
            if self.ledger is not None:
                self.ledger.obs_hook = prev_hook
            self._owner_ident = None

    # -- span recording ------------------------------------------------------

    def begin_span(self, name: str, batch: Optional[int] = None) -> None:
        parent = self._stack[-1].event.span_id if self._stack else None
        event = TraceEvent(
            kind="span",
            name=name,
            span_id=self._next_id,
            parent=parent,
            depth=len(self._stack),
            batch=batch if batch is not None else self.current_batch,
        )
        self._next_id += 1
        open_span = _OpenSpan(
            event=event,
            t0=time.perf_counter(),
            ledger_before=(
                self.ledger.snapshot() if self.ledger is not None else None
            ),
        )
        if batch is not None:
            open_span.prev_batch = self.current_batch
            open_span.set_batch = True
            self.current_batch = batch
        self._stack.append(open_span)

    def end_span(self) -> TraceEvent:
        open_span = self._stack.pop()
        event = open_span.event
        event.start = open_span.t0 - self._t_origin
        event.duration = time.perf_counter() - open_span.t0
        if open_span.ledger_before is not None:
            assert self.ledger is not None
            delta = self.ledger.total.diff(open_span.ledger_before)
            self._attribute(event, delta)
        if open_span.set_batch:
            self.current_batch = open_span.prev_batch
        self.phase_seconds[event.name] = (
            self.phase_seconds.get(event.name, 0.0) + event.duration
        )
        self.events.append(event)
        # Kernel aggregates follow their span, in first-launch order
        # (deterministic for a seeded run).
        self.events.extend(open_span.kernels.values())
        return event

    def _attribute(self, event: TraceEvent, delta: Counters) -> None:
        assert self.ledger is not None
        model = self.ledger.model
        seconds = model.seconds(delta)
        event.warp_instructions = delta.warp_instructions
        event.transactions = delta.transactions
        event.atomic_ops = delta.atomic_ops
        event.kernel_launches = delta.kernel_launches
        event.device_seconds = seconds
        event.device_cycles = seconds * model.device.clock_ghz * 1e9

    # -- ledger kernel hook --------------------------------------------------

    def _on_kernel(
        self,
        name: str,
        section: str,
        warp_instructions: int,
        transactions: int,
        seconds: float,
    ) -> None:
        """``CostLedger.obs_hook`` target: aggregate one kernel close.

        Aggregation is per (kernel name, section) under the innermost
        open span, so a refinement round launching the same kernel 200
        times produces one row with ``count=200`` instead of 200 lines.
        """
        if not self._stack:
            return
        open_span = self._stack[-1]
        key = (name, section)
        row = open_span.kernels.get(key)
        if row is None:
            assert self.ledger is not None
            row = TraceEvent(
                kind="kernel",
                name=name,
                span_id=self._next_id,
                parent=open_span.event.span_id,
                depth=open_span.event.depth + 1,
                batch=self.current_batch,
                section=section,
                count=0,
            )
            self._next_id += 1
            open_span.kernels[key] = row
        row.count += 1
        row.kernel_launches += 1
        row.warp_instructions += warp_instructions
        row.transactions += transactions
        row.device_seconds += seconds
        assert self.ledger is not None
        row.device_cycles = (
            row.device_seconds * self.ledger.model.device.clock_ghz * 1e9
        )

    # -- results -------------------------------------------------------------

    def header(self) -> dict:
        """The trace's JSONL header record."""
        return {
            "schema": TRACE_SCHEMA,
            "session": self.session,
            "has_ledger": self.ledger is not None,
        }

    def ledger_delta(self) -> Optional[Counters]:
        """Counters accumulated since activation (None without ledger)."""
        if self.ledger is None or self._ledger_at_start is None:
            return None
        return self.ledger.total.diff(self._ledger_at_start)


@contextmanager
def span(name: str, batch: Optional[int] = None) -> Iterator[None]:
    """Bracket a phase: records a :class:`TraceEvent` when tracing.

    When no tracer is active the only cost is one module-global read.
    ``name`` must be a literal string at every call site (enforced by
    the ``span-literal`` lint rule) so trace-diff keys are stable
    across runs and revisions.  ``batch`` stamps this span *and* every
    event nested under it with a correlation id.
    """
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    tracer.begin_span(name, batch=batch)
    try:
        yield
    finally:
        tracer.end_span()
