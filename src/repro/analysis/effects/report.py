"""Human-readable reporting for the effects analysis.

The gate writes :func:`format_report` output to ``results/effects.txt``
which ``tools/build_experiments_md.py`` folds into EXPERIMENTS.md, so
everything here must be deterministic: sorted keys, no wall-clock
content beyond the timing figures themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.effects.callgraph import callgraph_stats
from repro.analysis.effects.infer import EffectEngine
from repro.analysis.effects.invariants import EffectsTiming
from repro.analysis.lintcore import Finding


@dataclass
class EffectsReport:
    """Everything one whole-repo run produced."""

    findings: List[Finding] = field(default_factory=list)
    timing: Optional[EffectsTiming] = None


def signature_table(
    engine: EffectEngine, atoms: Optional[List[str]] = None
) -> Dict[str, List[str]]:
    """``qualname -> sorted effect atoms`` for functions with effects.

    ``atoms`` restricts the table to functions carrying at least one of
    the given atoms (the full table is large).
    """
    table: Dict[str, List[str]] = {}
    for qualname in sorted(engine.signatures):
        sig = engine.signatures[qualname]
        if not sig.effects:
            continue
        if atoms is not None and not (set(atoms) & sig.effects):
            continue
        table[qualname] = sorted(sig.effects)
    return table


def format_report(
    report: EffectsReport, engine: Optional[EffectEngine] = None
) -> str:
    """Render the gate's deterministic text artifact."""
    lines: List[str] = ["# repro effects analysis"]
    if engine is not None:
        stats = callgraph_stats(engine.graph)
        lines.append(
            "callgraph: "
            + ", ".join(f"{k}={stats[k]}" for k in sorted(stats))
        )
        effectful = sum(
            1 for s in engine.signatures.values() if s.effects
        )
        lines.append(
            f"signatures: {len(engine.signatures)} functions, "
            f"{effectful} with effects"
        )
    if report.timing is not None:
        lines.append("")
        lines.append(f"{'stage':28s} {'seconds':>9s} {'findings':>9s}")
        for row in report.timing.rows():
            lines.append(
                f"{str(row['stage']):28s} "
                f"{row['seconds']:>9} "
                f"{str(row['findings']):>9}"
            )
        lines.append(
            f"{'total':28s} "
            f"{round(report.timing.total_seconds, 4):>9} "
            f"{len(report.findings):>9}"
        )
    lines.append("")
    if report.findings:
        lines.append(f"{len(report.findings)} finding(s):")
        for finding in report.findings:
            lines.append(f"  {finding}")
    else:
        lines.append("invariants: clean")
    return "\n".join(lines) + "\n"
