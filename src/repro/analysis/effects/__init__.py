"""Interprocedural effect inference and whole-repo invariant checking.

The per-module AST rules in :mod:`repro.analysis.rules` enforce *local*
contracts — a loop in a hot-path file, an unseeded RNG call.  The
invariants the engine actually rests on are *cross-function*: the serve
layer must append to its WAL before acknowledging a request (PR 8), the
state digest must never observe derived :class:`CutAccumulator` state
(PR 7), a device-array write must be paid for by a priced kernel scope
somewhere up its call chain, and backend kernels must stay ledger-free.
None of those can be checked one module at a time.

This subpackage closes the gap in three layers:

* :mod:`repro.analysis.effects.callgraph` — a project-wide call graph
  over ``src/repro``: module-qualified resolution of direct calls,
  method calls via receiver-type heuristics (``self`` attributes,
  annotations, local construction), nested/closure functions folded
  through higher-order call sites, and the ``repro.core.backend``
  dispatch table expanded to every registered backend.
* :mod:`repro.analysis.effects.infer` — per-function **effect
  signatures** extracted from the AST (``ledger.charge``,
  ``device.write``, ``wal.append``, ``journal.append``, ``fsync``,
  ``socket.send``, ``ack``, ``rng``, ``cutacc.read``,
  ``await.under-lock``) and propagated through the call graph to a
  fixed point, preserving intra-procedural event order so dominance
  ("append before ack") stays checkable.
* :mod:`repro.analysis.effects.invariants` — a declarative catalog of
  repo invariants checked against those signatures; violations are
  ordinary :class:`~repro.analysis.lintcore.Finding` objects flowing
  through the existing pragma/baseline machinery (suppress with
  ``# repro-lint: allow[invariant-id] reason``).

Run it with ``repro-lint --effects`` or ``tools/effects_gate.py``;
golden bad-tree fixtures proving every invariant fires live in
:mod:`repro.analysis.effects.fixtures`.
"""

from repro.analysis.effects.callgraph import (
    CallGraph,
    FunctionNode,
    build_callgraph,
)
from repro.analysis.effects.infer import (
    EffectEngine,
    EffectSignature,
    infer_effects,
)
from repro.analysis.effects.invariants import (
    INVARIANTS,
    Invariant,
    check_invariants,
    run_effects_analysis,
)
from repro.analysis.effects.report import (
    EffectsReport,
    format_report,
    signature_table,
)

__all__ = [
    "CallGraph",
    "EffectEngine",
    "EffectSignature",
    "EffectsReport",
    "FunctionNode",
    "INVARIANTS",
    "Invariant",
    "build_callgraph",
    "check_invariants",
    "format_report",
    "infer_effects",
    "run_effects_analysis",
    "signature_table",
]
