"""Per-function effect signatures and their fixed-point propagation.

The effect domain is a finite powerset lattice over string atoms; the
join is set union, so the worklist propagation below terminates.  The
atoms and what triggers them *directly* (ARCHITECTURE §15 carries the
catalog):

================== ===========================================================
``ledger.charge``    any ``charge_*``/``adjust_instructions`` call on a ledger
``device.write``     subscript store to a device array (``bucket_list``,
                     ``slot_wgt``, ``vertex_status``, ``vwgt``, ``partition``,
                     ``part_weights``)
``device.write.uncharged``
                     the same store when it is *not* lexically inside a
                     ``with ledger.kernel(...)`` block; discharged when a
                     caller forwards it from inside one
``wal.append``       ``append_create``/``append_settle`` (the serve WAL)
``journal.append``   ``log_modifier``/``log_flush``/``log_dead_letter``/
                     ``write_checkpoint`` (the stream journal)
``fsync``            ``os.fsync``
``socket.send``      ``write_frame``/``write_frame_async``/``sendall`` or
                     ``writer.write``/``writer.drain``
``ack``              building a protocol success response (``ok_response``)
``session.construct``
                     constructing a ``StreamSession`` (serve state creation)
``rng``              RNG construction or use (``default_rng``, ``Random``,
                     ``np.random.*``, method calls on ``rng``-named receivers)
``cutacc.read``      touching derived cut-accumulator state (``.cut_acc``
                     attribute access or ``CutAccumulator`` construction)
``await.under-lock`` an ``await`` lexically inside an ``async with`` on a
                     ``*.lock``/``*_lock`` context manager
================== ===========================================================

Propagation folds callee signatures into callers at each call site to a
fixed point.  Signatures keep the *intra-procedural event order* —
direct effects and call sites interleaved as they appear in the source
— so invariants can check dominance ("the first ``wal.append`` precedes
the first ``ack``") without a path-sensitive analysis.  The one
non-monotone-looking transform, dropping ``device.write.uncharged`` at
kernel-scoped call sites, is a join over a per-site constant filter and
preserves termination.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.effects.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    _dotted_name,
)

#: Ledger methods that record modeled cost.
CHARGE_METHODS: frozenset = frozenset(
    {
        "charge_wavefront", "charge_irregular_warps",
        "charge_instructions", "charge_transactions",
        "charge_host_ops", "charge_host_seconds",
        "charge_pcie_bytes", "charge_atomics",
        "adjust_instructions",
    }
)

#: Device arrays whose subscript stores count as device writes.
DEVICE_ARRAYS: frozenset = frozenset(
    {
        "bucket_list", "slot_wgt", "vertex_status", "vwgt",
        "partition", "part_weights",
    }
)

WAL_APPEND_METHODS: frozenset = frozenset(
    {"append_create", "append_settle"}
)
JOURNAL_APPEND_METHODS: frozenset = frozenset(
    {"log_modifier", "log_flush", "log_dead_letter", "write_checkpoint"}
)
SOCKET_SEND_NAMES: frozenset = frozenset(
    {"write_frame", "write_frame_async", "sendall"}
)
#: Receiver names whose ``.write``/``.drain`` count as socket sends.
WRITER_RECEIVERS: frozenset = frozenset({"writer"})
ACK_NAMES: frozenset = frozenset({"ok_response"})
SESSION_CLASSES: frozenset = frozenset({"StreamSession"})
RNG_RECEIVER_HINTS: tuple = ("rng", "random", "generator")
#: Parameters that anchor seeded randomness for the hot-path invariant.
SEED_PARAM_NAMES: frozenset = frozenset(
    {"seed", "rng", "generator", "random_state", "seed_sequence"}
)

#: Atoms that never propagate to callers (purely local properties).
_LOCAL_ATOMS: frozenset = frozenset({"kernel.scope"})


@dataclass
class EffectEvent:
    """A direct effect occurrence at a known source location."""

    effect: str
    line: int
    detail: str = ""


@dataclass
class CallEvent:
    """A resolved call site, in event order with direct effects."""

    site: CallSite


@dataclass
class EffectSignature:
    """Everything the invariant checker needs to know about a function."""

    qualname: str
    path: str
    lineno: int
    #: Direct effects + call sites in source order.
    events: List["EffectEvent | CallEvent"] = field(default_factory=list)
    #: Direct (intra-procedural) effect atoms.
    direct: Set[str] = field(default_factory=set)
    #: Fixed-point transitive effect atoms.
    effects: Set[str] = field(default_factory=set)
    #: Function opens a ``ledger.kernel`` scope somewhere in its body.
    opens_kernel: bool = False
    #: Function has a seed-ish parameter (``seed``/``rng``/…).
    has_seed_param: bool = False
    #: effect atom -> (qualname, line) witness used in messages.
    provenance: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def first_index(
        self, atoms: FrozenSet[str], engine: "EffectEngine"
    ) -> Optional[int]:
        """Index of the first event carrying any of ``atoms``."""
        for i, event in enumerate(self.events):
            if isinstance(event, EffectEvent):
                if event.effect in atoms:
                    return i
            else:
                folded = engine.folded_effects(event.site)
                if folded & atoms:
                    return i
        return None


def _is_rng_call(call: ast.Call) -> Optional[str]:
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail == "default_rng" or dotted.startswith(
        ("np.random.", "numpy.random.", "random.")
    ):
        return dotted
    if dotted in ("Random", "random.Random", "SystemRandom"):
        return dotted
    if isinstance(call.func, ast.Attribute):
        receiver = call.func.value
        rname = receiver.id if isinstance(receiver, ast.Name) else (
            receiver.attr if isinstance(receiver, ast.Attribute) else None
        )
        if rname is not None and any(
            hint in rname.lower() for hint in RNG_RECEIVER_HINTS
        ):
            return dotted
    return None


def _subscript_store_attrs(node: ast.AST) -> Iterable[Tuple[str, int]]:
    """Yield (array attr, line) for device-array subscript stores."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attr = target.value.attr
            if attr in DEVICE_ARRAYS:
                yield attr, target.lineno


def _is_lock_context(expr: ast.AST) -> bool:
    dotted = _dotted_name(expr if not isinstance(expr, ast.Call) else expr.func)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1]
    return tail == "lock" or tail.endswith("_lock")


class _EventExtractor:
    """Walk one function body in source order, emitting events."""

    def __init__(
        self, fn: FunctionNode, sites: List[CallSite]
    ) -> None:
        self.fn = fn
        self.sites_by_node: Dict[int, CallSite] = {
            id(site.node): site for site in sites
        }
        self.events: List["EffectEvent | CallEvent"] = []
        self.opens_kernel = False

    def extract(self) -> List["EffectEvent | CallEvent"]:
        for stmt in self.fn.node.body:
            self._visit(stmt, kernel=False, lock=False)
        return self.events

    def _emit(self, effect: str, line: int, detail: str = "") -> None:
        self.events.append(EffectEvent(effect, line, detail))

    def _visit_call(self, node: ast.Call, kernel: bool) -> None:
        func = node.func
        dotted = _dotted_name(func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        line = node.lineno
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in CHARGE_METHODS:
                self._emit("ledger.charge", line, attr)
            if attr in WAL_APPEND_METHODS:
                self._emit("wal.append", line, attr)
            if attr in JOURNAL_APPEND_METHODS:
                self._emit("journal.append", line, attr)
            if dotted == "os.fsync":
                self._emit("fsync", line, dotted)
            if attr in SOCKET_SEND_NAMES:
                self._emit("socket.send", line, attr)
            if attr in ("write", "drain") and isinstance(
                func.value, ast.Name
            ) and func.value.id in WRITER_RECEIVERS:
                self._emit("socket.send", line, f"writer.{attr}")
            if attr in SESSION_CLASSES:
                self._emit("session.construct", line, attr)
        elif isinstance(func, ast.Name):
            if func.id in SOCKET_SEND_NAMES:
                self._emit("socket.send", line, func.id)
            if func.id in ACK_NAMES:
                self._emit("ack", line, func.id)
            if func.id in SESSION_CLASSES:
                self._emit("session.construct", line, func.id)
            if func.id == "fsync" and dotted == "fsync":
                self._emit("fsync", line, dotted)
        rng = _is_rng_call(node)
        if rng is not None:
            self._emit("rng", line, rng)
        site = self.sites_by_node.get(id(node))
        if site is not None:
            for tag in site.tags:
                if tag.startswith("construct:") and tag.rsplit(
                    ".", 1
                )[-1] in SESSION_CLASSES:
                    self._emit("session.construct", line, tag)
            self.events.append(CallEvent(site))
        if tail == "kernel" and isinstance(func, ast.Attribute):
            # `ledger.kernel(...)` outside a With is still a scope
            # opener (e.g. contextlib.ExitStack usage).
            self.opens_kernel = True

    def _visit(self, node: ast.AST, kernel: bool, lock: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not self.fn.node:
                return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            opens = False
            locks = False
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "kernel"
                ):
                    opens = True
                    self.opens_kernel = True
                    self._emit("kernel.scope", node.lineno, "with")
                if _is_lock_context(expr):
                    locks = True
                self._visit(expr, kernel, lock)
            for child in node.body:
                self._visit(child, kernel or opens, lock or locks)
            return
        if isinstance(node, ast.Await):
            if lock:
                self._emit("await.under-lock", node.lineno)
            self._visit(node.value, kernel, lock)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for attr, line in _subscript_store_attrs(node):
                self._emit("device.write", line, attr)
                if not kernel:
                    self._emit("device.write.uncharged", line, attr)
        if isinstance(node, ast.Attribute) and node.attr == "cut_acc":
            self._emit("cutacc.read", node.lineno, "cut_acc")
        if isinstance(node, ast.Call):
            callee = node.func
            cname = (
                callee.id
                if isinstance(callee, ast.Name)
                else (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
            )
            if cname == "CutAccumulator":
                self._emit("cutacc.read", node.lineno, cname)
            self._visit_call(node, kernel)
        for child in ast.iter_child_nodes(node):
            self._visit(child, kernel, lock)


class EffectEngine:
    """Holds the call graph plus every function's effect signature."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.signatures: Dict[str, EffectSignature] = {}
        self._extract_all()
        self._propagate()

    # -- construction ----------------------------------------------------------

    def _extract_all(self) -> None:
        for qualname, fn in self.graph.functions.items():
            sites = self.graph.calls.get(qualname, [])
            extractor = _EventExtractor(fn, sites)
            events = extractor.extract()
            sig = EffectSignature(
                qualname=qualname,
                path=fn.path,
                lineno=fn.lineno,
                events=events,
                opens_kernel=extractor.opens_kernel,
                has_seed_param=any(
                    p in SEED_PARAM_NAMES for p in fn.params
                ),
            )
            for event in events:
                if isinstance(event, EffectEvent):
                    if event.effect in _LOCAL_ATOMS:
                        continue
                    sig.direct.add(event.effect)
                    sig.provenance.setdefault(
                        event.effect, (qualname, event.line)
                    )
            sig.effects = set(sig.direct)
            self.signatures[qualname] = sig

    def folded_effects(self, site: CallSite) -> Set[str]:
        """Effects a call site contributes to its enclosing function."""
        out: Set[str] = set()
        for callee in site.callees:
            sig = self.signatures.get(callee)
            if sig is None:
                continue
            out |= sig.effects
        if site.kernel_scoped:
            out.discard("device.write.uncharged")
        return out

    def _propagate(self) -> None:
        # Worklist over the callers relation; effect sets only grow.
        pending: Set[str] = set(self.signatures)
        while pending:
            qualname = pending.pop()
            sig = self.signatures[qualname]
            new = set(sig.direct)
            for event in sig.events:
                if isinstance(event, CallEvent):
                    contribution = self.folded_effects(event.site)
                    for atom in contribution - new:
                        new.add(atom)
                        # Witness: the call site that first imported it.
                        sig.provenance.setdefault(
                            atom, (qualname, event.site.line)
                        )
            if new != sig.effects:
                sig.effects = new
                for caller, _scoped in self.graph.callers.get(
                    qualname, []
                ):
                    pending.add(caller)

    # -- queries ---------------------------------------------------------------

    def signature(self, qualname: str) -> Optional[EffectSignature]:
        return self.signatures.get(qualname)

    def functions_with(self, atom: str) -> List[str]:
        return sorted(
            q
            for q, sig in self.signatures.items()
            if atom in sig.effects
        )

    def exposed_functions(self) -> Set[str]:
        """Functions reachable from a call-graph root without ever
        crossing a kernel-scoped call site.

        A function with a direct uncharged device write that is
        *exposed* can be driven to write device arrays without any
        priced ``ledger.kernel`` scope on the stack — the
        ``uncharged-device-write`` invariant's definition of a leak.
        Roots (functions with no intra-repo callers) are exposed by
        definition; exposure propagates across non-kernel-scoped call
        edges only.
        """
        exposed: Set[str] = set()
        pending: List[str] = []
        for qualname in self.signatures:
            callers = self.graph.callers.get(qualname, [])
            if not callers:
                exposed.add(qualname)
                pending.append(qualname)
        while pending:
            caller = pending.pop()
            for site in self.graph.calls.get(caller, []):
                if site.kernel_scoped:
                    continue
                for callee in site.callees:
                    if callee not in exposed and callee in self.signatures:
                        exposed.add(callee)
                        pending.append(callee)
        return exposed

    def reachable_from(self, sources: Iterable[str]) -> Set[str]:
        """Transitive callees of ``sources`` (the sources included)."""
        seen: Set[str] = set()
        pending = [s for s in sources]
        while pending:
            cur = pending.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.graph.calls.get(cur, []):
                pending.extend(site.callees)
        return seen


def infer_effects(paths: Iterable[str]) -> EffectEngine:
    """Build the call graph for ``paths`` and run effect inference."""
    from repro.analysis.effects.callgraph import build_callgraph

    graph = build_callgraph(paths)
    return EffectEngine(graph)
