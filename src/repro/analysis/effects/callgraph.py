"""Project-wide call graph over ``src/repro``.

Resolution is deliberately *conservative-by-construction* rather than
sound: an edge is added only when a concrete target can be named, and
ambiguous method names resolve through a small set of heuristics that
are documented here because the invariant checker's precision depends
on them (ARCHITECTURE §15 carries the user-facing version):

1. **Direct calls** — ``f(...)`` resolves to a module-level function in
   the same module, to an ``import``/``from``-imported symbol, or to a
   nested function defined in an enclosing scope.  Calling a class
   resolves to its ``__init__`` and records a ``construct:<Class>``
   tag on the edge.
2. **``self`` methods** — ``self.m(...)`` resolves through the
   enclosing class and its repo-resolved base chain.
3. **Receiver types** — ``x.m(...)`` resolves when ``x``'s type is
   known from a parameter annotation, a local ``x = Class(...)``
   construction, or (for ``self.attr.m(...)``) the class's attribute
   type map built from ``__init__`` assignments and ``AnnAssign``
   annotations (``Optional[T]`` and ``T | None`` unwrap to ``T``).
4. **Backend dispatch** — a call on the result of
   ``get_backend(...)``/``_backend()`` (or on a receiver typed
   ``KernelBackend``) expands to the matching method on *every*
   registered backend class (subclasses of ``KernelBackend``), mirroring
   the ``repro.core.backend`` dispatch table.
5. **Unique-name fallback** — ``x.m(...)`` with an unknown receiver
   resolves to ``Class.m`` iff exactly one repo class defines ``m`` and
   ``m`` is not on the ambiguity deny-list (``copy``, ``close``,
   ``get``, …).  This is the only speculative rule; everything else is
   exact.
6. **Higher-order folding** — a function-valued argument (a local or
   nested function passed by name) becomes a callee of the call site,
   so effects inside callbacks like the serve layer's ``work()``
   closures are folded where they are *dispatched*.  Arguments passed
   to ``launch_warps``/``launch_threads`` are additionally marked
   kernel-scoped: the launch framework runs them inside a priced
   ``ledger.kernel`` scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lintcore import ModuleInfo, iter_python_files, load_module

#: Method names too common to trust the unique-definer fallback with.
AMBIGUOUS_METHOD_NAMES: frozenset = frozenset(
    {
        "add", "append", "as_dict", "charge", "clear", "clone", "close",
        "copy", "count", "dec", "exists", "extend", "get", "inc", "index",
        "info", "items", "keys", "load", "observe", "open", "pop", "read",
        "remove", "run", "save", "set", "start", "stop", "sync", "update",
        "values", "write",
    }
)

#: Call targets whose function-valued arguments execute inside a priced
#: ``ledger.kernel`` scope (the launch framework opens it).
KERNEL_DISPATCH_SUFFIXES: tuple = ("launch_warps", "launch_threads")

#: Names whose call results dispatch through the backend table.
BACKEND_FACTORY_NAMES: frozenset = frozenset({"get_backend", "_backend"})

#: Root class of the backend dispatch table.
BACKEND_BASE_CLASS = "KernelBackend"


@dataclass
class FunctionNode:
    """One function (or method, or nested function) in the project."""

    qualname: str
    module: str
    path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: Optional[str] = None
    #: Positional/keyword parameter names, ``self`` excluded.
    params: Tuple[str, ...] = ()
    lineno: int = 0

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassNode:
    """A class with its repo-resolved bases and attribute type map."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...] = ()
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname (from __init__/annotations)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    callees: Tuple[str, ...]
    node: ast.Call
    line: int
    #: True when the call expression sits lexically inside a
    #: ``with ledger.kernel(...)`` block (or is a kernel dispatch).
    kernel_scoped: bool = False
    #: Construction tags (``construct:<Class>``) for class calls.
    tags: Tuple[str, ...] = ()


@dataclass
class CallGraph:
    """Functions, classes, and resolved call sites for one source tree."""

    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: function qualname -> call sites in source order
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: callee qualname -> [(caller qualname, kernel_scoped)]
    callers: Dict[str, List[Tuple[str, bool]]] = field(default_factory=dict)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        node = self.functions.get(qualname)
        if node is None:
            return None
        return self.modules.get(node.module)

    def roots(self) -> List[str]:
        """Functions with no intra-repo callers (entry points)."""
        return sorted(
            q for q in self.functions if not self.callers.get(q)
        )

    def backend_classes(self) -> List[str]:
        """Qualnames of classes in the backend dispatch table."""
        out: List[str] = []
        for qual, cls in self.classes.items():
            if cls.name == BACKEND_BASE_CLASS or self._inherits(
                qual, BACKEND_BASE_CLASS
            ):
                out.append(qual)
        return sorted(out)

    def _inherits(self, class_qual: str, base_name: str) -> bool:
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            cls = self.classes.get(cur)
            if cls is None:
                continue
            for base in cls.bases:
                if base.rsplit(".", 1)[-1] == base_name:
                    return True
                stack.append(base)
        return False

    def resolve_method(
        self, class_qual: str, method: str
    ) -> Optional[str]:
        """Look ``method`` up on ``class_qual`` and its base chain."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            cls = self.classes.get(cur)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None


def module_name_for(path: "str | Path") -> str:
    """Derive a dotted module name from a file path.

    ``.../src/repro/serve/server.py`` → ``repro.serve.server``.  Trees
    without a ``src`` segment fall back to the segment after the last
    directory literally named ``repro`` (fixture trees), then to the
    stem.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src",):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx + 1 :]
            if tail:
                return ".".join(tail)
    if "repro" in parts:
        idx = parts.index("repro")
        return ".".join(parts[idx:])
    return parts[-1] if parts else str(path)


def _annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Extract a plausible class name from an annotation expression.

    Handles ``T``, ``mod.T``, ``Optional[T]``, ``T | None`` and string
    annotations containing a bare name.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        for stripper in ("Optional[", '"', "'"):
            text = text.replace(stripper, "")
        text = text.replace("]", "").split("|")[0].strip()
        return text.split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        # Optional[T] / List[T] — use the first inner name.
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_class_name(inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class_name(node.left)
        if left not in (None, "None"):
            return left
        return _annotation_class_name(node.right)
    return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleCollector:
    """First pass: functions, classes, imports for one module."""

    def __init__(self, info: ModuleInfo, graph: CallGraph) -> None:
        self.info = info
        self.graph = graph
        self.module = module_name_for(info.path)
        #: local name -> fully qualified target (module or symbol)
        self.imports: Dict[str, str] = {}
        #: local class name -> class qualname
        self.local_classes: Dict[str, str] = {}
        #: local function name -> qualname (module level)
        self.local_functions: Dict[str, str] = {}

    def collect(self) -> None:
        self.graph.modules[self.module] = self.info
        for stmt in self.info.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module is None or stmt.level:
                    continue
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._collect_function(stmt, cls=None)

    def _collect_class(self, node: ast.ClassDef) -> None:
        qual = f"{self.module}.{node.name}"
        bases = tuple(
            b for b in (_dotted_name(base) for base in node.bases) if b
        )
        cls = ClassNode(
            qualname=qual, module=self.module, name=node.name, bases=bases
        )
        self.graph.classes[qual] = cls
        self.local_classes[node.name] = qual
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._collect_function(stmt, cls=qual)
                cls.methods[stmt.name] = fn.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = _annotation_class_name(stmt.annotation)
                if name:
                    cls.attr_types[stmt.target.id] = name

    def _collect_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        cls: Optional[str],
    ) -> FunctionNode:
        scope = cls if cls is not None else self.module
        qual = f"{scope}.{node.name}"
        params = tuple(
            a.arg
            for a in (
                node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
            )
            if a.arg not in ("self", "cls")
        )
        fn = FunctionNode(
            qualname=qual,
            module=self.module,
            path=self.info.path,
            node=node,
            cls=cls,
            params=params,
            lineno=node.lineno,
        )
        self.graph.functions[qual] = fn
        if cls is None:
            self.local_functions[node.name] = qual
        # Nested functions are registered eagerly so by-name callback
        # folding can target them.
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{qual}.{inner.name}"
                if nested_qual not in self.graph.functions:
                    self.graph.functions[nested_qual] = FunctionNode(
                        qualname=nested_qual,
                        module=self.module,
                        path=self.info.path,
                        node=inner,
                        cls=cls,
                        params=tuple(
                            a.arg
                            for a in inner.args.args
                            if a.arg not in ("self", "cls")
                        ),
                        lineno=inner.lineno,
                    )
        return fn


class _Resolver:
    """Second pass: resolve call expressions for one module."""

    def __init__(
        self,
        graph: CallGraph,
        collector: _ModuleCollector,
        method_index: Dict[str, List[str]],
    ) -> None:
        self.graph = graph
        self.c = collector
        self.method_index = method_index

    # -- type lookups ----------------------------------------------------------

    def _class_by_name(self, name: Optional[str]) -> Optional[str]:
        """Map a bare class name to a class qualname (local → imported
        → unique across the repo)."""
        if not name:
            return None
        if name in self.c.local_classes:
            return self.c.local_classes[name]
        target = self.c.imports.get(name)
        if target is not None and target in self.graph.classes:
            return target
        matches = [
            q
            for q, cls in self.graph.classes.items()
            if cls.name == name
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def _local_types(
        self, fn: FunctionNode
    ) -> Dict[str, str]:
        """Best-effort ``name -> class qualname`` for a function body."""
        types: Dict[str, str] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = self._class_by_name(
                _annotation_class_name(arg.annotation)
            )
            if cls is not None:
                types[arg.arg] = cls
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call):
                    callee = value.func
                    name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else (
                            callee.attr
                            if isinstance(callee, ast.Attribute)
                            else None
                        )
                    )
                    cls = self._class_by_name(name)
                    if cls is not None:
                        types[target.id] = cls
                    elif name in BACKEND_FACTORY_NAMES:
                        types[target.id] = "<backend>"
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls = self._class_by_name(
                    _annotation_class_name(stmt.annotation)
                )
                if cls is not None:
                    types[stmt.target.id] = cls
        return types

    def _attr_type(
        self, cls_qual: Optional[str], attr: str
    ) -> Optional[str]:
        if cls_qual is None:
            return None
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            cls = self.graph.classes.get(cur)
            if cls is None:
                continue
            name = cls.attr_types.get(attr)
            if name is not None:
                if name == "<backend>":
                    return name
                resolved = self._class_by_name(name)
                if resolved is not None:
                    return resolved
            stack.extend(cls.bases)
        return None

    # -- call resolution -------------------------------------------------------

    def _backend_targets(self, method: str) -> List[str]:
        out: List[str] = []
        for qual in self.graph.backend_classes():
            target = self.graph.resolve_method(qual, method)
            if target is not None:
                out.append(target)
        return sorted(set(out))

    def _is_backend_receiver(
        self, node: ast.AST, types: Dict[str, str]
    ) -> bool:
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
            )
            return name in BACKEND_FACTORY_NAMES
        if isinstance(node, ast.Name):
            hint = types.get(node.id)
            if hint == "<backend>":
                return True
            if hint is not None:
                cls = self.graph.classes.get(hint)
                return cls is not None and (
                    cls.name == BACKEND_BASE_CLASS
                    or self.graph._inherits(hint, BACKEND_BASE_CLASS)
                )
        return False

    def resolve(
        self,
        fn: FunctionNode,
        call: ast.Call,
        types: Dict[str, str],
        local_callables: Dict[str, str],
    ) -> Tuple[List[str], List[str]]:
        """Resolve one call; returns (callee qualnames, tags)."""
        callees: List[str] = []
        tags: List[str] = []
        func = call.func

        if isinstance(func, ast.Name):
            name = func.id
            if name in local_callables:
                callees.append(local_callables[name])
            elif name in self.c.local_functions:
                callees.append(self.c.local_functions[name])
            elif name in self.c.local_classes:
                tags.append(f"construct:{self.c.local_classes[name]}")
                init = self.graph.resolve_method(
                    self.c.local_classes[name], "__init__"
                )
                if init is not None:
                    callees.append(init)
            else:
                target = self.c.imports.get(name)
                if target is not None:
                    if target in self.graph.functions:
                        callees.append(target)
                    elif target in self.graph.classes:
                        tags.append(f"construct:{target}")
                        init = self.graph.resolve_method(
                            target, "__init__"
                        )
                        if init is not None:
                            callees.append(init)
        elif isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            dotted = _dotted_name(func)
            resolved = False
            # 1. fully dotted module path (`mod.sub.f(...)`).
            if dotted is not None and "." in dotted:
                head, rest = dotted.split(".", 1)
                base = self.c.imports.get(head)
                if base is not None:
                    full = f"{base}.{rest}"
                    if full in self.graph.functions:
                        callees.append(full)
                        resolved = True
                    elif full in self.graph.classes:
                        tags.append(f"construct:{full}")
                        init = self.graph.resolve_method(
                            full, "__init__"
                        )
                        if init is not None:
                            callees.append(init)
                        resolved = True
            # 2. backend dispatch.
            if not resolved and self._is_backend_receiver(
                receiver, types
            ):
                targets = self._backend_targets(method)
                if targets:
                    callees.extend(targets)
                    tags.append("dispatch:backend")
                    resolved = True
            # 3. self.<method> / typed receivers.
            if not resolved:
                cls_qual: Optional[str] = None
                if isinstance(receiver, ast.Name):
                    if receiver.id == "self":
                        cls_qual = fn.cls
                    else:
                        hint = types.get(receiver.id)
                        if hint not in (None, "<backend>"):
                            cls_qual = hint
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    cls_qual = self._attr_type(fn.cls, receiver.attr)
                    if cls_qual == "<backend>":
                        targets = self._backend_targets(method)
                        if targets:
                            callees.extend(targets)
                            tags.append("dispatch:backend")
                        cls_qual = None
                        resolved = True
                if cls_qual is not None:
                    target = self.graph.resolve_method(cls_qual, method)
                    if target is not None:
                        callees.append(target)
                        resolved = True
            # 4. unique-definer fallback.
            if (
                not resolved
                and not method.startswith("__")
                and method not in AMBIGUOUS_METHOD_NAMES
            ):
                definers = self.method_index.get(method, [])
                if len(definers) == 1:
                    target = self.graph.resolve_method(
                        definers[0], method
                    )
                    if target is not None:
                        callees.append(target)

        # Higher-order folding: by-name function arguments become
        # callees of this call site.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            name = arg.id if isinstance(arg, ast.Name) else None
            if name is None:
                continue
            if name in local_callables:
                callees.append(local_callables[name])
            elif name in self.c.local_functions:
                callees.append(self.c.local_functions[name])
        return sorted(set(callees)), tags


def _is_kernel_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "kernel"
        ):
            return True
    return False


def _collect_calls(
    graph: CallGraph,
    resolver: _Resolver,
    fn: FunctionNode,
) -> List[CallSite]:
    """Walk ``fn``'s body in source order, resolving calls and tracking
    lexical ``ledger.kernel`` coverage."""
    types = resolver._local_types(fn)
    local_callables: Dict[str, str] = {}
    for stmt in fn.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_callables[stmt.name] = f"{fn.qualname}.{stmt.name}"
    sites: List[CallSite] = []

    def visit(node: ast.AST, kernel: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn.node:
                return  # nested defs are separate FunctionNodes
        if isinstance(node, (ast.With, ast.AsyncWith)):
            opens = isinstance(node, ast.With) and _is_kernel_with(node)
            for item in node.items:
                visit(item.context_expr, kernel)
            for child in node.body:
                visit(child, kernel or opens)
            return
        if isinstance(node, ast.Call):
            callees, tags = resolver.resolve(
                fn, node, types, local_callables
            )
            scoped = kernel
            dotted = _dotted_name(node.func) or ""
            if dotted.rsplit(".", 1)[-1] in KERNEL_DISPATCH_SUFFIXES:
                scoped = True
            if callees or tags:
                sites.append(
                    CallSite(
                        callees=tuple(callees),
                        node=node,
                        line=node.lineno,
                        kernel_scoped=scoped,
                        tags=tuple(tags),
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, kernel)

    for stmt in fn.node.body:
        visit(stmt, False)
    return sites


def build_callgraph(
    paths: Iterable["str | Path"],
) -> CallGraph:
    """Build the project call graph for every ``.py`` file under ``paths``."""
    graph = CallGraph()
    collectors: List[_ModuleCollector] = []
    for path in iter_python_files(paths):
        try:
            info = load_module(path)
        except SyntaxError:
            continue
        collector = _ModuleCollector(info, graph)
        collector.collect()
        collectors.append(collector)

    method_index: Dict[str, List[str]] = {}
    for qual, cls in graph.classes.items():
        for method in cls.methods:
            method_index.setdefault(method, []).append(qual)

    for collector in collectors:
        resolver = _Resolver(graph, collector, method_index)
        for fn in list(graph.functions.values()):
            if fn.module != collector.module:
                continue
            if fn.qualname in graph.calls:
                continue
            sites = _collect_calls(graph, resolver, fn)
            graph.calls[fn.qualname] = sites
            for site in sites:
                for callee in site.callees:
                    graph.callers.setdefault(callee, []).append(
                        (fn.qualname, site.kernel_scoped)
                    )
    return graph


def callgraph_stats(graph: CallGraph) -> Dict[str, int]:
    """Small summary used by the gate's report."""
    n_edges = sum(
        len(site.callees)
        for sites in graph.calls.values()
        for site in sites
    )
    return {
        "modules": len(graph.modules),
        "functions": len(graph.functions),
        "classes": len(graph.classes),
        "call_sites": sum(len(s) for s in graph.calls.values()),
        "edges": n_edges,
    }
