"""Declarative repo invariants checked against effect signatures.

Each invariant is data: a scope (regexes over module paths and
function qualnames), the effect atoms involved, and a *kind* that picks
the checking algorithm.  Violations become ordinary
:class:`~repro.analysis.lintcore.Finding` objects — same pragma
(``# repro-lint: allow[<invariant-id>] reason``) and baseline machinery
as the AST rule pack, keyed by qualified symbol so they survive file
moves.

The catalog (``INVARIANTS``):

``wal-after-ack``
    In serve-layer functions that both journal (``wal.append`` /
    ``journal.append``) and acknowledge (``ack`` / ``socket.send`` /
    ``session.construct``), the first durable append must precede the
    first acknowledgement/state-construction in event order.  This is
    the PR 8 WAL-append-before-ack contract.
``digest-reaches-cutacc``
    No call path from ``state_digest``/``save_partitioner``/
    ``write_checkpoint`` may reach derived ``CutAccumulator`` state
    (``cutacc.read``).  The accumulator is excluded from digests and
    checkpoints (PR 7); a digest that observes it would break
    recovery bit-identity.
``uncharged-device-write``
    A device-array subscript store in the kernel layers must be
    covered by a priced ``ledger.kernel`` scope — lexically, or at
    some call site on every root-reachable path.  Writes reachable
    from a call-graph root with no scope on the stack are mutations
    the cost model never sees.
``ledgered-backend-kernel``
    Methods of ``repro.core.backend`` dispatch-table classes must not
    charge the ledger, directly or transitively: backends are pure
    array functions and cost stays in callers (the PR 7 bit-identity
    contract).
``unseeded-hotpath-rng``
    A refinement/balancing hot-path function that uses RNG must take
    an explicit seed-ish parameter (``seed``/``rng``/``generator``/…)
    so reruns stay bit-identical.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.effects.infer import EffectEngine, EffectSignature
from repro.analysis.lintcore import Finding, ModuleInfo


@dataclass(frozen=True)
class Invariant:
    """One declarative invariant over effect signatures.

    ``kind`` selects the algorithm:

    * ``order`` — within each in-scope function carrying both effect
      classes, the first ``first``-class event must precede the first
      ``then``-class event.
    * ``forbid-reach`` — no function matching ``source_pattern`` may
      transitively reach an effect in ``forbidden``.
    * ``guard-device-write`` — in-scope functions with a direct
      ``device.write.uncharged`` effect must not be *exposed*
      (root-reachable without a kernel-scoped call edge).
    * ``forbid-effect`` — in-scope functions must not carry any effect
      in ``forbidden``.
    * ``require-param`` — in-scope functions with a *direct* effect in
      ``trigger`` must declare a seed-ish parameter.
    """

    id: str
    kind: str
    description: str
    module_pattern: str = ""
    function_pattern: str = ""
    source_pattern: str = ""
    first: FrozenSet[str] = frozenset()
    then: FrozenSet[str] = frozenset()
    forbidden: FrozenSet[str] = frozenset()
    trigger: FrozenSet[str] = frozenset()
    #: Module-path regexes exempt from this invariant.
    exempt_modules: Tuple[str, ...] = ()


INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        id="wal-after-ack",
        kind="order",
        description=(
            "serve ops must append to the WAL/journal before building "
            "the ack or constructing session state"
        ),
        module_pattern=r"(^|/)serve/",
        first=frozenset({"wal.append", "journal.append"}),
        then=frozenset({"ack", "session.construct"}),
    ),
    Invariant(
        id="digest-reaches-cutacc",
        kind="forbid-reach",
        description=(
            "state digests and checkpoint serialization must never "
            "observe derived CutAccumulator state"
        ),
        source_pattern=(
            r"\.(state_digest|save_partitioner|write_checkpoint)$"
        ),
        forbidden=frozenset({"cutacc.read"}),
    ),
    Invariant(
        id="uncharged-device-write",
        kind="guard-device-write",
        description=(
            "device-array writes in the kernel layers must be covered "
            "by a priced ledger.kernel scope on every entry path"
        ),
        module_pattern=r"(^|/)(core|partition)/",
        exempt_modules=(
            r"core/transaction\.py$",  # undo-log replay
            r"core/serialize\.py$",  # checkpoint load rebuilds arrays
            r"core/backend/",  # pure array functions, charged by callers
            r"core/cpu_baseline\.py$",  # host-side reference implementation
        ),
    ),
    Invariant(
        id="ledgered-backend-kernel",
        kind="forbid-effect",
        description=(
            "backend dispatch-table kernels must stay ledger-free; "
            "modeled cost is charged by callers"
        ),
        module_pattern=r"(^|/)core/backend/",
        forbidden=frozenset({"ledger.charge"}),
    ),
    Invariant(
        id="unseeded-hotpath-rng",
        kind="require-param",
        description=(
            "refinement/balancing hot paths may only use RNG through "
            "an explicit seed-ish parameter"
        ),
        module_pattern=(
            r"(^|/)(core/(refinement|balancing)|"
            r"partition/(refine|jet|fm|warp_kernels))\.py$"
        ),
        trigger=frozenset({"rng"}),
    ),
)


def get_invariants(
    ids: Optional[Iterable[str]] = None,
) -> List[Invariant]:
    if ids is None:
        return list(INVARIANTS)
    known = {inv.id: inv for inv in INVARIANTS}
    missing = [i for i in ids if i not in known]
    if missing:
        raise KeyError(
            f"unknown invariant id(s): {', '.join(missing)}"
        )
    return [known[i] for i in ids]


class InvariantChecker:
    """Checks the catalog against one :class:`EffectEngine`."""

    def __init__(self, engine: EffectEngine) -> None:
        self.engine = engine
        self._exposed: Optional[set] = None

    # -- helpers ---------------------------------------------------------------

    def _in_scope(
        self, inv: Invariant, sig: EffectSignature
    ) -> bool:
        posix = Path(sig.path).as_posix()
        if inv.module_pattern and not re.search(
            inv.module_pattern, posix
        ):
            return False
        for pattern in inv.exempt_modules:
            if re.search(pattern, posix):
                return False
        if inv.function_pattern and not re.search(
            inv.function_pattern, sig.qualname
        ):
            return False
        return True

    def _module_for(self, sig: EffectSignature) -> Optional[ModuleInfo]:
        fn = self.engine.graph.functions.get(sig.qualname)
        if fn is None:
            return None
        return self.engine.graph.modules.get(fn.module)

    def _finding(
        self,
        inv: Invariant,
        sig: EffectSignature,
        line: int,
        message: str,
    ) -> Optional[Finding]:
        info = self._module_for(sig)
        if info is not None and info.is_allowed(inv.id, line):
            return None
        return Finding(
            rule=inv.id,
            path=sig.path,
            line=line,
            message=message,
            symbol=sig.qualname,
        )

    # -- per-kind checks -------------------------------------------------------

    def check(self, inv: Invariant) -> List[Finding]:
        checker = {
            "order": self._check_order,
            "forbid-reach": self._check_forbid_reach,
            "guard-device-write": self._check_guard_device_write,
            "forbid-effect": self._check_forbid_effect,
            "require-param": self._check_require_param,
        }.get(inv.kind)
        if checker is None:
            raise ValueError(f"unknown invariant kind {inv.kind!r}")
        findings = [f for f in checker(inv) if f is not None]
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings

    def _check_order(self, inv: Invariant) -> Iterable[Optional[Finding]]:
        for sig in self.engine.signatures.values():
            if not self._in_scope(inv, sig):
                continue
            if not (
                inv.first & sig.effects and inv.then & sig.effects
            ):
                continue
            first_idx = sig.first_index(inv.first, self.engine)
            then_idx = sig.first_index(inv.then, self.engine)
            if first_idx is None or then_idx is None:
                continue
            if then_idx < first_idx:
                event = sig.events[then_idx]
                line = (
                    event.line
                    if hasattr(event, "line")
                    else event.site.line
                )
                yield self._finding(
                    inv,
                    sig,
                    line,
                    f"{sig.qualname} reaches "
                    f"{'/'.join(sorted(inv.then & sig.effects))} before "
                    f"its first "
                    f"{'/'.join(sorted(inv.first & sig.effects))} "
                    f"({inv.description})",
                )

    def _check_forbid_reach(
        self, inv: Invariant
    ) -> Iterable[Optional[Finding]]:
        pattern = re.compile(inv.source_pattern)
        for sig in self.engine.signatures.values():
            if not pattern.search(sig.qualname):
                continue
            hit = inv.forbidden & sig.effects
            if not hit:
                continue
            atom = sorted(hit)[0]
            witness = sig.provenance.get(atom, (sig.qualname, sig.lineno))
            yield self._finding(
                inv,
                sig,
                witness[1],
                f"{sig.qualname} reaches {atom} via {witness[0]} "
                f"({inv.description})",
            )

    def _check_guard_device_write(
        self, inv: Invariant
    ) -> Iterable[Optional[Finding]]:
        if self._exposed is None:
            self._exposed = self.engine.exposed_functions()
        for sig in self.engine.signatures.values():
            if not self._in_scope(inv, sig):
                continue
            if "device.write.uncharged" not in sig.direct:
                continue
            if sig.qualname not in self._exposed:
                continue
            witness = sig.provenance.get(
                "device.write.uncharged", (sig.qualname, sig.lineno)
            )
            yield self._finding(
                inv,
                sig,
                witness[1],
                f"{sig.qualname} writes a device array outside any "
                f"ledger.kernel scope and is reachable from an entry "
                f"point without one ({inv.description})",
            )

    def _check_forbid_effect(
        self, inv: Invariant
    ) -> Iterable[Optional[Finding]]:
        for sig in self.engine.signatures.values():
            if not self._in_scope(inv, sig):
                continue
            hit = inv.forbidden & sig.effects
            if not hit:
                continue
            atom = sorted(hit)[0]
            witness = sig.provenance.get(atom, (sig.qualname, sig.lineno))
            yield self._finding(
                inv,
                sig,
                witness[1],
                f"{sig.qualname} carries {atom} (via {witness[0]}) "
                f"({inv.description})",
            )

    def _check_require_param(
        self, inv: Invariant
    ) -> Iterable[Optional[Finding]]:
        for sig in self.engine.signatures.values():
            if not self._in_scope(inv, sig):
                continue
            if not (inv.trigger & sig.direct):
                continue
            if sig.has_seed_param:
                continue
            atom = sorted(inv.trigger & sig.direct)[0]
            witness = sig.provenance.get(atom, (sig.qualname, sig.lineno))
            yield self._finding(
                inv,
                sig,
                witness[1],
                f"{sig.qualname} uses RNG but declares no seed-ish "
                f"parameter ({inv.description})",
            )


@dataclass
class InvariantResult:
    """Per-invariant outcome with the timing the gate reports."""

    invariant: Invariant
    findings: List[Finding] = field(default_factory=list)
    seconds: float = 0.0


def check_invariants(
    engine: EffectEngine,
    invariants: Optional[Iterable[Invariant]] = None,
) -> List[InvariantResult]:
    """Run ``invariants`` (default: the full catalog) against ``engine``."""
    import time

    checker = InvariantChecker(engine)
    results: List[InvariantResult] = []
    for inv in invariants if invariants is not None else INVARIANTS:
        start = time.perf_counter()
        findings = checker.check(inv)
        results.append(
            InvariantResult(
                invariant=inv,
                findings=findings,
                seconds=time.perf_counter() - start,
            )
        )
    return results


def run_effects_analysis(
    paths: Iterable[str],
    invariant_ids: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], "EffectsTiming"]:
    """One-call entry point: infer effects, check invariants.

    Returns the flat sorted finding list plus a timing breakdown for
    the gate's report.
    """
    import time

    from repro.analysis.effects.infer import infer_effects

    t0 = time.perf_counter()
    engine = infer_effects(paths)
    build_seconds = time.perf_counter() - t0
    results = check_invariants(engine, get_invariants(invariant_ids))
    findings = [f for r in results for f in r.findings]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    timing = EffectsTiming(
        build_seconds=build_seconds,
        results=results,
        n_functions=len(engine.signatures),
        engine=engine,
    )
    return findings, timing


@dataclass
class EffectsTiming:
    """Timing/size breakdown of one whole-repo effects run."""

    build_seconds: float
    results: List[InvariantResult]
    n_functions: int
    engine: Optional[EffectEngine] = None

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + sum(r.seconds for r in self.results)

    def rows(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = [
            {
                "stage": "callgraph+inference",
                "seconds": round(self.build_seconds, 4),
                "findings": "",
            }
        ]
        for r in self.results:
            out.append(
                {
                    "stage": r.invariant.id,
                    "seconds": round(r.seconds, 4),
                    "findings": len(r.findings),
                }
            )
        return out
