"""Seeded-bad (and matching good) fixture trees for the invariants.

Each invariant in the catalog has a miniature source tree that
violates it — a WAL appended *after* the ack, a digest that reads
``CutAccumulator`` state, an unpriced device write — plus a corrected
twin.  ``run_selftest`` materializes every pair into a temp directory
and asserts the invariant fires on the bad tree and stays silent on
the good one; a checker that cannot re-find these seeded bugs would
let the repo-wide pass succeed vacuously, so both
``tools/effects_gate.py`` and ``tools/analysis_gate.py`` run this
before trusting a clean repo result.

Fixture paths mirror the real layout (``src/repro/...``) because the
invariants scope by module path.
"""

from __future__ import annotations

import tempfile
import textwrap
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.effects.invariants import run_effects_analysis
from repro.analysis.lintcore import Finding

#: invariant id -> (bad tree, good tree); trees are relpath -> source.
FIXTURES: Dict[str, Tuple[Dict[str, str], Dict[str, str]]] = {
    "wal-after-ack": (
        {
            "src/repro/serve/bad_server.py": """
            def ok_response(**fields):
                return dict(fields)

            class BadServer:
                def _op_create(self, request):
                    response = ok_response(ok=True)
                    self.wal.append_create("t", "s", {})
                    return response
            """,
        },
        {
            "src/repro/serve/good_server.py": """
            def ok_response(**fields):
                return dict(fields)

            class GoodServer:
                def _op_create(self, request):
                    self.wal.append_create("t", "s", {})
                    return ok_response(ok=True)
            """,
        },
    ),
    "digest-reaches-cutacc": (
        {
            "src/repro/core/bad_digest.py": """
            def _fold_derived(state):
                return state.cut_acc

            def state_digest(graph, state):
                acc = _fold_derived(state)
                return [graph, acc]
            """,
        },
        {
            "src/repro/core/good_digest.py": """
            def state_digest(graph, state):
                return [graph, state.partition_bytes()]
            """,
        },
    ),
    "uncharged-device-write": (
        {
            "src/repro/core/bad_write.py": """
            def blank_slots(graph, positions):
                graph.bucket_list[positions] = -1
            """,
        },
        {
            "src/repro/core/good_write.py": """
            def blank_slots(ctx, graph, positions):
                ledger = ctx.ledger
                with ledger.kernel("blank-slots"):
                    graph.bucket_list[positions] = -1
                    ledger.charge_transactions(1)
            """,
        },
    ),
    "ledgered-backend-kernel": (
        {
            "src/repro/core/backend/bad_backend.py": """
            class KernelBackend:
                pass

            class CheatingBackend(KernelBackend):
                def choose_partition(self, counts, ledger):
                    self._bill(ledger)
                    return counts

                def _bill(self, ledger):
                    ledger.charge_instructions(1)
            """,
        },
        {
            "src/repro/core/backend/good_backend.py": """
            class KernelBackend:
                pass

            class PureBackend(KernelBackend):
                def choose_partition(self, counts):
                    return counts.argmax()
            """,
        },
    ),
    "unseeded-hotpath-rng": (
        {
            "src/repro/core/refinement.py": """
            import numpy as np

            def jitter_moves(buffer):
                rng = np.random.default_rng()
                return rng.random(len(buffer))
            """,
        },
        {
            "src/repro/core/refinement.py": """
            import numpy as np

            def jitter_moves(buffer, seed):
                rng = np.random.default_rng(seed)
                return rng.random(len(buffer))
            """,
        },
    ),
}


def materialize(tree: Dict[str, str], root: "str | Path") -> Path:
    """Write a fixture tree under ``root``; returns the tree root."""
    root = Path(root)
    for relpath, code in tree.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code), encoding="utf-8")
    return root


def run_fixture(tree: Dict[str, str]) -> List[Finding]:
    """Run the full effects analysis over one materialized tree."""
    with tempfile.TemporaryDirectory(prefix="repro-effects-") as tmp:
        root = materialize(tree, tmp)
        findings, _timing = run_effects_analysis([root])
    return findings


def run_selftest() -> List[str]:
    """Prove every invariant fires on its bad tree and not the good.

    Returns failure descriptions (empty = pass).
    """
    failures: List[str] = []
    for invariant_id, (bad, good) in sorted(FIXTURES.items()):
        bad_rules = {f.rule for f in run_fixture(bad)}
        if invariant_id not in bad_rules:
            failures.append(
                f"{invariant_id}: seeded-bad fixture was NOT flagged "
                f"(fired: {sorted(bad_rules) or 'nothing'})"
            )
        good_hits = [
            f for f in run_fixture(good) if f.rule == invariant_id
        ]
        if good_hits:
            failures.append(
                f"{invariant_id}: clean fixture produced "
                f"{len(good_hits)} false positive(s): {good_hits[0]}"
            )
    return failures
