"""Static analysis and dynamic sanitizers for the reproduction.

Three complementary checkers live here, completing the gate trio
started by the perf gate (``tools/perf_gate.py``) and the chaos gate
(``tools/chaos_gate.py``):

* **Warp-access sanitizer** (:mod:`repro.analysis.shadow`) — an opt-in
  shadow-memory mode on the :mod:`repro.gpusim` layer.  While a
  :class:`~repro.analysis.shadow.ShadowSession` is active, every
  indexed read/write of the instrumented device arrays performed
  inside a kernel launch is recorded as an access event attributed to
  the executing warp.  Intra-launch write-write and read-write
  conflicts between warps that are not mediated by an atomic (or, for
  unordered launches, by the launch's declared serialization contract)
  are reported as race findings, and per-launch trace digests expose
  cross-run nondeterminism.
* **AST lint pack** (:mod:`repro.analysis.lintcore` +
  :mod:`repro.analysis.rules`) — repo-specific rules enforcing the
  contracts earlier PRs established in prose: vectorized hot paths stay
  loop-free, RNG is always seeded, partition/core logic never depends
  on set iteration order, kernel charges land inside a priced
  ``ledger.kernel`` scope, bucket-pool writes go through the undo-log
  APIs, and exceptions are never silently swallowed.
* **Interprocedural effect invariants** (:mod:`repro.analysis.effects`)
  — a whole-repo pass that builds a project-wide call graph, infers
  per-function effect signatures to a fixed point, and checks the
  contracts no single-file rule can see: WAL/journal appends dominate
  client acks in the serve ops, checkpoint/digest serialization never
  reads the derived ``CutAccumulator``, device-array writes are covered
  by priced ``ledger.kernel`` scopes on every entry path, backend
  kernels stay ledger-free, and refinement hot paths never draw
  unseeded randomness.

All are wired into ``make check`` through ``tools/analysis_gate.py``
and ``tools/effects_gate.py`` with a checked-in baseline for
grandfathered findings; the ``repro-lint`` console script exposes the
lint pack directly (``--effects`` adds the interprocedural pass).
"""

from repro.analysis.baseline import Baseline
from repro.analysis.lintcore import (
    Finding,
    LintRule,
    ModuleInfo,
    lint_paths,
    load_module,
)
from repro.analysis.rules import ALL_RULES, get_rules
from repro.analysis.shadow import (
    LaunchTrace,
    RaceFinding,
    ShadowSession,
    ShadowTracker,
    compare_traces,
    shadow_wrap,
)
from repro.analysis.sweep import SweepReport, run_sanitized_sweep

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LaunchTrace",
    "LintRule",
    "ModuleInfo",
    "RaceFinding",
    "ShadowSession",
    "ShadowTracker",
    "SweepReport",
    "compare_traces",
    "get_rules",
    "lint_paths",
    "load_module",
    "run_sanitized_sweep",
    "shadow_wrap",
]
