"""``repro-lint`` — run the repo's AST lint pack from the command line.

Typical invocations::

    repro-lint src tools benchmarks examples
    repro-lint --baseline tools/analysis_baseline.json src tools
    repro-lint --update-baseline tools/analysis_baseline.json src tools
    repro-lint --rules unseeded-rng,blind-except src
    repro-lint --effects src            # lint rules + effect invariants
    repro-lint --effects-only src/repro # just the interprocedural pass
    repro-lint --json src

Exit status is 1 when any non-baselined finding remains (or when the
baseline has stale entries that should be pruned), 0 otherwise.  Also
runnable as ``python -m repro.analysis.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.lintcore import Finding, lint_paths
from repro.analysis.rules import ALL_RULES, get_rules


def _findings_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "symbol": f.symbol,
                "message": f.message,
            }
            for f in findings
        ],
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific AST lint pack (see repro.analysis.rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract grandfathered findings recorded in FILE",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="rewrite FILE to cover the current findings exactly, "
        "keeping reasons for surviving entries",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="also run the interprocedural effect-invariant pass "
        "(repro.analysis.effects) over the same paths",
    )
    parser.add_argument(
        "--effects-only",
        action="store_true",
        help="run only the effect-invariant pass, skipping the "
        "per-module lint rules",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.id:22s} {doc}")
        return 0

    rule_ids = args.rules.split(",") if args.rules else None
    try:
        rules = get_rules(rule_ids)
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    findings: list[Finding] = []
    if not args.effects_only:
        findings.extend(lint_paths(args.paths, rules))
    if args.effects or args.effects_only:
        # Imported lazily: the effects pass pulls in the whole
        # call-graph machinery, which plain lint runs don't need.
        from repro.analysis.effects import run_effects_analysis

        effect_findings, timing = run_effects_analysis(args.paths)
        findings.extend(effect_findings)
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        if not args.json:
            print(
                f"effects: {timing.n_functions} functions analyzed in "
                f"{timing.total_seconds:.2f}s"
            )

    if args.update_baseline:
        previous = Baseline.load(args.update_baseline)
        updated = Baseline.from_findings(findings, reasons=previous.reasons)
        updated.save(args.update_baseline)
        print(
            f"baseline {args.update_baseline}: "
            f"{sum(e.count for e in updated.entries.values())} finding(s) "
            f"across {len(updated.entries)} key(s)"
        )
        return 0

    stale: list[str] = []
    if args.baseline:
        baseline = Baseline.load(args.baseline)
        findings, stale = baseline.filter(findings)

    if args.json:
        print(_findings_json(findings))
    else:
        for finding in findings:
            print(finding)
        for entry in stale:
            print(f"stale baseline entry: {entry}")
        if findings or stale:
            print(
                f"{len(findings)} finding(s), {len(stale)} stale baseline "
                "entr(y/ies)"
            )
        else:
            print("repro-lint: clean")
    return 1 if findings or stale else 0


if __name__ == "__main__":
    sys.exit(main())
