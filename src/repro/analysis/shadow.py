"""Shadow-memory warp-access sanitizer for the simulated GPU.

The simulator executes warps one after another, so data races never
corrupt results *here* — but the same kernels, compiled to CUDA, would
run their warps concurrently.  A kernel that is only correct because the
simulator serializes warps is a porting bug waiting to happen, and a
silent one: it would surface on real hardware as a flaky cut size or a
drifting partition digest.

The sanitizer makes the hazard machine-checked.  It has three parts:

* :func:`shadow_wrap` view-casts a device array into a
  :class:`ShadowArray`, an ``ndarray`` subclass whose ``__getitem__`` /
  ``__setitem__`` report the touched *flat addresses* to a
  :class:`ShadowTracker` before delegating to NumPy.  Wrapping shares
  the buffer — no copy, bit-identical behavior — and arrays are only
  wrapped while a session is active, so disabled runs pay nothing.
* :class:`ShadowTracker` hangs off ``GpuContext.shadow`` (``None`` by
  default).  The launch framework (:mod:`repro.gpusim.kernel`) tells it
  when a launch opens, which warp is executing, and whether the launch
  is *ordered* (see below); the atomics module flags accesses performed
  inside an ``atomic_*`` read-modify-write.  Accesses outside a launch
  are host code and are ignored.
* At launch end the tracker classifies conflicts and appends
  :class:`RaceFinding` records, plus one :class:`LaunchTrace` (a digest
  of the full in-order access stream) used by
  :func:`compare_traces` to detect cross-run nondeterminism.

Conflict model
--------------

Within one launch, two accesses to the same address from *different*
warps conflict when at least one is a write and they are not both
atomic.  A launch declared ``ordered=True`` (e.g. ``apply-modifiers``,
whose slot ops are dependent by construction and documented to
serialize in batch order) skips the cross-warp check — its determinism
is guarded by the trace digest instead.  Within one warp, a single
scatter that writes the same address from multiple lanes is always a
conflict: the hardware would land an arbitrary lane's value.  A scalar
(single-address) write is leader-mediated by construction — the
ballot/``__ffs`` election patterns of Algorithms 1-4 funnel into
exactly one lane before storing.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

#: Findings stop being *stored* (but keep being counted) past this cap,
#: so a hopelessly racy kernel cannot exhaust memory via its report.
MAX_FINDINGS = 200


@dataclass(frozen=True)
class RaceFinding:
    """One unmediated conflicting access pair inside a launch."""

    kind: str  #: ``write-write`` | ``read-write`` | ``intra-warp-write``
    kernel: str
    launch_seq: int
    array: str
    address: int
    first_warp: int
    second_warp: int
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"[{self.kind}] kernel {self.kernel!r} (launch "
            f"#{self.launch_seq}): {self.array}[{self.address}] touched "
            f"by warps {self.first_warp} and {self.second_warp}"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass(frozen=True)
class LaunchTrace:
    """Digest of one launch's in-order access stream."""

    seq: int
    kernel: str
    ordered: bool
    n_warps: int
    n_events: int
    digest: str


@dataclass
class _LaunchState:
    seq: int
    kernel: str
    ordered: bool
    warp: int = -1
    n_warps: int = 0
    n_events: int = 0
    hasher: Any = field(
        default_factory=lambda: hashlib.blake2b(digest_size=16)
    )
    #: Per array name: parallel event lists (warp id, is_write, atomic,
    #: flat address vector).  Only analyzed for unordered launches.
    events: dict = field(default_factory=dict)


def compare_traces(
    first: "list[LaunchTrace]", second: "list[LaunchTrace]"
) -> list[str]:
    """Explain how two launch-trace streams diverge (empty = identical).

    Two runs of the same seeded workload must produce the same launches
    in the same order with the same access digests; anything else means
    some kernel's memory behavior depends on state outside the seed —
    exactly the nondeterminism the perf/chaos digests would only catch
    downstream, after it has already corrupted a result.
    """
    problems: list[str] = []
    if len(first) != len(second):
        problems.append(
            f"launch count differs: {len(first)} vs {len(second)}"
        )
    for a, b in zip(first, second):
        if a.kernel != b.kernel:
            problems.append(
                f"launch #{a.seq}: kernel {a.kernel!r} vs {b.kernel!r}"
            )
        elif a.digest != b.digest:
            problems.append(
                f"launch #{a.seq} ({a.kernel!r}): access trace diverged "
                f"({a.n_events} vs {b.n_events} events)"
            )
    return problems


class ShadowTracker:
    """Collects access events and classifies intra-launch conflicts.

    One tracker is attached per :class:`~repro.gpusim.context.GpuContext`
    (via :class:`ShadowSession`); it is cheap to create and holds only
    findings, launch digests, and the currently-open launch's events.
    """

    def __init__(self, max_findings: int = MAX_FINDINGS) -> None:
        self.max_findings = max_findings
        self.findings: list[RaceFinding] = []
        self.n_conflicts = 0
        self.launches: list[LaunchTrace] = []
        self._launch: "_LaunchState | None" = None
        self._depth = 0
        self._atomic_depth = 0
        self._suppress = 0
        self._index_maps: dict[str, np.ndarray] = {}

    # -- launch scoping (called by repro.gpusim.kernel) ---------------------

    def begin_launch(self, kernel: str, ordered: bool) -> None:
        """Open a launch scope.

        A launch opened while another is active has no CUDA analogue
        (kernels here never launch kernels); its accesses fold into the
        outer launch and only the matching ``end_launch`` closes it.
        """
        self._depth += 1
        if self._depth > 1:
            return
        self._launch = _LaunchState(
            seq=len(self.launches), kernel=kernel, ordered=ordered
        )

    def begin_warp(self, warp: int) -> None:
        """Attribute subsequent accesses to warp ``warp`` (0-based)."""
        st = self._launch
        if st is not None:
            st.warp = warp
            st.n_warps = max(st.n_warps, warp + 1)

    def end_launch(self) -> None:
        """Close the launch: run conflict analysis, record the digest."""
        st = self._launch
        if st is None or self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        self._launch = None
        if not st.ordered:
            self._analyze_conflicts(st)
        self.launches.append(
            LaunchTrace(
                seq=st.seq,
                kernel=st.kernel,
                ordered=st.ordered,
                n_warps=st.n_warps,
                n_events=st.n_events,
                digest=st.hasher.hexdigest(),
            )
        )

    # -- access scoping ------------------------------------------------------

    @contextmanager
    def atomic_scope(self) -> Iterator[None]:
        """Mark accesses in the block as one atomic read-modify-write."""
        self._atomic_depth += 1
        try:
            yield
        finally:
            self._atomic_depth -= 1

    @contextmanager
    def suppressed(self) -> Iterator[None]:
        """Hide accesses in the block from the tracker (introspection)."""
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    @property
    def active(self) -> bool:
        """True when accesses would currently be recorded."""
        return self._launch is not None and self._suppress == 0

    # -- event recording -----------------------------------------------------

    def record_indexed(
        self, name: str, array: np.ndarray, key: object, is_write: bool
    ) -> None:
        """Record one indexed access of ``array`` (named ``name``).

        ``key`` is whatever was passed to ``__getitem__``/``__setitem__``;
        the touched flat addresses are recovered by applying the same key
        to a cached ``arange`` map, so every indexing form NumPy accepts
        (ints, slices, fancy vectors, boolean masks, tuples) is
        supported uniformly.
        """
        st = self._launch
        if st is None or self._suppress:
            return
        flat = self._flat_indices(name, array, key)
        if flat is None:
            return
        atomic = self._atomic_depth > 0
        st.n_events += 1
        st.hasher.update(
            b"W" if is_write else b"R"
        )
        st.hasher.update(
            st.warp.to_bytes(4, "little", signed=True)
            + (b"A" if atomic else b"-")
            + name.encode()
            + b"\x00"
            + flat.tobytes()
        )
        if is_write and not atomic and flat.size > 1:
            self._check_scatter_duplicates(st, name, flat)
        if not st.ordered:
            st.events.setdefault(name, []).append(
                (st.warp, is_write, atomic, flat)
            )

    def record_collective(self, kind: str, value: object) -> None:
        """Fold a warp collective's result into the launch digest.

        Ballot masks and shuffle/reduce results determine which lane is
        elected leader and which branch a warp takes, so two runs whose
        *memory* accesses happen to coincide but whose collectives
        differ are still nondeterministic — hashing the collective
        results makes the trace digest sensitive to that too.
        """
        st = self._launch
        if st is None or self._suppress:
            return
        st.n_events += 1
        st.hasher.update(
            b"C"
            + st.warp.to_bytes(4, "little", signed=True)
            + kind.encode()
            + b"\x00"
            + str(value).encode()
        )

    def _flat_indices(
        self, name: str, array: np.ndarray, key: object
    ) -> "np.ndarray | None":
        base = np.asarray(array)
        index_map = self._index_maps.get(name)
        if index_map is None or index_map.shape != base.shape:
            index_map = np.arange(base.size, dtype=np.int64).reshape(
                base.shape
            )
            self._index_maps[name] = index_map
        try:
            selected = index_map[key]
        except (IndexError, TypeError, ValueError):
            # The real access will raise (or use a form the map cannot
            # mirror); nothing sound to record.
            return None
        return np.atleast_1d(np.asarray(selected, dtype=np.int64)).ravel()

    def _check_scatter_duplicates(
        self, st: _LaunchState, name: str, flat: np.ndarray
    ) -> None:
        unique, counts = np.unique(flat, return_counts=True)
        for addr in unique[counts > 1]:
            lanes = np.flatnonzero(flat == addr)
            self._add_finding(
                RaceFinding(
                    kind="intra-warp-write",
                    kernel=st.kernel,
                    launch_seq=st.seq,
                    array=name,
                    address=int(addr),
                    first_warp=st.warp,
                    second_warp=st.warp,
                    detail=(
                        f"one scatter writes the address from lanes "
                        f"{lanes.tolist()}; the hardware would keep an "
                        "arbitrary lane's value (no leader election)"
                    ),
                )
            )

    # -- conflict analysis ---------------------------------------------------

    def _analyze_conflicts(self, st: _LaunchState) -> None:
        for name, events in st.events.items():
            writes = [e for e in events if e[1]]
            if not writes:
                continue
            written = np.unique(np.concatenate([e[3] for e in writes]))
            # (warp, is_write, atomic) participants per written address.
            per_addr: dict[int, list[tuple[int, bool, bool]]] = {}
            for warp, is_write, atomic, flat in events:
                hits = flat[np.isin(flat, written)]
                for addr in np.unique(hits):
                    per_addr.setdefault(int(addr), []).append(
                        (warp, is_write, atomic)
                    )
            for addr, accesses in sorted(per_addr.items()):
                self._classify_address(st, name, addr, accesses)

    def _classify_address(
        self,
        st: _LaunchState,
        name: str,
        addr: int,
        accesses: "list[tuple[int, bool, bool]]",
    ) -> None:
        """Report the first unmediated cross-warp conflict on ``addr``."""
        for i, (warp_a, write_a, atomic_a) in enumerate(accesses):
            for warp_b, write_b, atomic_b in accesses[i + 1 :]:
                if warp_a == warp_b:
                    continue  # same warp: warp-synchronous, ordered
                if not (write_a or write_b):
                    continue  # read-read never conflicts
                if atomic_a and atomic_b:
                    continue  # atomics serialize against each other
                kind = (
                    "write-write"
                    if write_a and write_b
                    else "read-write"
                )
                mediation = (
                    "one side is atomic, the other is a plain access"
                    if atomic_a or atomic_b
                    else "neither access is atomic"
                )
                self._add_finding(
                    RaceFinding(
                        kind=kind,
                        kernel=st.kernel,
                        launch_seq=st.seq,
                        array=name,
                        address=addr,
                        first_warp=warp_a,
                        second_warp=warp_b,
                        detail=(
                            f"{mediation}; launch is declared "
                            "order-independent"
                        ),
                    )
                )
                return

    def _add_finding(self, finding: RaceFinding) -> None:
        self.n_conflicts += 1
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)


# ---------------------------------------------------------------------------
# The instrumented array type.
# ---------------------------------------------------------------------------


class ShadowArray(np.ndarray):
    """``ndarray`` view that reports indexed accesses to a tracker.

    Only the *named* wrapper object records: views and ufunc results
    derived from it come out of ``__array_finalize__`` with no tracker
    attached, so downstream temporaries behave like plain arrays.  The
    buffer is shared with the wrapped array — wrapping never copies.
    """

    _shadow_name: "str | None"
    _shadow_tracker: "ShadowTracker | None"

    def __array_finalize__(self, obj: object) -> None:
        self._shadow_name = None
        self._shadow_tracker = None

    def __getitem__(self, key: object) -> Any:
        tracker = self._shadow_tracker
        if tracker is not None and tracker.active:
            tracker.record_indexed(
                self._shadow_name or "?", self, key, is_write=False
            )
        return super().__getitem__(key)

    def __setitem__(self, key: object, value: object) -> None:
        tracker = self._shadow_tracker
        if tracker is not None and tracker.active:
            tracker.record_indexed(
                self._shadow_name or "?", self, key, is_write=True
            )
        super().__setitem__(key, value)

    def __reduce__(self) -> Any:
        # Pickle (np.savez of an instrumented graph) as a plain array:
        # the tracker is session state, never part of the data.
        return np.asarray(self).__reduce__()


def shadow_wrap(
    array: np.ndarray, name: str, tracker: ShadowTracker
) -> ShadowArray:
    """Return a tracked view of ``array`` registered under ``name``."""
    view = np.asarray(array).view(ShadowArray)
    view._shadow_name = name
    view._shadow_tracker = tracker
    return view


# ---------------------------------------------------------------------------
# Session: attach/detach instrumentation around a workload.
# ---------------------------------------------------------------------------


#: Device arrays of a :class:`~repro.graph.bucketlist.BucketListGraph`
#: that the incremental kernels (Algorithms 1-4) read and write.
GRAPH_ARRAYS = ("bucket_list", "slot_wgt", "vertex_status", "vwgt")

#: Device arrays of a :class:`~repro.partition.state.PartitionState`
#: the refinement/balancing kernels consult.
STATE_ARRAYS = ("partition", "part_weights")


class ShadowSession:
    """Scoped shadow-memory mode on one :class:`GpuContext`.

    Entering the session sets ``ctx.shadow`` (observed by the launch
    framework and the atomics) and swaps the registered arrays for
    tracked views; exiting restores both, so instrumentation can never
    leak into a production run.  Attach targets after entering::

        tracker = ShadowTracker()
        with ShadowSession(ig.ctx, tracker) as session:
            session.attach_graph(ig.graph)
            session.attach_state(ig.state)
            for batch in trace:
                ig.apply(batch)
        assert not tracker.findings

    Arrays an object *reassigns* during the session (e.g. a bucket pool
    grown past its capacity) silently drop their instrumentation; the
    sweep sizes its workloads so pools are stable, and the trace digest
    still covers every access made before the reassignment.
    """

    def __init__(
        self, ctx: Any, tracker: "ShadowTracker | None" = None
    ) -> None:
        self.ctx = ctx
        self.tracker = tracker if tracker is not None else ShadowTracker()
        self._restore: list[tuple[Any, str, np.ndarray]] = []
        self._entered = False

    def attach(self, obj: Any, attrs: "tuple[str, ...]", prefix: str) -> None:
        """Swap ``obj.<attr>`` for tracked views named ``prefix.<attr>``."""
        if not self._entered:
            raise RuntimeError("attach targets after entering the session")
        for attr in attrs:
            array = getattr(obj, attr)
            self._restore.append((obj, attr, array))
            setattr(
                obj, attr, shadow_wrap(array, f"{prefix}.{attr}", self.tracker)
            )

    def attach_graph(self, graph: Any, prefix: str = "graph") -> None:
        self.attach(graph, GRAPH_ARRAYS, prefix)

    def attach_state(self, state: Any, prefix: str = "state") -> None:
        self.attach(state, STATE_ARRAYS, prefix)

    def __enter__(self) -> "ShadowSession":
        if getattr(self.ctx, "shadow", None) is not None:
            raise RuntimeError("context already has an active shadow session")
        self.ctx.shadow = self.tracker
        self._entered = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        for obj, attr, array in reversed(self._restore):
            setattr(obj, attr, array)
        self._restore.clear()
        self.ctx.shadow = None
        self._entered = False
