"""Deliberately racy / deliberately clean toy kernels.

These exist so the sanitizer itself is testable: the gate and the test
suite run both and assert that the racy kernel is reliably flagged and
the clean kernel produces zero findings (no false positive).  They use
the same launch framework and warp primitives as the real kernels, so
they also serve as minimal worked examples of what the sanitizer sees.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.shadow import ShadowSession, ShadowTracker, shadow_wrap
from repro.gpusim.atomics import atomic_add
from repro.gpusim.context import FULL_MASK, WARP_SIZE, GpuContext
from repro.gpusim.kernel import launch_warps
from repro.gpusim.warp import Warp


def run_racy_kernel(n_warps: int = 4, seed: int = 0) -> ShadowTracker:
    """All warps read-modify-write ``out[0]`` with plain accesses.

    Every pair of warps is a write-write conflict on the same address,
    unmediated by atomics — the canonical lost-update race.  ``seed``
    only perturbs the written values, demonstrating that detection does
    not depend on the data.
    """
    ctx = GpuContext()
    out = np.zeros(8, dtype=np.int64)
    tracker = ShadowTracker()
    with ShadowSession(ctx, tracker):
        shadowed = shadow_wrap(out, "fixture.out", tracker)

        def body(warp: Warp, item: int) -> None:
            old = shadowed[0]
            warp.charge(instructions=1, transactions=1)
            shadowed[0] = old + item + seed

        launch_warps(ctx, list(range(1, n_warps + 1)), body, name="racy-sum")
    return tracker


def run_intra_warp_racy_kernel() -> ShadowTracker:
    """One warp scatters to the same address from every lane.

    A single ``warp.store`` whose index vector repeats an address is an
    intra-warp hazard even though only one warp runs: the hardware
    retires an arbitrary lane's value.
    """
    ctx = GpuContext()
    out = np.zeros(WARP_SIZE, dtype=np.int64)
    tracker = ShadowTracker()
    with ShadowSession(ctx, tracker):
        shadowed = shadow_wrap(out, "fixture.out", tracker)

        def body(warp: Warp, item: int) -> None:
            # Every lane targets slot 3: no leader election.
            warp.store(
                shadowed, np.full(WARP_SIZE, 3, dtype=np.int64), warp.lane_id
            )

        launch_warps(ctx, [0], body, name="racy-scatter")
    return tracker


def run_clean_kernel(n_warps: int = 4) -> ShadowTracker:
    """A correctly-mediated kernel the sanitizer must pass.

    Exercises the three legitimate patterns: disjoint per-warp writes,
    shared-location accumulation through ``atomic_add``, and a
    ballot-elected single-lane (leader) store after a cooperative read.
    """
    ctx = GpuContext()
    per_warp = np.zeros(max(n_warps, 1), dtype=np.int64)
    total = np.zeros(1, dtype=np.int64)
    slots = np.arange(WARP_SIZE, dtype=np.int64)
    tracker = ShadowTracker()
    with ShadowSession(ctx, tracker):
        out = shadow_wrap(per_warp, "fixture.per_warp", tracker)
        acc = shadow_wrap(total, "fixture.total", tracker)
        values = shadow_wrap(slots, "fixture.slots", tracker)

        def body(warp: Warp, item: int) -> None:
            lane_vals = warp.load(values, warp.lane_id)
            hit = warp.ballot_sync(FULL_MASK, lane_vals == item)
            # Leader lane (lowest set bit) writes this warp's own slot.
            out[item] = (hit & -hit).bit_length() - 1
            atomic_add(ctx, acc, 0, 1)

        launch_warps(ctx, list(range(n_warps)), body, name="clean-kernel")
    return tracker
