"""Core of the repo-specific AST lint pack.

The framework is deliberately small: a rule is a class with an ``id``,
a docstring explaining the contract it enforces, and a ``check`` method
that walks a parsed module and yields :class:`Finding` objects.  What
the framework adds on top of :mod:`ast` is the repo's suppression
machinery:

* ``# repro-lint: hot-path`` — a file-level marker (anywhere in the
  file, conventionally in the module docstring's vicinity) declaring
  the file a vectorized hot path.  Rules that only apply to hot paths
  (``hot-path-loop``) fire solely in marked files.
* ``# repro-lint: allow[rule-id] reason`` — suppresses ``rule-id`` on
  the line carrying the comment, or on the next code line when the
  comment stands alone.  ``allow[a,b]`` suppresses several rules at
  once, and a pragma on a decorator line extends to the decorated
  ``def``.  The reason is mandatory; an allow without one is itself
  reported (rule id ``bad-pragma``), so every grandfathered exception
  is justified in-place.

Pragmas are read with :mod:`tokenize` so they work in any position a
real comment can occupy (and *only* real comments — pragma-shaped text
inside strings and f-strings is inert).  Findings are keyed by
``(rule, qualified symbol, message)`` — the symbol is the enclosing
``module.Class.function`` — rather than line numbers or raw paths, so
the checked-in baseline survives unrelated edits *and* file
renames/moves (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: File-level marker declaring a vectorized hot path (PR 2 contract).
HOT_PATH_MARKER = "hot-path"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<body>.*\S)\s*$",
)
_ALLOW_RE = re.compile(
    r"allow\[(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\]\s*(?P<reason>.*)$",
)


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    ``message`` is written to be stable under unrelated edits: it names
    the construct (function, loop variable, call) rather than quoting
    source text.  ``symbol`` is the qualified enclosing symbol
    (``module.Class.function``); the baseline keys on ``(rule, symbol,
    message)`` so findings survive file renames, falling back to the
    path for module-scope findings in unresolvable trees.
    """

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        """Rename-stable identity used by the baseline.

        Keys on the qualified symbol when one was resolved (the shape
        of the finding), and on the path only as a fallback.
        """
        return (self.rule, self.symbol or self.path, self.message)

    @property
    def legacy_key(self) -> tuple[str, str, str]:
        """Pre-symbol identity: baselines written before symbols
        existed are matched through this."""
        return (self.rule, self.path, self.message)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus the pragma and parent maps rules rely on."""

    path: str
    tree: ast.Module
    source: str
    #: Line numbers carrying ``allow[rule]`` pragmas → {rule: reason}.
    allowed: dict[int, dict[str, str]] = field(default_factory=dict)
    #: Findings produced while *parsing* pragmas (missing reasons).
    pragma_findings: list[Finding] = field(default_factory=list)
    hot_path: bool = False
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def is_allowed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is suppressed on ``line`` by a pragma."""
        return rule in self.allowed.get(line, {})

    @property
    def module_name(self) -> str:
        """Dotted module name derived from the path.

        ``.../src/repro/serve/server.py`` → ``repro.serve.server``;
        trees without a ``src`` segment anchor on the last ``repro``
        directory, then fall back to the stem.
        """
        parts = list(Path(self.path).parts)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if "src" in parts:
            idx = len(parts) - 1 - parts[::-1].index("src")
            tail = parts[idx + 1 :]
            if tail:
                return ".".join(tail)
        if "repro" in parts:
            return ".".join(parts[parts.index("repro") :])
        return parts[-1] if parts else self.path

    def qualified_symbol(self, node: ast.AST) -> str:
        """``module.Class.function`` for the scope enclosing ``node``.

        The node's own name is included when it *is* a def/class;
        module-scope nodes resolve to the bare module name.  This is
        the rename-stable identity findings key on.
        """
        names: list[str] = []
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.append(node.name)
        for anc in self.ancestors(node):
            if isinstance(
                anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(anc.name)
        names.append(self.module_name)
        return ".".join(reversed(names))


def load_module(path: str | Path) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo` (tree + pragmas + parents)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    info = ModuleInfo(path=str(path), tree=tree, source=source)
    _collect_pragmas(info)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            info.parents[child] = parent
    _extend_decorator_pragmas(info)
    return info


def _extend_decorator_pragmas(info: ModuleInfo) -> None:
    """A pragma on a decorator line also covers the decorated def.

    Findings about a decorated function anchor on the ``def`` line,
    but the natural place to write the pragma is often next to the
    decorator that causes the finding — honor both.
    """
    for node in ast.walk(info.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        for deco in node.decorator_list:
            allows = info.allowed.get(deco.lineno)
            if not allows:
                continue
            for rule, reason in allows.items():
                info.allowed.setdefault(node.lineno, {}).setdefault(
                    rule, reason
                )


def _collect_pragmas(info: ModuleInfo) -> None:
    """Scan comments with tokenize and populate the suppression maps.

    A standalone-comment pragma (nothing but whitespace before the
    ``#``) applies to the next line as well, so allows can sit above
    long statements without breaking line length.
    """
    code_lines: set[int] = set()
    comments: list[tuple[int, int, str]] = []  # (line, col, text)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(info.source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                code_lines.add(tok.start[0])
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        return

    for line, col, text in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        body = match.group("body")
        if body == HOT_PATH_MARKER:
            info.hot_path = True
            continue
        allow = _ALLOW_RE.match(body)
        if allow is None:
            info.pragma_findings.append(
                Finding(
                    rule="bad-pragma",
                    path=info.path,
                    line=line,
                    message=f"unrecognized repro-lint pragma {body!r}",
                )
            )
            continue
        rules = [r.strip() for r in allow.group("rules").split(",")]
        reason = allow.group("reason").strip()
        if not reason:
            info.pragma_findings.append(
                Finding(
                    rule="bad-pragma",
                    path=info.path,
                    line=line,
                    message=(
                        f"allow[{','.join(rules)}] pragma is missing "
                        "a reason"
                    ),
                )
            )
            continue
        targets = [line]
        if line not in code_lines or col == 0:
            # Standalone comment: also covers the next line.
            targets.append(line + 1)
        for target in targets:
            for rule in rules:
                info.allowed.setdefault(target, {})[rule] = reason


class LintRule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, used in pragmas and baselines)
    and implement :meth:`check`.  ``applies_to`` lets path-scoped rules
    skip whole files cheaply.
    """

    id: str = ""

    def applies_to(self, info: ModuleInfo) -> bool:
        return True

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, info: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=info.path,
            line=getattr(node, "lineno", 0),
            message=message,
            symbol=info.qualified_symbol(node),
        )


def lint_module(info: ModuleInfo, rules: Sequence[LintRule]) -> list[Finding]:
    """Run ``rules`` over one parsed module, honoring allow pragmas."""
    findings = list(info.pragma_findings)
    for rule in rules:
        if not rule.applies_to(info):
            continue
        for finding in rule.check(info):
            if info.is_allowed(rule.id, finding.line):
                continue
            findings.append(finding)
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[LintRule]
) -> list[Finding]:
    """Lint every Python file under ``paths`` with ``rules``.

    Files that fail to parse produce a single ``syntax-error`` finding
    instead of aborting the run — the gate should report the file, not
    crash.
    """
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            info = load_module(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=str(path),
                    line=exc.lineno or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        findings.extend(lint_module(info, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
