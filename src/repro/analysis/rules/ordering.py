"""``set-iter-order``: no hash-order-dependent iteration in kernels.

Partitioning results must be identical run to run (the determinism
digest in :mod:`repro.analysis.shadow` checks the dynamic side).  On
the static side, iterating a ``set``/``frozenset`` — or materializing
one with ``list(set(...))`` — visits elements in hash order, which for
strings varies per process unless ``PYTHONHASHSEED`` is pinned.  In
``partition/`` and ``core/`` that ordering can leak into tie-breaking
and therefore into the produced partition.  ``sorted(set(...))`` is the
sanctioned spelling.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_SET_CONSTRUCTORS = {"set", "frozenset"}
#: Set methods returning sets; iterating their result is order-dependent.
_SET_COMBINATORS = {
    "difference", "intersection", "symmetric_difference", "union",
}
_MATERIALIZERS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_COMBINATORS:
            # ``a.union(b)`` only returns a set when ``a`` is one; without
            # type inference this is a heuristic, but these method names
            # are set vocabulary throughout this repo.
            return True
    return False


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute):
            return f".{func.attr}(...)"
    return "a set expression"


class SetIterOrderRule(LintRule):
    """Flag direct iteration/materialization of set expressions."""

    id = "set-iter-order"

    def applies_to(self, info: ModuleInfo) -> bool:
        posix = Path(info.path).as_posix()
        return "/partition/" in posix or "/core/" in posix

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.For) and _is_set_expression(node.iter):
                yield self._finding(info, node, node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expression(gen.iter):
                        yield self._finding(
                            info, node, gen.iter, "comprehension"
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _MATERIALIZERS
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    yield self._finding(
                        info, node, node.args[0], f"{func.id}(...)"
                    )

    def _finding(
        self, info: ModuleInfo, node: ast.AST, iterable: ast.AST, where: str
    ) -> Finding:
        func = info.enclosing_function(node)
        scope = f"function {func.name!r}" if func else "module scope"
        return self.finding(
            info,
            node,
            f"{where} in {scope} iterates {_describe(iterable)} in hash "
            "order; wrap it in sorted() to fix the order",
        )
