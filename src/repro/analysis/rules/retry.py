"""``unjittered-retry-loop``: retries must pace themselves with jitter.

A retry loop that swallows an error and immediately loops again — or
sleeps a *constant* delay — synchronizes its clients: every caller that
failed together retries together, producing the classic thundering-herd
wave that keeps a just-recovered server saturated.  The PR 8 serve
client's contract is bounded attempts with exponential backoff and
*seeded* jitter; this rule keeps that contract from regressing, in the
client and in any future retry site.

A loop is considered a retry loop when both hold:

* its control variable is attempt-ish — a ``for`` target (or a name in
  a ``while`` condition) containing ``attempt``, ``retry`` or
  ``tries``, or a ``for ... in range(n)`` whose bound's name is
  attempt-ish;
* its body contains a ``try``/``except`` that survives the failure
  (some handler neither re-raises unconditionally nor returns), i.e.
  the loop can actually iterate again after an error.

Such a loop must pace its next attempt: somewhere in the body (or in a
helper it calls) there must be a call whose name mentions ``backoff``,
``jitter``, ``sleep``, ``wait``, ``delay`` or ``pause``.  A pacing call
named for backoff/jitter is trusted; a plain sleep-ish call is accepted
only when its delay argument is *computed* (any non-constant
expression) — ``sleep(0.1)`` with a literal is exactly the synchronized
herd this rule exists to prevent.

Deliberate unpaced retries (e.g. draining a simulated-time server where
sleeping cannot help) are grandfathered per line with ``# repro-lint:
allow[unjittered-retry-loop] reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

#: Substrings marking a loop variable as an attempt counter.
_ATTEMPTISH = ("attempt", "retry", "retries", "tries")

#: Call-name substrings that definitely pace with backoff/jitter.
_PACED_NAMES = ("backoff", "jitter")

#: Call-name substrings that sleep; jitter must be proven by a
#: non-constant delay argument.
_SLEEPY_NAMES = ("sleep", "wait", "delay", "pause")


def _is_attemptish(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _ATTEMPTISH)


def _call_name(node: ast.Call) -> Optional[str]:
    """The trailing identifier of the called thing, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _loop_variable(node: "ast.For | ast.While") -> Optional[str]:
    """The attempt-ish name controlling the loop, if there is one."""
    if isinstance(node, ast.For):
        if isinstance(node.target, ast.Name) and _is_attemptish(
            node.target.id
        ):
            return node.target.id
        # for _ in range(max_attempts): the bound names the intent.
        if (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            for arg in node.iter.args:
                for name in ast.walk(arg):
                    if isinstance(name, ast.Name) and _is_attemptish(
                        name.id
                    ):
                        return name.id
        return None
    for name in ast.walk(node.test):
        if isinstance(name, ast.Name) and _is_attemptish(name.id):
            return name.id
    return None


def _handler_survives(handler: ast.ExceptHandler) -> bool:
    """True when the handler can let the loop run another attempt.

    A handler whose every terminal statement is ``raise`` or ``return``
    never reaches the next iteration; anything else (fall-through,
    ``continue``, conditional re-raise) can.
    """
    for stmt in ast.walk(handler):
        if isinstance(stmt, (ast.Continue, ast.Break)):
            return True
    last = handler.body[-1] if handler.body else None
    return not isinstance(last, (ast.Raise, ast.Return))


def _retrying_try(node: "ast.For | ast.While") -> Optional[ast.Try]:
    """The loop body's try/except that swallows failures, if any."""
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Try) and any(
            _handler_survives(h) for h in stmt.handlers
        ):
            return stmt
    return None


class UnjitteredRetryLoopRule(LintRule):
    """Flag retry loops that never back off, or back off in lockstep."""

    id = "unjittered-retry-loop"

    def applies_to(self, info: ModuleInfo) -> bool:
        return "except" in info.source

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            variable = _loop_variable(node)
            if variable is None:
                continue
            if _retrying_try(node) is None:
                continue
            verdict = self._pacing_verdict(node)
            if verdict is None:
                continue
            yield self.finding(
                info,
                node,
                f"retry loop over {variable!r} {verdict}; pace "
                "attempts with bounded exponential backoff and "
                "seeded jitter (see ServeClient._backoff)",
            )

    @staticmethod
    def _pacing_verdict(
        node: "ast.For | ast.While",
    ) -> Optional[str]:
        """The problem with the loop's pacing, or None when paced."""
        sleeps: list[ast.Call] = []
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(call)
            if name is None:
                continue
            lowered = name.lower()
            if any(m in lowered for m in _PACED_NAMES):
                return None
            if any(m in lowered for m in _SLEEPY_NAMES):
                sleeps.append(call)
        if not sleeps:
            return "never sleeps between attempts"
        for call in sleeps:
            if any(
                not isinstance(arg, ast.Constant) for arg in call.args
            ):
                return None
        return "sleeps a constant delay between attempts"
