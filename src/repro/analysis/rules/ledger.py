"""``uncharged-kernel``: kernel charges must land in a priced scope.

The cost model only converts warp instructions and memory transactions
into device-seconds for work recorded inside a ``ledger.kernel(...)``
scope — that is where the compute/memory overlap pricing happens.
Charges made outside a scope still increment the raw counters, so the
perf gate's counter comparison passes while the *time* silently reads
zero.  This rule catches the mistake statically in the kernel layers
(``core/`` and ``partition/``): any ``charge_wavefront``,
``charge_irregular_warps``, ``charge_instructions`` or
``charge_transactions`` call must be lexically inside a ``with
...kernel(...)`` block.

Host-side and transfer charges (``charge_host_seconds``,
``charge_pcie_bytes``, ``charge_atomics``) are priced independently of
kernel scopes and are deliberately not checked.  A charge made by a
helper that is only ever *called* from inside a scope is a false
positive — suppress it with an allow pragma naming the caller.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_SCOPED_CHARGES = {
    "charge_wavefront",
    "charge_irregular_warps",
    "charge_instructions",
    "charge_transactions",
}


def _with_opens_kernel_scope(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "kernel"
        ):
            return True
    return False


class UnchargedKernelRule(LintRule):
    """Flag kernel-cost charges outside a ``ledger.kernel`` scope."""

    id = "uncharged-kernel"

    def applies_to(self, info: ModuleInfo) -> bool:
        posix = Path(info.path).as_posix()
        return "/partition/" in posix or "/core/" in posix

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SCOPED_CHARGES
            ):
                continue
            if any(
                isinstance(anc, ast.With) and _with_opens_kernel_scope(anc)
                for anc in info.ancestors(node)
            ):
                continue
            enclosing = info.enclosing_function(node)
            scope = (
                f"function {enclosing.name!r}" if enclosing else "module scope"
            )
            yield self.finding(
                info,
                node,
                f"{func.attr} call in {scope} is not inside a "
                "ledger.kernel(...) scope, so it will never be priced "
                "into device-seconds",
            )
