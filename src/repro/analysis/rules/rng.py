"""``unseeded-rng``: all randomness flows through explicit seeds.

The reproduction's whole value is bit-identical reruns; the perf and
chaos gates both compare against recorded expectations.  The
process-global generators (``np.random.*`` module functions,
``random.*`` module functions) and generator constructors called
without a seed break that silently.  ``repro.utils.seeding`` is the
one sanctioned wrapper and is exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_NUMPY_ALIASES = {"np", "numpy"}
#: ``random`` module functions that consult the hidden global state.
_STDLIB_GLOBAL_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _has_seed_argument(call: ast.Call) -> bool:
    return bool(call.args) or any(
        kw.arg in (None, "seed") for kw in call.keywords
    )


class UnseededRngRule(LintRule):
    """Flag global-state RNG use and seedless generator construction."""

    id = "unseeded-rng"

    def applies_to(self, info: ModuleInfo) -> bool:
        return not Path(info.path).as_posix().endswith("utils/seeding.py")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            message = self._classify(name, node)
            if message is not None:
                yield self.finding(info, node, message)

    def _classify(self, name: str, call: ast.Call) -> str | None:
        head, _, rest = name.partition(".")
        if head in _NUMPY_ALIASES and rest.startswith("random."):
            fn = rest.removeprefix("random.")
            if fn == "default_rng":
                if _has_seed_argument(call):
                    return None
                return (
                    "np.random.default_rng() without a seed; pass an "
                    "explicit seed (see repro.utils.seeding)"
                )
            if fn in ("Generator", "SeedSequence", "PCG64", "Philox"):
                return None
            return (
                f"np.random.{fn} uses the process-global RNG; construct a "
                "seeded Generator via repro.utils.seeding instead"
            )
        if name == "default_rng" and not _has_seed_argument(call):
            return (
                "default_rng() without a seed; pass an explicit seed "
                "(see repro.utils.seeding)"
            )
        if head == "random":
            if rest in _STDLIB_GLOBAL_FNS:
                return (
                    f"random.{rest} uses the process-global RNG; use a "
                    "seeded random.Random or numpy Generator instead"
                )
            if rest in ("Random", "SystemRandom") and not _has_seed_argument(
                call
            ):
                return f"random.{rest}() constructed without a seed"
        return None
