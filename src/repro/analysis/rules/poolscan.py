"""``pool-scan-outside-sanitizer``: full pool scans stay in sanitizer code.

PR 7 replaced the per-batch cut pool scan with the incremental
:class:`~repro.partition.cutacc.CutAccumulator`; the scan functions
(``cut_size_bucketlist``, ``arc_matrix_bucketlist``,
``cut_matrix_bucketlist`` and the CSR ``cut_matrix``) survive as
*ground truth* for the sanitizer cross-check and tests.  A new call
site in product code silently reintroduces the O(pool) host cost the
refactor removed — it still returns the right answer, so nothing but a
perf gate (or this rule) would catch it.

Exempt: the metrics module (where the scans are defined), the
sanitizer cross-check module (whose whole job is to run them), and
call sites carrying a ``# repro-lint: allow[pool-scan-outside-sanitizer]``
pragma with a reason (e.g. the accumulator's one-time bootstrap).
Tests are outside the lint walk entirely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_SCAN_NAMES = {
    "cut_size_bucketlist",
    "cut_matrix",
    "cut_matrix_bucketlist",
    "arc_matrix_bucketlist",
}
_EXEMPT_SUFFIXES = (
    "partition/metrics.py",
    "partition/cutcheck.py",
)


class PoolScanOutsideSanitizerRule(LintRule):
    """Flag pool-scan cut computations outside sanitizer modules."""

    id = "pool-scan-outside-sanitizer"

    def applies_to(self, info: ModuleInfo) -> bool:
        posix = Path(info.path).as_posix()
        return not posix.endswith(_EXEMPT_SUFFIXES)

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            else:
                continue
            if name not in _SCAN_NAMES:
                continue
            if name == "cut_matrix" and (
                len(node.args) + len(node.keywords) < 2
            ):
                # The O(k^2) accumulator/IGKway reads are also called
                # ``cut_matrix`` but take at most one argument; every
                # scan signature starts with (graph, partition, ...).
                continue
            func = info.enclosing_function(node)
            scope = f"function {func.name!r}" if func else "module scope"
            yield self.finding(
                info,
                node,
                f"O(pool) scan {name}() called in {scope}; hot-path code "
                "reads the incremental CutAccumulator — pool scans belong "
                "to the sanitizer cross-check (partition/cutcheck.py)",
            )
