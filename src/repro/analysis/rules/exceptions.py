"""``blind-except``: exceptions are never silently swallowed.

The fault-injection harness from PR 3 raises at deliberately awkward
moments; a ``try``/``except`` that catches everything and does nothing
converts those injected faults — and real bugs — into silent state
corruption.  Two shapes are flagged:

* a bare ``except:`` (always, whatever the body does — it catches
  ``KeyboardInterrupt`` and ``SystemExit`` too), and
* ``except Exception``/``except BaseException`` (bare or in a tuple)
  whose body does nothing but ``pass``/``...``/``continue``.

A broad except that logs, re-raises, or transforms the error is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_BROAD = {"Exception", "BaseException"}


def _names_broad_type(node: ast.expr | None) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_names_broad_type(elt) for elt in node.elts)
    return False


def _body_is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


class BlindExceptRule(LintRule):
    """Flag bare excepts and silent broad excepts."""

    id = "blind-except"

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            func = info.enclosing_function(node)
            scope = f"function {func.name!r}" if func else "module scope"
            if node.type is None:
                yield self.finding(
                    info,
                    node,
                    f"bare except in {scope}; name the exception types "
                    "(a bare except even catches KeyboardInterrupt)",
                )
            elif _names_broad_type(node.type) and _body_is_silent(node.body):
                yield self.finding(
                    info,
                    node,
                    f"broad except in {scope} swallows the exception "
                    "silently; log, re-raise, or narrow the type",
                )
