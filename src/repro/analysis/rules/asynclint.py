"""``blocking-call-in-async``: keep the serve event loop unblocked.

The PR 6 serving layer runs every tenant's protocol handling on one
asyncio event loop.  A single blocking call inside an ``async def`` —
``time.sleep``, a synchronous socket operation, a bare ``select`` —
stalls *every* tenant at once, and nothing crashes: the server just
gets mysteriously slow under load, which is the worst possible failure
mode to debug.  The blocking client in :mod:`repro.serve.client` is
fine (it is synchronous by design); the rule therefore fires only
inside ``async def`` bodies.

Flagged inside async functions:

* ``time.sleep(...)``, or bare ``sleep(...)`` when the module imported
  it from :mod:`time` (``asyncio.sleep`` is the sanctioned spelling);
* ``select.select(...)``;
* ``socket.create_connection(...)`` / ``socket.socket(...)``;
* blocking socket *methods* (``recv``, ``sendall``, ``accept``, ...)
  on receivers whose name mentions ``sock`` or ``conn`` — scoping by
  receiver name keeps unrelated ``.send()`` methods (generators,
  channels) out of the blast radius.

Genuinely intentional blocking (e.g. a bounded call into a C extension)
is grandfathered per line with ``# repro-lint:
allow[blocking-call-in-async] reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

#: Module-level calls that block: (module alias, attribute) pairs.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("select", "select"),
    ("socket", "create_connection"),
    ("socket", "socket"),
}

#: Socket methods that block the calling thread.
_BLOCKING_SOCKET_METHODS = {
    "accept",
    "connect",
    "makefile",
    "recv",
    "recv_into",
    "recvfrom",
    "send",
    "sendall",
    "sendto",
}

#: Receiver-name substrings that mark a variable as a socket/connection.
_SOCKETY_NAMES = ("sock", "conn")


def _enclosing_async_function(
    info: ModuleInfo, node: ast.AST
) -> Optional[ast.AsyncFunctionDef]:
    """The nearest enclosing function, if it is ``async def``.

    A sync helper nested inside an async function runs wherever it is
    *called*, so only the innermost function determines the verdict.
    """
    func = info.enclosing_function(node)
    if isinstance(func, ast.AsyncFunctionDef):
        return func
    return None


def _receiver_name(node: ast.AST) -> Optional[str]:
    """The dotted-path head name of a call receiver, if it has one."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class BlockingCallInAsyncRule(LintRule):
    """Flag blocking sleep/socket/select calls inside ``async def``."""

    id = "blocking-call-in-async"

    def applies_to(self, info: ModuleInfo) -> bool:
        return "async def" in info.source

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        time_sleep_names = self._bare_sleep_names(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = _enclosing_async_function(info, node)
            if func is None:
                continue
            blocked = self._blocking_call(node, time_sleep_names)
            if blocked is None:
                continue
            yield self.finding(
                info,
                node,
                f"{blocked} inside async function {func.name!r} blocks "
                "the event loop (and with it every tenant on this "
                "server); use the asyncio equivalent or hand the work "
                "to a thread",
            )

    @staticmethod
    def _bare_sleep_names(tree: ast.Module) -> set[str]:
        """Local names bound to ``time.sleep`` via ``from time import``."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        names.add(alias.asname or alias.name)
        return names

    def _blocking_call(
        self, node: ast.Call, bare_sleep: set[str]
    ) -> Optional[str]:
        """Describe the blocking call, or None if ``node`` is benign."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in bare_sleep:
                return f"{func.id}(...) (time.sleep)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name):
            if (value.id, func.attr) in _BLOCKING_MODULE_CALLS:
                return f"{value.id}.{func.attr}(...)"
        if func.attr in _BLOCKING_SOCKET_METHODS:
            receiver = _receiver_name(value)
            if receiver is not None and any(
                marker in receiver.lower() for marker in _SOCKETY_NAMES
            ):
                return f"{receiver}.{func.attr}(...)"
        return None
