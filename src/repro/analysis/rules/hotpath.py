"""``hot-path-loop``: no per-element Python loops in vectorized files.

PR 2 rewrote refinement and balancing around NumPy wavefronts; the perf
gate holds the *cost* steady, but nothing stopped a later change from
quietly reintroducing an ``O(n)`` interpreter loop whose ledger charges
happen to match.  Files that opt in with ``# repro-lint: hot-path``
promise to stay loop-free outside warp-simulation bodies.

Warp bodies legitimately loop (they model one warp's control flow, and
run once per work item by design), so functions named ``*warp*`` or
taking a parameter named ``warp`` are exempt, as is everything nested
inside them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo


def _is_warp_function(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    if "warp" in node.name:
        return True
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return "warp" in names


def _loop_label(node: ast.For | ast.While) -> str:
    if isinstance(node, ast.While):
        return "while loop"
    target = node.target
    if isinstance(target, ast.Name):
        return f"for loop over {target.id!r}"
    if isinstance(target, ast.Tuple):
        names = ",".join(
            e.id for e in target.elts if isinstance(e, ast.Name)
        )
        return f"for loop over ({names})"
    return "for loop"


class HotPathLoopRule(LintRule):
    """Flag ``for``/``while`` statements in hot-path-marked files."""

    id = "hot-path-loop"

    def applies_to(self, info: ModuleInfo) -> bool:
        return info.hot_path

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            func = info.enclosing_function(node)
            if any(
                _is_warp_function(anc)
                for anc in [node, *info.ancestors(node)]
            ):
                continue
            where = f"function {func.name!r}" if func else "module scope"
            yield self.finding(
                info,
                node,
                f"{_loop_label(node)} in {where} of a hot-path file; "
                "vectorize it or justify with an allow pragma",
            )
