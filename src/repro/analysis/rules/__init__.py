"""Repo-specific lint rules.

Each module contributes one rule enforcing a contract an earlier PR
established in prose:

* :mod:`hotpath` — ``hot-path-loop``: files marked ``# repro-lint:
  hot-path`` stay free of per-element Python loops (PR 2).
* :mod:`rng` — ``unseeded-rng``: all randomness flows through seeded
  generators; the process-global RNGs are off limits.
* :mod:`ordering` — ``set-iter-order``: partition/core logic never
  iterates sets/frozensets directly (hash-order dependent).
* :mod:`ledger` — ``uncharged-kernel``: instruction/transaction
  charges in kernel code land inside a priced ``ledger.kernel`` scope.
* :mod:`pool` — ``untracked-pool-write``: bucket-pool arrays are only
  mutated with the PR 3 undo log armed.
* :mod:`poolscan` — ``pool-scan-outside-sanitizer``: O(pool) cut scans
  live only in sanitizer/cross-check modules; hot paths read the
  incremental cut accumulator (PR 7).
* :mod:`exceptions` — ``blind-except``: no bare or silently-swallowed
  broad excepts.
* :mod:`obs` — ``span-literal``: trace span names are literal strings
  (they are cross-run aggregation keys), and ``unsorted-dict-export``:
  export methods never serialize mappings in insertion order.
* :mod:`asynclint` — ``blocking-call-in-async``: no blocking
  sleep/socket/select calls inside ``async def`` (the PR 6 serve loop
  hosts every tenant; one blocking call stalls them all).
* :mod:`retry` — ``unjittered-retry-loop``: retry loops pace their
  attempts with backoff and jitter instead of hammering in lockstep
  (the PR 8 serve-client contract).
* :mod:`tenantmetric` — ``unlabeled-tenant-metric``:
  ``serve_tenant_*`` series are registered in tenant-scoped registries
  and exported with the tenant label (the PR 10 dashboard contract).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.lintcore import LintRule
from repro.analysis.rules.asynclint import BlockingCallInAsyncRule
from repro.analysis.rules.exceptions import BlindExceptRule
from repro.analysis.rules.hotpath import HotPathLoopRule
from repro.analysis.rules.ledger import UnchargedKernelRule
from repro.analysis.rules.obs import SpanLiteralRule, UnsortedDictExportRule
from repro.analysis.rules.ordering import SetIterOrderRule
from repro.analysis.rules.pool import UntrackedPoolWriteRule
from repro.analysis.rules.poolscan import PoolScanOutsideSanitizerRule
from repro.analysis.rules.retry import UnjitteredRetryLoopRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.tenantmetric import UnlabeledTenantMetricRule

#: All rules in the pack, in reporting order.
ALL_RULES: tuple[LintRule, ...] = (
    HotPathLoopRule(),
    UnseededRngRule(),
    SetIterOrderRule(),
    UnchargedKernelRule(),
    UntrackedPoolWriteRule(),
    PoolScanOutsideSanitizerRule(),
    BlindExceptRule(),
    SpanLiteralRule(),
    UnsortedDictExportRule(),
    BlockingCallInAsyncRule(),
    UnjitteredRetryLoopRule(),
    UnlabeledTenantMetricRule(),
)


def get_rules(ids: Sequence[str] | None = None) -> list[LintRule]:
    """Return the rule pack, optionally restricted to ``ids``."""
    if ids is None:
        return list(ALL_RULES)
    known = {rule.id: rule for rule in ALL_RULES}
    missing = [i for i in ids if i not in known]
    if missing:
        raise KeyError(f"unknown rule id(s): {', '.join(missing)}")
    return [known[i] for i in ids]


__all__ = [
    "ALL_RULES",
    "BlindExceptRule",
    "BlockingCallInAsyncRule",
    "HotPathLoopRule",
    "PoolScanOutsideSanitizerRule",
    "SetIterOrderRule",
    "SpanLiteralRule",
    "UnchargedKernelRule",
    "UnjitteredRetryLoopRule",
    "UnlabeledTenantMetricRule",
    "UnseededRngRule",
    "UnsortedDictExportRule",
    "UntrackedPoolWriteRule",
    "get_rules",
]
