"""``untracked-pool-write``: bucket-pool mutation goes through the undo log.

PR 3 made batch application transactional: every mutation of the bucket
pool's device arrays is preceded by an undo-log record so a failed
batch can roll back to a bit-identical state.  A write that skips the
log works fine until the first mid-batch fault, then corrupts the
quarantine-and-retry path — the chaos gate only probes the fault points
it knows about.

This rule requires any subscript assignment to the pool arrays
(``.bucket_list``/``.slot_wgt`` for slot data,
``.vertex_status``/``.vwgt`` for vertex metadata) to appear in a
function that also arms the log (calls ``begin_undo`` or the matching
``_undo_slots``/``_undo_status``/``_undo_vertex_meta`` recorder).  The
pool implementation itself (``graph/bucketlist.py``, where the
recorders live and construction writes predate the log) and the
transaction engine (``core/transaction.py``, which *replays* undo
records) are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

_SLOT_ATTRS = {"bucket_list", "slot_wgt"}
_STATUS_ATTRS = {"vertex_status", "vwgt"}
_SLOT_UNDO = {"_undo_slots", "begin_undo"}
_STATUS_UNDO = {"_undo_status", "_undo_vertex_meta", "begin_undo"}
_EXEMPT_SUFFIXES = ("graph/bucketlist.py", "core/transaction.py")


def _assigned_pool_attrs(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """Yield (attr, target) for pool-array subscript assignment targets."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attr = target.value.attr
            if attr in _SLOT_ATTRS | _STATUS_ATTRS:
                yield attr, target


def _called_names(func: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Attribute):
                names.add(callee.attr)
            elif isinstance(callee, ast.Name):
                names.add(callee.id)
    return names


class UntrackedPoolWriteRule(LintRule):
    """Flag pool-array writes in functions that never arm the undo log."""

    id = "untracked-pool-write"

    def applies_to(self, info: ModuleInfo) -> bool:
        posix = Path(info.path).as_posix()
        return not posix.endswith(_EXEMPT_SUFFIXES)

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            for attr, _target in _assigned_pool_attrs(node):
                required = _SLOT_UNDO if attr in _SLOT_ATTRS else _STATUS_UNDO
                func = info.enclosing_function(node)
                if func is not None and _called_names(func) & required:
                    continue
                scope = (
                    f"function {func.name!r}" if func else "module scope"
                )
                wanted = "/".join(sorted(required))
                yield self.finding(
                    info,
                    node,
                    f"write to .{attr} in {scope} without arming the undo "
                    f"log (no {wanted} call in the function)",
                )
