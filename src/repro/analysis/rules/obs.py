"""Observability lint rules: ``span-literal`` and ``unsorted-dict-export``.

``span-literal``
    Trace spans are aggregation keys: ``repro-obs diff`` matches phases
    *by name* across runs, and the obs gate requires two seeded runs to
    produce structurally identical traces.  A span name built at run
    time (f-string, concatenation, variable) fractures the aggregation
    — every batch becomes its own phase and nothing diffs — so
    ``obs.span(...)`` / ``timed(...)`` must be called with a literal
    string.  Varying detail belongs in the ``batch`` correlation field,
    not the name.

``unsorted-dict-export``
    Export methods (``as_dict`` / ``as_meta`` / ``to_dict`` /
    ``as_json``) feed checkpoint blobs and gate baselines that are
    compared for equality.  ``dict(self.attr)`` copies a mapping in
    *insertion* order, which depends on event arrival history: two
    sessions with identical contents can serialize differently (the
    ``StreamTelemetry.flushes_by_reason`` bug).  The sanctioned
    spelling is a comprehension over ``sorted(...)`` keys.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

#: Call names that open a trace span (module function or method form).
_SPAN_CALLEES = {"span", "timed"}

#: Method names whose return value is serialized state.
_EXPORT_METHODS = {"as_dict", "as_meta", "to_dict", "as_json"}


def _span_callee(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SPAN_CALLEES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _SPAN_CALLEES:
        return func.attr
    return None


class SpanLiteralRule(LintRule):
    """Flag ``span``/``timed`` calls whose name is not a literal string."""

    id = "span-literal"

    def applies_to(self, info: ModuleInfo) -> bool:
        return True

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _span_callee(node)
            if callee is None:
                continue
            if not node.args:
                # Name passed by keyword or missing entirely; the
                # signature made it positional for a reason.
                name_kw = next(
                    (kw.value for kw in node.keywords if kw.arg == "name"),
                    None,
                )
                if name_kw is None or self._is_literal(name_kw):
                    continue
                yield self._finding(info, node, callee)
                continue
            if not self._is_literal(node.args[0]):
                yield self._finding(info, node, callee)

    @staticmethod
    def _is_literal(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and isinstance(
            node.value, str
        )

    def _finding(
        self, info: ModuleInfo, node: ast.Call, callee: str
    ) -> Finding:
        func = info.enclosing_function(node)
        scope = f"function {func.name!r}" if func else "module scope"
        return self.finding(
            info,
            node,
            f"{callee}(...) in {scope} builds its span name at run "
            "time; span names are cross-run aggregation keys and must "
            "be literal strings (put varying detail in batch=)",
        )


class UnsortedDictExportRule(LintRule):
    """Flag insertion-ordered ``dict(attr)`` copies in export methods."""

    id = "unsorted-dict-export"

    def applies_to(self, info: ModuleInfo) -> bool:
        return True

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "dict"):
                continue
            if len(node.args) != 1 or node.keywords:
                continue
            arg = node.args[0]
            if not isinstance(arg, ast.Attribute):
                continue
            method = info.enclosing_function(node)
            if method is None or method.name not in _EXPORT_METHODS:
                continue
            yield self.finding(
                info,
                node,
                f"dict(.{arg.attr}) in export method {method.name!r} "
                "serializes the mapping in insertion order, which "
                "depends on event history; export a comprehension over "
                "sorted(...) keys instead",
            )
