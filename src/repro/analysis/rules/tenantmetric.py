"""``unlabeled-tenant-metric``: per-tenant metrics carry their label.

The serve layer's multi-tenant scrape contract (PR 6/PR 10): every
``serve_tenant_*`` series is registered in a *tenant-scoped* registry
(each :class:`~repro.serve.quotas.TenantAccount` owns one) and rendered
through :func:`~repro.obs.metrics.to_prometheus_labeled`, which stamps
the ``tenant="..."`` label on every sample.  Two regressions defeat
that contract and silently merge tenants in the scrape — and in every
dashboard built on it:

* registering a ``serve_tenant_*`` metric on a server-global registry
  (``self.metrics.counter("serve_tenant_...")``): the series exists
  once, unlabeled, and aggregates all tenants into one number;
* exporting a tenant account's registry with the *unlabeled* renderer
  (``account.registry.to_prometheus()``): the per-tenant series lose
  their label, so identically named samples from different tenants
  collide in the scrape.

The rule flags both shapes:

* a ``counter``/``gauge``/``histogram`` registration whose metric name
  (a literal, or an f-string with a literal head) starts with
  ``serve_tenant_``, made outside a tenant-scoped class (one whose
  name mentions ``Tenant``);
* a ``.to_prometheus()`` call whose receiver expression names a tenant
  or account (``account.registry``, ``self.tenants[t]`` ...) — the
  sanctioned exporter there is ``to_prometheus_labeled``.

Deliberate exceptions (e.g. a migration shim) are grandfathered per
line with ``# repro-lint: allow[unlabeled-tenant-metric] reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lintcore import Finding, LintRule, ModuleInfo

#: Registration methods on a MetricsRegistry.
_REGISTER_METHODS = {"counter", "gauge", "histogram"}

#: Prefix reserving a metric family for per-tenant, labeled scrapes.
_TENANT_PREFIX = "serve_tenant_"

#: Receiver-identifier substrings marking a tenant-owned registry.
_TENANTISH = ("tenant", "account")


def _literal_head(node: ast.AST) -> Optional[str]:
    """The compile-time prefix of a metric-name expression.

    A plain string literal is its own head; an f-string contributes its
    leading literal segment (``f"serve_tenant_{op}"`` →
    ``"serve_tenant_"``).  Anything else has no knowable head.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(
            first.value, str
        ):
            return first.value
    return None


def _receiver_identifiers(node: ast.AST) -> Iterator[str]:
    """Every dotted-name component in a call receiver expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _enclosing_class(
    info: ModuleInfo, node: ast.AST
) -> Optional[ast.ClassDef]:
    for anc in info.ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
    return None


class UnlabeledTenantMetricRule(LintRule):
    """Flag ``serve_tenant_*`` series that would scrape unlabeled."""

    id = "unlabeled-tenant-metric"

    def applies_to(self, info: ModuleInfo) -> bool:
        return (
            _TENANT_PREFIX in info.source
            or "to_prometheus" in info.source
        )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _REGISTER_METHODS:
                finding = self._check_registration(info, node, func)
                if finding is not None:
                    yield finding
            elif func.attr == "to_prometheus":
                finding = self._check_export(info, node, func)
                if finding is not None:
                    yield finding

    def _check_registration(
        self, info: ModuleInfo, node: ast.Call, func: ast.Attribute
    ) -> Optional[Finding]:
        if not node.args:
            return None
        head = _literal_head(node.args[0])
        if head is None or not head.startswith(_TENANT_PREFIX):
            return None
        owner = _enclosing_class(info, node)
        if owner is not None and "tenant" in owner.name.lower():
            return None
        scope = (
            f"class {owner.name!r}" if owner else "module scope"
        )
        return self.finding(
            info,
            node,
            f"{func.attr}(...) registers a {_TENANT_PREFIX}* metric "
            f"in {scope}; per-tenant series live in a tenant-scoped "
            "registry (TenantAccount.registry) so the scrape renders "
            "them with the tenant label",
        )

    def _check_export(
        self, info: ModuleInfo, node: ast.Call, func: ast.Attribute
    ) -> Optional[Finding]:
        identifiers = [
            ident.lower()
            for ident in _receiver_identifiers(func.value)
        ]
        if not any(
            marker in ident
            for ident in identifiers
            for marker in _TENANTISH
        ):
            return None
        return self.finding(
            info,
            node,
            "to_prometheus() on a tenant-owned registry drops the "
            "tenant label, colliding identically named series across "
            "tenants; render it with to_prometheus_labeled(registry, "
            'tenant="...") instead',
        )
