"""Checked-in baseline of grandfathered lint findings.

The gate's contract is "no *new* findings": existing, justified
findings live in ``tools/analysis_baseline.json`` and are subtracted
from every run.  Entries are keyed by ``(rule, qualified symbol,
message)`` with a count — deliberately *not* by line number or raw
path, so reflowing a file or moving/renaming it does not invalidate
the baseline, while adding a second instance of a grandfathered
pattern does (the count goes up).

Migration: baselines written before symbol keys existed carry no
``symbol`` field.  Those legacy entries keep matching through the
finding's ``(rule, path, message)`` identity, and one pass of
``repro-lint --update-baseline`` rewrites them with symbols — after
which the file is rename-stable.

Each entry carries a human-written ``reason``; ``repro-lint
--update-baseline`` preserves reasons for keys that survive and stamps
``"TODO: justify"`` on new ones so unexplained grandfathering is
visible in review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.lintcore import Finding

_TODO_REASON = "TODO: justify"


@dataclass
class BaselineEntry:
    rule: str
    path: str
    message: str
    count: int
    reason: str = _TODO_REASON
    #: Qualified enclosing symbol; empty for legacy (path-keyed) entries.
    symbol: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        """Primary identity: symbol-keyed when a symbol is recorded."""
        return (self.rule, self.symbol or self.path, self.message)

    @property
    def is_legacy(self) -> bool:
        return not self.symbol


@dataclass
class Baseline:
    """A set of grandfathered findings with per-key counts."""

    entries: dict[tuple[str, str, str], BaselineEntry] = field(
        default_factory=dict
    )

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        baseline = cls()
        if not path.exists():
            return baseline
        data = json.loads(path.read_text(encoding="utf-8"))
        for raw in data.get("findings", []):
            entry = BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                message=raw["message"],
                count=int(raw.get("count", 1)),
                reason=raw.get("reason", _TODO_REASON),
                symbol=raw.get("symbol", ""),
            )
            baseline.entries[entry.key] = entry
        return baseline

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        reasons: Mapping[tuple[str, str, str], str] | None = None,
    ) -> "Baseline":
        """Build a baseline covering ``findings`` exactly.

        ``reasons`` (typically the previous baseline's) is consulted so
        regeneration keeps existing justifications; legacy path-keyed
        reasons migrate onto the new symbol-keyed entries.
        """
        baseline = cls()
        reasons = reasons or {}
        for finding in findings:
            key = finding.key
            entry = baseline.entries.get(key)
            if entry is None:
                baseline.entries[key] = BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    count=1,
                    reason=reasons.get(
                        key,
                        reasons.get(finding.legacy_key, _TODO_REASON),
                    ),
                    symbol=finding.symbol,
                )
            else:
                entry.count += 1
        return baseline

    @property
    def reasons(self) -> dict[tuple[str, str, str], str]:
        return {key: e.reason for key, e in self.entries.items()}

    def filter(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[str]]:
        """Split findings into (new, stale-baseline-descriptions).

        For each key, up to ``count`` occurrences are absorbed by the
        baseline; extras are new findings.  A finding is matched first
        through its symbol key and then through its legacy path key so
        pre-migration baselines keep working.  Baseline entries that no
        longer match anything are reported as stale so the file gets
        pruned rather than silently rotting.
        """
        remaining = {key: e.count for key, e in self.entries.items()}
        new: list[Finding] = []
        for finding in findings:
            matched = None
            for key in (finding.key, finding.legacy_key):
                if remaining.get(key, 0) > 0:
                    matched = key
                    break
            if matched is not None:
                remaining[matched] -= 1
            else:
                new.append(finding)
        stale = [
            f"{key[1]}: [{key[0]}] {key[2]} "
            f"(baseline count {self.entries[key].count}, "
            f"{left} unmatched)"
            for key, left in sorted(remaining.items())
            if left > 0
        ]
        return new, stale

    def save(self, path: str | Path) -> None:
        path = Path(path)
        data = {
            "comment": (
                "Grandfathered repro-lint findings.  Keys are "
                "(rule, symbol, message) with counts; regenerate with "
                "`repro-lint --update-baseline` and fill in reasons."
            ),
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "symbol": e.symbol,
                    "message": e.message,
                    "count": e.count,
                    "reason": e.reason,
                }
                for _, e in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
