"""Sanitized sweeps: run seeded workloads under shadow-memory mode.

:func:`run_sanitized_sweep` drives the canonical bench workload
(``benchmarks/bench_common.seeded_workload`` regenerated in-process —
the same circuit graph + modifier trace every bench and gate uses)
through :class:`~repro.core.igkway.IGKway` in warp mode with a
:class:`~repro.analysis.shadow.ShadowSession` attached, and returns the
race findings plus the per-launch access-trace digests.

:func:`check_determinism` runs the sweep twice from the same seed and
compares the traces: identical seeds must produce identical access
streams, or some kernel consults state outside the seed (clock, id
ordering, unseeded RNG) — the class of bug that otherwise only shows up
as a flaky partition digest in the perf gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.shadow import (
    LaunchTrace,
    RaceFinding,
    ShadowSession,
    ShadowTracker,
    compare_traces,
)
from repro.core.igkway import IGKway
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph.generators import circuit_graph
from repro.gpusim.context import GpuContext
from repro.partition.config import PartitionConfig

#: Default sweep scale: big enough that every incremental kernel
#: (Algorithms 1-4) launches with multi-warp grids, small enough that
#: the per-warp simulator plus instrumentation stays in gate budget.
SWEEP_VERTICES = 400
SWEEP_BATCHES = 2
SWEEP_SEED = 7
SWEEP_K = 4


@dataclass
class SweepReport:
    """Outcome of one sanitized sweep."""

    n_vertices: int
    batches: int
    seed: int
    k: int
    mode: str
    findings: list[RaceFinding] = field(default_factory=list)
    n_conflicts: int = 0
    launches: list[LaunchTrace] = field(default_factory=list)
    final_cut: int = 0
    ledger_instructions: int = 0
    ledger_transactions: int = 0

    @property
    def clean(self) -> bool:
        return self.n_conflicts == 0

    def summary(self) -> str:
        status = "clean" if self.clean else f"{self.n_conflicts} conflicts"
        return (
            f"sanitized sweep ({self.n_vertices}v/{self.batches} batches, "
            f"seed {self.seed}, mode {self.mode}): {len(self.launches)} "
            f"launches traced, {status}"
        )


def _sweep_workload(
    n_vertices: int, batches: int, seed: int
) -> "tuple[Any, Any]":
    """The bench_common seeded workload, regenerated in-process.

    Mirrors ``benchmarks/bench_common.seeded_workload`` (same generator,
    same trace config, same seed derivation) without importing from the
    benchmarks directory, which is not a package on ``sys.path`` for
    library consumers.
    """
    from repro.eval.workloads import auto_modifier_range

    csr = circuit_graph(n_vertices, edge_ratio=1.3, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=batches,
            modifiers_per_iteration=auto_modifier_range(csr.num_vertices),
            seed=seed,
        ),
    )
    return csr, trace


def run_sanitized_sweep(
    n_vertices: int = SWEEP_VERTICES,
    batches: int = SWEEP_BATCHES,
    seed: int = SWEEP_SEED,
    k: int = SWEEP_K,
    mode: str = "warp",
) -> SweepReport:
    """One incremental sweep under shadow mode; returns the report.

    The full (from-scratch) partition runs *before* the session opens —
    the sanitizer targets the incremental kernels of Algorithms 1-4,
    which are the warp-cooperative ones.  Warp mode is the default
    because that path exercises lane-level access patterns; vector mode
    still yields launch digests for its bulk scatters.
    """
    csr, trace = _sweep_workload(n_vertices, batches, seed)
    ctx = GpuContext()
    ig = IGKway(csr, PartitionConfig(k=k, mode=mode), ctx=ctx)
    ig.full_partition()

    tracker = ShadowTracker()
    with ShadowSession(ctx, tracker) as session:
        session.attach_graph(ig.graph)
        session.attach_state(ig.state)
        for batch in trace:
            ig.apply(batch)

    total = ctx.ledger.total
    return SweepReport(
        n_vertices=n_vertices,
        batches=batches,
        seed=seed,
        k=k,
        mode=mode,
        findings=list(tracker.findings),
        n_conflicts=tracker.n_conflicts,
        launches=list(tracker.launches),
        final_cut=ig.cut_size(),
        ledger_instructions=total.warp_instructions,
        ledger_transactions=total.transactions,
    )


def check_determinism(
    n_vertices: int = SWEEP_VERTICES,
    batches: int = SWEEP_BATCHES,
    seed: int = SWEEP_SEED,
    k: int = SWEEP_K,
    mode: str = "warp",
) -> "tuple[SweepReport, list[str]]":
    """Run the sweep twice from one seed; return (first report, diffs).

    An empty diff list certifies the access traces are bit-identical
    across runs — the launch-order determinism contract.
    """
    first = run_sanitized_sweep(n_vertices, batches, seed, k, mode)
    second = run_sanitized_sweep(n_vertices, batches, seed, k, mode)
    problems = compare_traces(first.launches, second.launches)
    if first.final_cut != second.final_cut:
        problems.append(
            f"final cut diverged: {first.final_cut} vs {second.final_cut}"
        )
    return first, problems
