"""repro.stream — streaming partition service on top of iG-kway.

The subsystem turns the batch-replay partitioner into a long-lived
service: a bounded, sequence-stamped ingest queue feeds a coalescer
that cancels redundant pending work, an adaptive scheduler flushes
right-sized batches into :class:`~repro.core.adaptive.AdaptiveIGKway`,
and a checkpointed journal makes the whole pipeline crash-recoverable
(``StreamSession.recover`` replays the un-checkpointed suffix
bit-identically).

See ``docs/ARCHITECTURE.md`` ("Streaming service") for the pipeline
diagram and ``examples/streaming_service.py`` for a runnable tour.
"""

from repro.stream.coalescer import Coalescer, CoalesceResult
from repro.stream.ingest import IngestQueue, SequencedModifier
from repro.stream.journal import JournalState, StreamJournal
from repro.stream.scheduler import (
    BatchScheduler,
    SchedulerConfig,
    ledger_cycles,
)
from repro.stream.session import StreamBatchReport, StreamSession
from repro.stream.telemetry import StreamTelemetry

__all__ = [
    "BatchScheduler",
    "Coalescer",
    "CoalesceResult",
    "IngestQueue",
    "JournalState",
    "SchedulerConfig",
    "SequencedModifier",
    "StreamBatchReport",
    "StreamJournal",
    "StreamSession",
    "StreamTelemetry",
    "ledger_cycles",
]
