"""repro.stream — streaming partition service on top of iG-kway.

The subsystem turns the batch-replay partitioner into a long-lived
service: a bounded, sequence-stamped ingest queue feeds a coalescer
that cancels redundant pending work, an adaptive scheduler flushes
right-sized batches into :class:`~repro.core.adaptive.AdaptiveIGKway`,
and a checkpointed journal makes the whole pipeline crash-recoverable
(``StreamSession.recover`` replays the un-checkpointed suffix
bit-identically).

Failed batches degrade gracefully instead of crashing the stream: the
transactional partitioner rolls back, the session isolates the poison
modifiers (fast-path via the error's ``modifier_index``, bisection
otherwise), parks them in a bounded :class:`Quarantine` with
retry-and-backoff, dead-letters the incorrigible ones to the journal,
and escalates to a full device-structure rebuild after repeated
failures.  See ``docs/ARCHITECTURE.md`` ("Failure model and recovery").

See ``docs/ARCHITECTURE.md`` ("Streaming service") for the pipeline
diagram and ``examples/streaming_service.py`` for a runnable tour.
"""

from repro.stream.coalescer import Coalescer, CoalesceResult
from repro.stream.ingest import IngestQueue, SequencedModifier
from repro.stream.journal import JournalState, StreamJournal
from repro.stream.quarantine import Quarantine, QuarantineEntry
from repro.stream.scheduler import (
    BatchScheduler,
    SchedulerConfig,
    ledger_cycles,
)
from repro.stream.session import StreamBatchReport, StreamSession
from repro.stream.telemetry import StreamTelemetry

__all__ = [
    "BatchScheduler",
    "Coalescer",
    "CoalesceResult",
    "IngestQueue",
    "JournalState",
    "Quarantine",
    "QuarantineEntry",
    "SchedulerConfig",
    "SequencedModifier",
    "StreamBatchReport",
    "StreamJournal",
    "StreamSession",
    "StreamTelemetry",
    "ledger_cycles",
]
