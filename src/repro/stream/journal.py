"""Checkpointed recovery journal for the streaming service.

Layered on :mod:`repro.core.serialize`: the partitioner state goes into
a periodic ``checkpoint.npz`` (format version 2, which carries the
stream cursor as metadata) while every ingested modifier and every
applied flush window is appended to ``journal.log`` as one JSON line.

Crash model: the process can die at any point.  Recovery then

1. loads the last durable checkpoint (partitioner + ``applied_seq``
   cursor + adaptive-trigger state + telemetry),
2. replays every *flush record* past the cursor by re-coalescing the
   logged raw modifiers of its ``[first_seq, last_seq]`` window —
   coalescing and the partitioner are deterministic, so the replayed
   session is bit-identical to the uninterrupted one,
3. re-enqueues the logged-but-never-flushed suffix into the ingest
   queue.

A torn final line (the write the crash interrupted) is tolerated and
discarded; everything before it is trusted.  Opening the log for
appending first truncates that torn tail (:func:`trim_torn_tail`) so a
post-crash append can never merge a valid record onto the interrupted
one — without the trim, every record after the tear would be silently
discarded on the *next* recovery.  Checkpointing compacts the log,
dropping records at or below the new cursor so the journal stays
proportional to the un-checkpointed window, not the stream's lifetime.

Checkpoint durability: the npz is written to a temp file, fsynced,
rotated over the previous checkpoint (kept as ``checkpoint.prev.npz``),
and the directory entry is fsynced.  If the newest checkpoint is
corrupt (e.g. a torn write the rename race let through, or media
damage), :meth:`StreamJournal.load` falls back to the previous one;
compaction always retains every journal record the *previous*
checkpoint would need, so the fallback replays to the same state.

Degraded-mode records: a flush that had to quarantine poison modifiers
logs them in the flush record's ``"x"`` field (replay excludes them and
re-quarantines), and a modifier whose retry budget is exhausted gets a
permanent ``{"r": "d", ...}`` *dead-letter* record — the audit trail
that no rejected submission is ever silently dropped.  Dead-letter
records survive compaction for the journal's lifetime.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.core.igkway import IGKway
from repro.core.serialize import load_checkpoint, save_partitioner
from repro.gpusim.context import GpuContext
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    Modifier,
    VertexDelete,
    VertexInsert,
)
from repro.utils.errors import JournalError

#: Bumped whenever the journal line format changes.
JOURNAL_FORMAT = 1

CHECKPOINT_NAME = "checkpoint.npz"
PREV_CHECKPOINT_NAME = "checkpoint.prev.npz"
LOG_NAME = "journal.log"


def encode_modifier(modifier: Modifier) -> dict:
    """One modifier as a compact JSON-able record."""
    if isinstance(modifier, VertexInsert):
        return {"t": "vi", "u": modifier.u, "w": modifier.weight}
    if isinstance(modifier, VertexDelete):
        return {"t": "vd", "u": modifier.u}
    if isinstance(modifier, EdgeInsert):
        return {
            "t": "ei",
            "u": modifier.u,
            "v": modifier.v,
            "w": modifier.weight,
        }
    if isinstance(modifier, EdgeDelete):
        return {"t": "ed", "u": modifier.u, "v": modifier.v}
    raise JournalError(f"cannot journal unknown modifier {modifier!r}")


def decode_modifier(record: dict) -> Modifier:
    """Inverse of :func:`encode_modifier`."""
    kind = record.get("t")
    if kind == "vi":
        return VertexInsert(record["u"], record.get("w", 1))
    if kind == "vd":
        return VertexDelete(record["u"])
    if kind == "ei":
        return EdgeInsert(record["u"], record["v"], record.get("w", 1))
    if kind == "ed":
        return EdgeDelete(record["u"], record["v"])
    raise JournalError(f"unknown journaled modifier kind {kind!r}")


def trim_torn_tail(path: "str | Path") -> int:
    """Truncate ``path`` to its last complete JSON-object line.

    The tail is *torn* when the final line is missing its newline or is
    not a parseable JSON object — exactly what a crash mid-append
    leaves behind.  Returns the number of bytes removed (0 when the
    file is clean or absent).  Must run before any post-crash append:
    an append-mode write would otherwise glue the new record onto the
    torn line, corrupting a record that was durably logged.
    """
    path = Path(path)
    if not path.exists():
        return 0
    with path.open("rb") as handle:
        data = handle.read()
    keep = 0
    for line in data.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            if not isinstance(record, dict):
                break
        keep += len(line)
    removed = len(data) - keep
    if removed:
        with path.open("rb+") as handle:
            handle.truncate(keep)
    return removed


@dataclass
class JournalState:
    """Everything :meth:`StreamJournal.load` recovers from disk."""

    partitioner: IGKway
    meta: dict
    #: Raw logged modifiers past the checkpoint cursor, keyed by seq.
    modifiers: Dict[int, Modifier] = field(default_factory=dict)
    #: Applied-window records ``(first_seq, last_seq, reason,
    #: excluded_seqs)`` in log order.  ``excluded_seqs`` are the window
    #: members that were quarantined/dead-lettered instead of applied.
    flushes: List[Tuple[int, int, str, Tuple[int, ...]]] = field(
        default_factory=list
    )
    #: Permanently rejected modifiers: seq -> last recorded error.
    dead_letters: Dict[int, str] = field(default_factory=dict)

    @property
    def applied_seq(self) -> int:
        return int(self.meta.get("applied_seq", -1))

    @property
    def max_logged_seq(self) -> int:
        return max(self.modifiers, default=self.applied_seq)


class StreamJournal:
    """Append-only modifier log plus periodic partitioner checkpoints."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log: Optional[TextIO] = None
        # Cursors of the on-disk checkpoints, when this object knows
        # them (None = unknown, e.g. a fresh object over an existing
        # directory).  Compaction is skipped while the previous
        # checkpoint's cursor is unknown — keeping extra records is
        # always safe; dropping ones the fallback needs is not.
        self._current_cursor: Optional[int] = None
        self._prev_cursor: Optional[int] = None

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    @property
    def prev_checkpoint_path(self) -> Path:
        return self.directory / PREV_CHECKPOINT_NAME

    @property
    def log_path(self) -> Path:
        return self.directory / LOG_NAME

    def exists(self) -> bool:
        return (
            self.checkpoint_path.exists()
            or self.prev_checkpoint_path.exists()
        )

    # -- appending -----------------------------------------------------------------

    def _handle(self) -> TextIO:
        if self._log is None:
            # First open-for-append after (re)construction: drop any
            # crash-torn tail so new records land on a clean boundary.
            trim_torn_tail(self.log_path)
            self._log = self.log_path.open("a", encoding="utf-8")
        return self._log

    def _append(self, record: dict) -> None:
        handle = self._handle()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def log_modifier(self, seq: int, modifier: Modifier) -> None:
        """Durably record one ingested modifier before it is queued."""
        record = {"r": "m", "s": seq}
        record.update(encode_modifier(modifier))
        self._append(record)

    def log_flush(
        self,
        first_seq: int,
        last_seq: int,
        reason: str,
        excluded: Sequence[int] = (),
    ) -> None:
        """Record that the raw window ``[first_seq, last_seq]`` was
        coalesced and applied.  Replay re-derives the batch from the
        logged modifiers in that range.  ``excluded`` lists the seqs the
        resilient path pulled out of the window (quarantined or
        dead-lettered poison) — replay drops them before coalescing and
        routes them back through the quarantine."""
        record = {"r": "f", "a": first_seq, "b": last_seq, "w": reason}
        if excluded:
            record["x"] = sorted(int(s) for s in excluded)
        self._append(record)

    def log_dead_letter(
        self, seq: int, modifier: Modifier, error: str
    ) -> None:
        """Permanently record a modifier whose retry budget ran out.

        Dead-letter records are never compacted away: they are the
        durable proof that a submission was rejected (and why) rather
        than lost, and :mod:`tools.chaos_gate` audits them against the
        injected faults.
        """
        record = {"r": "d", "s": seq, "e": error}
        record.update(encode_modifier(modifier))
        self._append(record)

    # -- checkpointing -------------------------------------------------------------

    def write_checkpoint(
        self, partitioner: IGKway, meta: dict
    ) -> None:
        """Durably persist the partitioner + cursor, then compact.

        Write protocol: temp file -> fsync -> rotate the live
        checkpoint to ``checkpoint.prev.npz`` -> rename temp over the
        live name -> fsync the directory.  A crash at any point leaves
        at least one complete checkpoint on disk, and :meth:`load`
        falls back to the previous one if the newest is unreadable.
        Compaction then drops only records *both* on-disk checkpoints
        have already covered.
        """
        meta = dict(meta)
        meta.setdefault("journal_format", JOURNAL_FORMAT)
        new_cursor = int(meta.get("applied_seq", -1))
        tmp = self.directory / (CHECKPOINT_NAME + ".tmp.npz")
        save_partitioner(partitioner, tmp, stream_meta=meta)
        with tmp.open("rb") as handle:
            os.fsync(handle.fileno())
        if self.checkpoint_path.exists():
            os.replace(self.checkpoint_path, self.prev_checkpoint_path)
            self._prev_cursor = self._current_cursor
        os.replace(tmp, self.checkpoint_path)
        self._fsync_directory()
        self._current_cursor = new_cursor
        if self.prev_checkpoint_path.exists():
            if self._prev_cursor is None:
                return  # unknown prev cursor: keep everything
            cutoff = min(self._prev_cursor, new_cursor)
        else:
            cutoff = new_cursor
        self._compact(cutoff)

    def _fsync_directory(self) -> None:
        """Make the checkpoint renames durable; best-effort on
        filesystems that reject directory fsync."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _compact(self, applied_seq: int) -> None:
        """Drop journal records fully covered by both checkpoints.

        Dead-letter records are kept unconditionally — they are the
        stream's permanent rejection ledger.
        """
        if not self.log_path.exists():
            return
        if self._log is not None:
            self._log.close()
            self._log = None
        keep: List[str] = []
        for record in self._read_records():
            if record["r"] == "m" and record["s"] <= applied_seq:
                continue
            if record["r"] == "f" and record["b"] <= applied_seq:
                continue
            keep.append(json.dumps(record, separators=(",", ":")))
        tmp = self.directory / (LOG_NAME + ".tmp")
        tmp.write_text(
            "\n".join(keep) + ("\n" if keep else ""), encoding="utf-8"
        )
        os.replace(tmp, self.log_path)

    # -- recovery ------------------------------------------------------------------

    def _read_records(self) -> List[dict]:
        """Parse the log, discarding the torn tail a crash may leave."""
        records: List[dict] = []
        if not self.log_path.exists():
            return records
        with self.log_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn write: trust nothing at or after it
                if "r" not in record:
                    break
                records.append(record)
        return records

    def _load_latest_checkpoint(
        self, ctx: GpuContext | None
    ) -> Tuple[IGKway, dict]:
        """Load the newest readable checkpoint, falling back to the
        previous one when the newest is corrupt."""
        failures: List[str] = []
        for path, is_current in (
            (self.checkpoint_path, True),
            (self.prev_checkpoint_path, False),
        ):
            if not path.exists():
                continue
            try:
                partitioner, meta = load_checkpoint(path, ctx=ctx)
            except Exception as err:  # corrupt npz: try the previous
                failures.append(f"{path.name}: {err}")
                continue
            if is_current:
                self._current_cursor = int(meta.get("applied_seq", -1))
            return partitioner, meta
        if failures:
            raise JournalError(
                "every checkpoint is unreadable: " + "; ".join(failures)
            )
        raise JournalError(
            f"no checkpoint at {self.checkpoint_path} "
            "(was start() called with a journal?)"
        )

    def load(self, ctx: GpuContext | None = None) -> JournalState:
        """Read checkpoint + log back into a :class:`JournalState`.

        Raises :class:`JournalError` if no readable checkpoint exists
        or a flush record references modifiers the log never recorded
        (true corruption, as opposed to a torn tail).
        """
        partitioner, meta = self._load_latest_checkpoint(ctx)
        state = JournalState(partitioner=partitioner, meta=meta)
        applied = state.applied_seq
        for record in self._read_records():
            if record["r"] == "m":
                if record["s"] > applied:
                    state.modifiers[record["s"]] = decode_modifier(record)
            elif record["r"] == "d":
                state.dead_letters[record["s"]] = record.get("e", "")
            elif record["r"] == "f":
                if record["b"] <= applied:
                    continue
                excluded = tuple(record.get("x", ()))
                for seq in range(record["a"], record["b"] + 1):
                    if seq > applied and seq not in state.modifiers:
                        raise JournalError(
                            f"flush record [{record['a']}, "
                            f"{record['b']}] references unlogged "
                            f"modifier seq {seq}"
                        )
                state.flushes.append(
                    (
                        record["a"],
                        record["b"],
                        record.get("w", "replay"),
                        excluded,
                    )
                )
        return state

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None
