"""Checkpointed recovery journal for the streaming service.

Layered on :mod:`repro.core.serialize`: the partitioner state goes into
a periodic ``checkpoint.npz`` (format version 2, which carries the
stream cursor as metadata) while every ingested modifier and every
applied flush window is appended to ``journal.log`` as one JSON line.

Crash model: the process can die at any point.  Recovery then

1. loads the last durable checkpoint (partitioner + ``applied_seq``
   cursor + adaptive-trigger state + telemetry),
2. replays every *flush record* past the cursor by re-coalescing the
   logged raw modifiers of its ``[first_seq, last_seq]`` window —
   coalescing and the partitioner are deterministic, so the replayed
   session is bit-identical to the uninterrupted one,
3. re-enqueues the logged-but-never-flushed suffix into the ingest
   queue.

A torn final line (the write the crash interrupted) is tolerated and
discarded; everything before it is trusted.  Checkpointing compacts the
log, dropping records at or below the new cursor so the journal stays
proportional to the un-checkpointed window, not the stream's lifetime.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from repro.core.igkway import IGKway
from repro.core.serialize import load_checkpoint, save_partitioner
from repro.gpusim.context import GpuContext
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    Modifier,
    VertexDelete,
    VertexInsert,
)
from repro.utils.errors import JournalError

#: Bumped whenever the journal line format changes.
JOURNAL_FORMAT = 1

CHECKPOINT_NAME = "checkpoint.npz"
LOG_NAME = "journal.log"


def encode_modifier(modifier: Modifier) -> dict:
    """One modifier as a compact JSON-able record."""
    if isinstance(modifier, VertexInsert):
        return {"t": "vi", "u": modifier.u, "w": modifier.weight}
    if isinstance(modifier, VertexDelete):
        return {"t": "vd", "u": modifier.u}
    if isinstance(modifier, EdgeInsert):
        return {
            "t": "ei",
            "u": modifier.u,
            "v": modifier.v,
            "w": modifier.weight,
        }
    if isinstance(modifier, EdgeDelete):
        return {"t": "ed", "u": modifier.u, "v": modifier.v}
    raise JournalError(f"cannot journal unknown modifier {modifier!r}")


def decode_modifier(record: dict) -> Modifier:
    """Inverse of :func:`encode_modifier`."""
    kind = record.get("t")
    if kind == "vi":
        return VertexInsert(record["u"], record.get("w", 1))
    if kind == "vd":
        return VertexDelete(record["u"])
    if kind == "ei":
        return EdgeInsert(record["u"], record["v"], record.get("w", 1))
    if kind == "ed":
        return EdgeDelete(record["u"], record["v"])
    raise JournalError(f"unknown journaled modifier kind {kind!r}")


@dataclass
class JournalState:
    """Everything :meth:`StreamJournal.load` recovers from disk."""

    partitioner: IGKway
    meta: dict
    #: Raw logged modifiers past the checkpoint cursor, keyed by seq.
    modifiers: Dict[int, Modifier] = field(default_factory=dict)
    #: Applied-window records ``(first_seq, last_seq, reason)`` in order.
    flushes: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def applied_seq(self) -> int:
        return int(self.meta.get("applied_seq", -1))

    @property
    def max_logged_seq(self) -> int:
        return max(self.modifiers, default=self.applied_seq)


class StreamJournal:
    """Append-only modifier log plus periodic partitioner checkpoints."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log: Optional[TextIO] = None

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    @property
    def log_path(self) -> Path:
        return self.directory / LOG_NAME

    def exists(self) -> bool:
        return self.checkpoint_path.exists()

    # -- appending -----------------------------------------------------------------

    def _handle(self) -> TextIO:
        if self._log is None:
            self._log = self.log_path.open("a", encoding="utf-8")
        return self._log

    def _append(self, record: dict) -> None:
        handle = self._handle()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def log_modifier(self, seq: int, modifier: Modifier) -> None:
        """Durably record one ingested modifier before it is queued."""
        record = {"r": "m", "s": seq}
        record.update(encode_modifier(modifier))
        self._append(record)

    def log_flush(
        self, first_seq: int, last_seq: int, reason: str
    ) -> None:
        """Record that the raw window ``[first_seq, last_seq]`` was
        coalesced and applied.  Replay re-derives the batch from the
        logged modifiers in that range."""
        self._append(
            {"r": "f", "a": first_seq, "b": last_seq, "w": reason}
        )

    # -- checkpointing -------------------------------------------------------------

    def write_checkpoint(
        self, partitioner: IGKway, meta: dict
    ) -> None:
        """Atomically persist the partitioner + cursor, then compact.

        The checkpoint lands via write-to-temp + rename so a crash mid
        checkpoint leaves the previous one intact; only then is the log
        compacted down to the un-checkpointed suffix.
        """
        meta = dict(meta)
        meta.setdefault("journal_format", JOURNAL_FORMAT)
        tmp = self.directory / (CHECKPOINT_NAME + ".tmp.npz")
        save_partitioner(partitioner, tmp, stream_meta=meta)
        os.replace(tmp, self.checkpoint_path)
        self._compact(int(meta.get("applied_seq", -1)))

    def _compact(self, applied_seq: int) -> None:
        """Drop journal records fully covered by the checkpoint."""
        if not self.log_path.exists():
            return
        if self._log is not None:
            self._log.close()
            self._log = None
        keep: List[str] = []
        for record in self._read_records():
            if record["r"] == "m" and record["s"] > applied_seq:
                keep.append(json.dumps(record, separators=(",", ":")))
            elif record["r"] == "f" and record["b"] > applied_seq:
                keep.append(json.dumps(record, separators=(",", ":")))
        tmp = self.directory / (LOG_NAME + ".tmp")
        tmp.write_text(
            "\n".join(keep) + ("\n" if keep else ""), encoding="utf-8"
        )
        os.replace(tmp, self.log_path)

    # -- recovery ------------------------------------------------------------------

    def _read_records(self) -> List[dict]:
        """Parse the log, discarding the torn tail a crash may leave."""
        records: List[dict] = []
        if not self.log_path.exists():
            return records
        with self.log_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn write: trust nothing at or after it
                if "r" not in record:
                    break
                records.append(record)
        return records

    def load(self, ctx: GpuContext | None = None) -> JournalState:
        """Read checkpoint + log back into a :class:`JournalState`.

        Raises :class:`JournalError` if no checkpoint exists or a flush
        record references modifiers the log never recorded (true
        corruption, as opposed to a torn tail).
        """
        if not self.exists():
            raise JournalError(
                f"no checkpoint at {self.checkpoint_path} "
                "(was start() called with a journal?)"
            )
        partitioner, meta = load_checkpoint(self.checkpoint_path, ctx=ctx)
        state = JournalState(partitioner=partitioner, meta=meta)
        applied = state.applied_seq
        for record in self._read_records():
            if record["r"] == "m":
                if record["s"] > applied:
                    state.modifiers[record["s"]] = decode_modifier(record)
            elif record["r"] == "f":
                if record["b"] <= applied:
                    continue
                for seq in range(record["a"], record["b"] + 1):
                    if seq > applied and seq not in state.modifiers:
                        raise JournalError(
                            f"flush record [{record['a']}, "
                            f"{record['b']}] references unlogged "
                            f"modifier seq {seq}"
                        )
                state.flushes.append(
                    (record["a"], record["b"], record.get("w", "replay"))
                )
        return state

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None
