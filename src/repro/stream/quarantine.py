"""Bounded quarantine for poison modifiers with retry-and-backoff.

When a flushed window fails transactionally, the session isolates the
*poison* modifiers (see ``StreamSession._apply_resilient``) and parks
them here instead of crashing the stream.  Each entry is retried with
exponential backoff measured in simulated device cycles (the stream's
clock); an entry whose retry budget is exhausted is *dead-lettered* — a
durable journal record replaces the in-memory entry, so no rejected
modifier is ever silently lost.  The quarantine itself is bounded:
overflow skips the retry phase and dead-letters immediately.

The quarantine is part of the session's durable state: its entries ride
in the checkpoint metadata (:meth:`Quarantine.as_meta` /
:meth:`Quarantine.restore`) with retry deadlines stored relative to the
checkpoint clock, so recovery resumes the same backoff schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.modifiers import Modifier
from repro.stream.journal import decode_modifier, encode_modifier


@dataclass
class QuarantineEntry:
    """One isolated poison modifier awaiting retry."""

    seq: int
    modifier: Modifier
    error: str
    attempts: int = 0
    #: Absolute ledger-cycle time before which the entry is not retried.
    next_retry_cycles: float = 0.0


class Quarantine:
    """Bounded seq-keyed store of poison modifiers.

    Args:
        capacity: Max entries held at once; an add beyond this returns
            False and the caller dead-letters the modifier immediately.
        max_attempts: Retries before an entry is dead-lettered (the
            initial failed application does not count).
        backoff_cycles: Base retry delay in device cycles; attempt ``i``
            waits ``backoff_cycles * 2**(i-1)``.
    """

    def __init__(
        self,
        capacity: int = 64,
        max_attempts: int = 4,
        backoff_cycles: float = 1e6,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.capacity = capacity
        self.max_attempts = max_attempts
        self.backoff_cycles = float(backoff_cycles)
        self.entries: Dict[int, QuarantineEntry] = {}
        # Metrics instruments (None until bind_metrics).
        self._depth_gauge = None
        self._admitted_counter = None
        self._retry_counter = None

    def bind_metrics(self, registry) -> None:
        """Register quarantine instruments into ``registry``
        (a :class:`repro.obs.metrics.MetricsRegistry`)."""
        self._depth_gauge = registry.gauge(
            "quarantine_depth", "poison modifiers currently parked"
        )
        self._admitted_counter = registry.counter(
            "quarantine_admitted_total", "poison modifiers admitted"
        )
        self._retry_counter = registry.counter(
            "quarantine_retry_failures_total",
            "failed quarantine retry attempts",
        )
        self._depth_gauge.set(len(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    def add(self, seq: int, modifier: Modifier, error: str, now: float) -> bool:
        """Admit a poison modifier; False when the quarantine is full
        (caller must dead-letter instead)."""
        if seq in self.entries:
            return True
        if self.is_full:
            return False
        self.entries[seq] = QuarantineEntry(
            seq=seq,
            modifier=modifier,
            error=error,
            attempts=0,
            next_retry_cycles=now + self.backoff_cycles,
        )
        if self._admitted_counter is not None:
            self._admitted_counter.inc()
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self.entries))
        return True

    def due(self, now: float, force: bool = False) -> List[QuarantineEntry]:
        """Entries eligible for a retry at clock ``now``, in seq order.

        ``force`` ignores the backoff schedule — used right after an
        escalation rebuild, which may have fixed the root cause (e.g. a
        fresh bucket pool after exhaustion).
        """
        return [
            entry
            for seq, entry in sorted(self.entries.items())
            if force or entry.next_retry_cycles <= now
        ]

    def record_failure(
        self, entry: QuarantineEntry, error: str, now: float
    ) -> bool:
        """Bump the entry's attempt count; True when its retry budget is
        exhausted (caller removes + dead-letters it)."""
        entry.attempts += 1
        entry.error = error
        entry.next_retry_cycles = now + self.backoff_cycles * (
            2 ** entry.attempts
        )
        if self._retry_counter is not None:
            self._retry_counter.inc()
        return entry.attempts >= self.max_attempts

    def remove(self, seq: int) -> None:
        self.entries.pop(seq, None)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self.entries))

    # -- checkpoint (de)serialization ----------------------------------------

    def as_meta(self, now: float) -> dict:
        """JSON-able snapshot; retry deadlines relative to ``now``."""
        return {
            "capacity": self.capacity,
            "max_attempts": self.max_attempts,
            "backoff_cycles": self.backoff_cycles,
            "entries": [
                {
                    "s": entry.seq,
                    "m": encode_modifier(entry.modifier),
                    "e": entry.error,
                    "a": entry.attempts,
                    "d": max(0.0, entry.next_retry_cycles - now),
                }
                for _seq, entry in sorted(self.entries.items())
            ],
        }

    @classmethod
    def restore(cls, meta: dict, now: float) -> "Quarantine":
        quarantine = cls(
            capacity=int(meta.get("capacity", 64)),
            max_attempts=int(meta.get("max_attempts", 4)),
            backoff_cycles=float(meta.get("backoff_cycles", 1e6)),
        )
        for record in meta.get("entries", []):
            quarantine.entries[int(record["s"])] = QuarantineEntry(
                seq=int(record["s"]),
                modifier=decode_modifier(record["m"]),
                error=str(record.get("e", "")),
                attempts=int(record.get("a", 0)),
                next_retry_cycles=now + float(record.get("d", 0.0)),
            )
        return quarantine
