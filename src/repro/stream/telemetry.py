"""Structured per-session counters for the streaming service.

Everything an operator (or :mod:`repro.eval`) needs to judge a stream's
health without scraping logs: ingest volume, how much work coalescing
removed before it reached the GPU, batch/flush-reason histograms, cut
drift against the last full partitioning, fallback events, queue
pressure, and modeled GPU time.  :meth:`StreamTelemetry.as_dict`
produces the flat structure the eval layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class StreamTelemetry:
    """Monotonic counters plus a few live gauges.

    All counters survive checkpoint/recovery (the session persists
    :meth:`as_dict` in the checkpoint metadata and feeds it back through
    :meth:`restore`), so a recovered stream reports totals over its
    whole life, not since the last crash.
    """

    ingested: int = 0
    rejected: int = 0
    applied_modifiers: int = 0
    coalesced_dropped: int = 0
    batches: int = 0
    flushes_by_reason: Dict[str, int] = field(default_factory=dict)
    fallback_events: int = 0
    checkpoints_written: int = 0
    recoveries: int = 0
    batch_failures: int = 0
    bisection_attempts: int = 0
    quarantined: int = 0
    quarantine_recovered: int = 0
    dead_lettered: int = 0
    escalations: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    reference_cut: Optional[int] = None
    last_cut: Optional[int] = None
    modeled_seconds: float = 0.0

    # -- recording ----------------------------------------------------------------

    def record_ingest(self, queue_depth: int) -> None:
        self.ingested += 1
        self.queue_depth = queue_depth
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def record_reject(self) -> None:
        self.rejected += 1

    def record_batch(
        self,
        reason: str,
        raw_count: int,
        applied_count: int,
        cut: int,
        used_fallback: bool,
        modeled_seconds: float,
        queue_depth: int,
        removed_count: int = 0,
    ) -> None:
        """Record one flushed window.

        ``removed_count`` is the number of surviving (post-coalescing)
        modifiers that were NOT applied because the resilient path
        quarantined or dead-lettered them; they are counted by
        :meth:`record_quarantined` / :meth:`record_dead_letter` instead
        of ``coalesced_dropped``.
        """
        self.batches += 1
        self.flushes_by_reason[reason] = (
            self.flushes_by_reason.get(reason, 0) + 1
        )
        self.applied_modifiers += applied_count
        self.coalesced_dropped += raw_count - applied_count - removed_count
        self.last_cut = cut
        if used_fallback:
            self.fallback_events += 1
            self.reference_cut = cut
        self.modeled_seconds += modeled_seconds
        self.queue_depth = queue_depth

    def record_full_partition(self, cut: int, seconds: float) -> None:
        self.reference_cut = cut
        self.last_cut = cut
        self.modeled_seconds += seconds

    def record_batch_failure(self) -> None:
        self.batch_failures += 1

    def record_bisection(self) -> None:
        self.bisection_attempts += 1

    def record_quarantined(self, count: int = 1) -> None:
        self.quarantined += count

    def record_quarantine_recovered(self, count: int = 1) -> None:
        self.quarantine_recovered += count

    def record_dead_letter(self, count: int = 1) -> None:
        self.dead_lettered += count

    def record_escalation(self) -> None:
        self.escalations += 1

    # -- derived ------------------------------------------------------------------

    @property
    def coalescing_ratio(self) -> float:
        """Fraction of batched modifiers removed before the GPU path."""
        total = self.applied_modifiers + self.coalesced_dropped
        return self.coalesced_dropped / total if total else 0.0

    @property
    def cut_drift(self) -> float:
        """Current cut relative to the post-full-partition reference."""
        if not self.reference_cut or self.last_cut is None:
            return 1.0
        return self.last_cut / self.reference_cut

    # -- (de)serialization ---------------------------------------------------------

    def as_dict(self) -> dict:
        """Flat structure for reports, checkpoints, and the eval layer.

        ``flushes_by_reason`` is exported with *sorted* keys: the dict
        accumulates in first-flush order, so two sessions flushing for
        the same reasons in a different order would otherwise produce
        unequal checkpoint metadata blobs (the insertion-order cousin
        of the ``set-iter-order`` lint family; ``unsorted-dict-export``
        now guards this spelling).
        """
        return {
            "ingested": self.ingested,
            "rejected": self.rejected,
            "applied_modifiers": self.applied_modifiers,
            "coalesced_dropped": self.coalesced_dropped,
            "coalescing_ratio": self.coalescing_ratio,
            "batches": self.batches,
            "flushes_by_reason": {
                reason: self.flushes_by_reason[reason]
                for reason in sorted(self.flushes_by_reason)
            },
            "fallback_events": self.fallback_events,
            "checkpoints_written": self.checkpoints_written,
            "recoveries": self.recoveries,
            "batch_failures": self.batch_failures,
            "bisection_attempts": self.bisection_attempts,
            "quarantined": self.quarantined,
            "quarantine_recovered": self.quarantine_recovered,
            "dead_lettered": self.dead_lettered,
            "escalations": self.escalations,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "reference_cut": self.reference_cut,
            "last_cut": self.last_cut,
            "cut_drift": self.cut_drift,
            "modeled_seconds": self.modeled_seconds,
        }

    @classmethod
    def restore(cls, data: dict) -> "StreamTelemetry":
        """Rebuild from :meth:`as_dict` output (checkpoint recovery)."""
        telemetry = cls()
        for key in (
            "ingested",
            "rejected",
            "applied_modifiers",
            "coalesced_dropped",
            "batches",
            "fallback_events",
            "checkpoints_written",
            "recoveries",
            "batch_failures",
            "bisection_attempts",
            "quarantined",
            "quarantine_recovered",
            "dead_lettered",
            "escalations",
            "queue_depth",
            "max_queue_depth",
            "reference_cut",
            "last_cut",
            "modeled_seconds",
        ):
            if key in data and data[key] is not None:
                setattr(telemetry, key, data[key])
        telemetry.flushes_by_reason = dict(
            data.get("flushes_by_reason", {})
        )
        return telemetry

    # -- metrics-registry publishing -----------------------------------------

    def publish_to(self, registry: "MetricsRegistry") -> None:
        """Mirror the current counters into a metrics registry.

        The telemetry object stays the source of truth (it rides in
        checkpoints); publishing synchronizes a
        :class:`~repro.obs.metrics.MetricsRegistry` snapshot so the
        stream exports through the same registry/exporter surface as
        every other component (Prometheus text, flat dicts, reports).
        """
        for name, value in (
            ("stream_ingested_total", self.ingested),
            ("stream_rejected_total", self.rejected),
            ("stream_applied_modifiers_total", self.applied_modifiers),
            ("stream_coalesced_dropped_total", self.coalesced_dropped),
            ("stream_batches_total", self.batches),
            ("stream_fallback_events_total", self.fallback_events),
            ("stream_checkpoints_written_total", self.checkpoints_written),
            ("stream_recoveries_total", self.recoveries),
            ("stream_batch_failures_total", self.batch_failures),
            ("stream_bisection_attempts_total", self.bisection_attempts),
            ("stream_quarantined_total", self.quarantined),
            (
                "stream_quarantine_recovered_total",
                self.quarantine_recovered,
            ),
            ("stream_dead_lettered_total", self.dead_lettered),
            ("stream_escalations_total", self.escalations),
        ):
            registry.counter(name).sync(value)
        for reason in sorted(self.flushes_by_reason):
            registry.counter(f"stream_flushes_total_{reason}").sync(
                self.flushes_by_reason[reason]
            )
        registry.gauge("stream_queue_depth").set(self.queue_depth)
        registry.gauge("stream_max_queue_depth").set(self.max_queue_depth)
        registry.gauge("stream_last_cut").set(
            self.last_cut if self.last_cut is not None else -1
        )
        registry.gauge("stream_cut_drift").set(self.cut_drift)
        registry.gauge("stream_modeled_seconds").set(self.modeled_seconds)
        registry.gauge("stream_coalescing_ratio").set(
            self.coalescing_ratio
        )
