"""``repro-stream``: command-line front end for the streaming service.

Three subcommands::

    repro-stream run      # stream a synthetic trace through a session
    repro-stream recover  # resume a journaled session after a crash
    repro-stream inspect  # print a journal's checkpoint cursor + backlog

``run`` drives the full pipeline (ingest -> coalesce -> schedule ->
partition -> journal) over the paper's TAU-2015-style workload and
prints the telemetry report; give ``--journal`` to make it durable,
then ``recover`` picks the stream back up from the journal directory.

``python -m repro.stream.cli ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.utils import ReproError


def run_stream(args: argparse.Namespace) -> int:
    from repro.eval.stream import (
        format_stream_report,
        run_stream_experiment,
    )

    experiment = run_stream_experiment(
        k=args.k,
        num_vertices=args.vertices,
        iterations=args.iterations,
        modifiers_per_iteration=args.modifiers,
        seed=args.seed,
        target_batch_size=args.target_batch_size,
        max_latency_cycles=args.max_latency_cycles,
        journal_dir=str(args.journal) if args.journal else None,
        checkpoint_every=args.checkpoint_every,
        max_quarantine=args.max_quarantine,
        escalate_after=args.escalate_after,
        trace_path=str(args.trace) if args.trace else None,
    )
    text = format_stream_report(experiment)
    print(text)
    if args.trace is not None:
        print(f"trace written to {args.trace} "
              "(inspect with `repro-obs summary`)")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "stream.txt").write_text(text + "\n")
    return 0


def run_recover(args: argparse.Namespace) -> int:
    from repro.stream.session import StreamSession

    session = StreamSession.recover(args.journal)
    backlog = session.queue.depth
    print(
        f"Recovered session from {args.journal}: cut = "
        f"{session.cut_size()}, applied_seq = {session.applied_seq}, "
        f"backlog = {backlog} modifiers"
    )
    if args.drain and backlog:
        reports = session.drain()
        print(
            f"Drained backlog in {len(reports)} batches; final cut = "
            f"{session.cut_size()}"
        )
    session.close()
    return 0


def run_inspect(args: argparse.Namespace) -> int:
    from repro.stream.journal import StreamJournal

    journal = StreamJournal(args.journal)
    state = journal.load()
    meta = state.meta
    telemetry = meta.get("telemetry", {})
    print(f"Journal at {args.journal}")
    print(f"  applied_seq (cursor)  {state.applied_seq}")
    print(f"  next_seq              {meta.get('next_seq')}")
    print(f"  logged past cursor    {len(state.modifiers)} modifiers")
    print(f"  unreplayed flushes    {len(state.flushes)}")
    print(f"  dead letters          {len(state.dead_letters)}")
    quarantine = meta.get("resilience", {}).get("quarantine", {})
    print(f"  quarantine pending    "
          f"{len(quarantine.get('entries', []))}")
    print(f"  lifetime ingested     {telemetry.get('ingested', 0)}")
    print(f"  lifetime batches      {telemetry.get('batches', 0)}")
    print(f"  checkpoints written   "
          f"{telemetry.get('checkpoints_written', 0)}")
    journal.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Streaming partition service on top of the iG-kway "
        "reproduction: coalescing ingest, adaptive batch scheduling, "
        "checkpointed recovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runner = sub.add_parser(
        "run", help="stream a synthetic modifier trace through a session"
    )
    runner.add_argument("--vertices", type=int, default=2000,
                        help="synthetic circuit-graph size")
    runner.add_argument("--k", type=int, default=4)
    runner.add_argument("--iterations", type=int, default=40,
                        help="trace iterations (modifiers arrive one "
                        "by one regardless)")
    runner.add_argument("--modifiers", type=int, default=50,
                        help="modifiers per trace iteration")
    runner.add_argument("--seed", type=int, default=0)
    runner.add_argument("--target-batch-size", type=int, default=None,
                        help="fixed size trigger (default: derived "
                        "from the adaptive batch threshold)")
    runner.add_argument("--max-latency-cycles", type=float, default=None,
                        help="deadline trigger in simulated device "
                        "cycles")
    runner.add_argument("--journal", type=Path, default=None,
                        help="journal directory (enables durability)")
    runner.add_argument("--checkpoint-every", type=int, default=8,
                        help="checkpoint after this many flushes")
    runner.add_argument("--max-quarantine", type=int, default=64,
                        help="bound on simultaneously quarantined "
                        "poison modifiers; overflow is dead-lettered")
    runner.add_argument("--escalate-after", type=int, default=3,
                        help="consecutive failing windows before a "
                        "full device-structure rebuild")
    runner.add_argument("--out", type=Path, default=None,
                        help="directory to also write the report into")
    runner.add_argument("--trace", type=Path, default=None,
                        help="write a repro.obs span trace (JSONL) of "
                        "the run; analyze with repro-obs diff/summary")
    runner.set_defaults(func=run_stream)

    recover = sub.add_parser(
        "recover", help="rebuild a crashed session from its journal"
    )
    recover.add_argument("journal", type=Path,
                         help="journal directory of the crashed run")
    recover.add_argument("--drain", action="store_true",
                         help="also flush the recovered backlog")
    recover.set_defaults(func=run_recover)

    inspect = sub.add_parser(
        "inspect", help="print a journal's cursor and backlog"
    )
    inspect.add_argument("journal", type=Path)
    inspect.set_defaults(func=run_inspect)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        print(f"repro-stream: error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Reader went away (e.g. piped into `head`); suppress the
        # shutdown-flush traceback and exit quietly like other CLIs.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
