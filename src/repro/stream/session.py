"""The streaming partition service: one live, recoverable session.

``StreamSession`` turns the repo's batch-replay partitioner into a
*service*: producers push individual modifiers through a bounded ingest
queue; the coalescer collapses redundant work; the scheduler flushes
well-sized batches into :class:`~repro.core.adaptive.AdaptiveIGKway`
(so the paper's volume/quality fallback is driven by the stream, not
the caller); and an optional journal makes the whole pipeline crash
recoverable — ``StreamSession.recover(path)`` lands bit-identical to
the uninterrupted run.

Quickstart::

    from repro.stream import StreamSession
    from repro.graph import circuit_graph, EdgeInsert
    from repro import PartitionConfig

    session = StreamSession(
        circuit_graph(5_000, 1.3, seed=1),
        PartitionConfig(k=4),
        journal_dir="run/journal",
    )
    session.start()
    session.submit(EdgeInsert(3, 77))     # queued, journaled
    ...                                    # scheduler flushes adaptively
    session.drain()                        # force everything through
    print(session.metrics()["cut_drift"])
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

from repro.core.adaptive import AdaptiveIGKway, AdaptiveReport
from repro.core.igkway import FullPartitionReport
from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import Modifier
from repro.partition.config import PartitionConfig
from repro.stream.coalescer import Coalescer, CoalesceResult
from repro.stream.ingest import IngestQueue, SequencedModifier
from repro.stream.journal import StreamJournal
from repro.stream.scheduler import (
    BatchScheduler,
    SchedulerConfig,
    ledger_cycles,
)
from repro.stream.telemetry import StreamTelemetry
from repro.utils.errors import BackpressureError, StreamError


@dataclass(frozen=True)
class StreamBatchReport:
    """Outcome of one flushed window."""

    first_seq: int
    last_seq: int
    reason: str
    raw_count: int
    applied_count: int
    coalesce_stats: dict
    cut: int
    used_fallback: bool
    fallback_reason: Optional[str]
    modeled_seconds: float


class StreamSession:
    """Coalescing, adaptively scheduled, checkpointed partition stream.

    Args:
        csr: Initial graph.
        config: Partitioning configuration.
        ctx: Optional shared GPU context.
        journal_dir: Directory for the recovery journal; None disables
            durability (no checkpoints, no crash recovery).
        queue_capacity / policy: Ingest bound and backpressure policy
            (``"block"`` flushes on the producer's behalf; ``"reject"``
            raises :class:`BackpressureError`).
        scheduler: Flush policy (:class:`SchedulerConfig`); the default
            derives the size trigger from the adaptive batch threshold.
        checkpoint_every: Checkpoint after this many flushes (0
            disables periodic checkpoints; the initial one is always
            written when a journal is configured).
        volume_threshold / batch_threshold / drift_threshold: Fallback
            triggers, forwarded to :class:`AdaptiveIGKway`.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        journal_dir: "str | Path | None" = None,
        queue_capacity: int = 4096,
        policy: str = "block",
        scheduler: SchedulerConfig | None = None,
        checkpoint_every: int = 8,
        volume_threshold: float = 0.5,
        batch_threshold: float = 0.1,
        drift_threshold: float = 2.0,
    ):
        partitioner = AdaptiveIGKway(
            csr,
            config,
            ctx=ctx,
            volume_threshold=volume_threshold,
            batch_threshold=batch_threshold,
            drift_threshold=drift_threshold,
        )
        self._init_parts(
            partitioner,
            journal_dir=journal_dir,
            queue_capacity=queue_capacity,
            policy=policy,
            scheduler=scheduler,
            checkpoint_every=checkpoint_every,
        )

    def _init_parts(
        self,
        partitioner: AdaptiveIGKway,
        journal_dir: "str | Path | None",
        queue_capacity: int,
        policy: str,
        scheduler: SchedulerConfig | None,
        checkpoint_every: int,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.partitioner = partitioner
        self.queue = IngestQueue(capacity=queue_capacity, policy=policy)
        self.coalescer = Coalescer()
        self.scheduler = BatchScheduler(scheduler)
        self.journal = (
            StreamJournal(journal_dir) if journal_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.telemetry = StreamTelemetry()
        self.applied_seq = -1
        self._flushes_since_checkpoint = 0
        self._window_opened_cycles: Optional[float] = None
        self._started = False
        self._replaying = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> FullPartitionReport:
        """Run the initial full partitioning; write the first checkpoint."""
        if self._started:
            raise StreamError("session already started")
        report = self.partitioner.full_partition()
        self._started = True
        self.telemetry.record_full_partition(report.cut, report.seconds)
        if self.journal is not None:
            self.checkpoint()
        return report

    def close(self) -> Optional[StreamBatchReport]:
        """Flush everything pending, checkpoint, release the journal."""
        last = None
        if self._started:
            for report in self.drain():
                last = report
            if self.journal is not None:
                self.checkpoint()
        if self.journal is not None:
            self.journal.close()
        return last

    def __enter__(self) -> "StreamSession":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self.journal is not None:
            self.journal.close()

    # -- ingest --------------------------------------------------------------------

    def submit(self, modifier: Modifier) -> int:
        """Accept one modifier; returns its journal sequence number.

        May synchronously flush (backpressure under the ``"block"``
        policy, or a scheduler trigger firing).  Raises
        :class:`BackpressureError` when full under ``"reject"``.
        """
        self._require_started()
        if self.queue.is_full():
            if self.queue.policy == "block":
                self.flush(reason="backpressure")
            else:
                self.telemetry.record_reject()
                raise BackpressureError(
                    f"ingest queue full "
                    f"({self.queue.capacity} pending modifiers)"
                )
        ledger = self.partitioner.ctx.ledger
        with ledger.section("stream_ingest"):
            ledger.charge_host_ops(1)
        was_empty = self.queue.is_empty()
        seq = self.queue.offer(modifier)
        if self.journal is not None:
            self.journal.log_modifier(seq, modifier)
        self.telemetry.record_ingest(self.queue.depth)
        if was_empty:
            self._window_opened_cycles = self._clock()
        self._maybe_flush()
        return seq

    def submit_many(self, modifiers: Iterable[Modifier]) -> List[int]:
        return [self.submit(modifier) for modifier in modifiers]

    # -- flushing ------------------------------------------------------------------

    def flush(self, reason: str = "explicit") -> Optional[StreamBatchReport]:
        """Coalesce and apply one window (at most the size target).

        Returns None when nothing is pending.  Use :meth:`drain` to
        force the entire backlog through.
        """
        self._require_started()
        window = self.queue.drain(
            self.scheduler.size_target(self.partitioner)
        )
        if not window:
            return None
        return self._apply_window(window, reason)

    def drain(self) -> List[StreamBatchReport]:
        """Flush until the queue is empty; returns the batch reports."""
        reports = []
        while not self.queue.is_empty():
            report = self.flush(reason="explicit")
            if report is not None:
                reports.append(report)
        return reports

    def _maybe_flush(self) -> None:
        while True:
            reason = self.scheduler.should_flush(
                self.partitioner,
                self.queue.depth,
                self._window_opened_cycles,
                self._clock(),
            )
            if reason is None:
                return
            self.flush(reason=reason)

    def _apply_window(
        self, window: List[SequencedModifier], reason: str
    ) -> StreamBatchReport:
        result = self.coalescer.collapse(window)
        if len(result.batch):
            adaptive = self.partitioner.apply(result.batch)
            cut = adaptive.iteration.cut
            used_fallback = adaptive.used_fallback
            fallback_reason = adaptive.fallback_reason
            seconds = (
                adaptive.iteration.modification_seconds
                + adaptive.iteration.partitioning_seconds
            )
        else:
            # The whole window coalesced away: nothing reaches the GPU.
            cut = (
                self.telemetry.last_cut
                if self.telemetry.last_cut is not None
                else self.partitioner.cut_size()
            )
            used_fallback = False
            fallback_reason = None
            seconds = 0.0
        self.applied_seq = result.last_seq
        self._window_opened_cycles = (
            self._clock() if not self.queue.is_empty() else None
        )
        self.telemetry.record_batch(
            reason=reason,
            raw_count=result.raw_count,
            applied_count=len(result.batch),
            cut=cut,
            used_fallback=used_fallback,
            modeled_seconds=seconds,
            queue_depth=self.queue.depth,
        )
        if self.journal is not None and not self._replaying:
            self.journal.log_flush(
                result.first_seq, result.last_seq, reason
            )
            self._flushes_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._flushes_since_checkpoint
                >= self.checkpoint_every
            ):
                self.checkpoint()
        return StreamBatchReport(
            first_seq=result.first_seq,
            last_seq=result.last_seq,
            reason=reason,
            raw_count=result.raw_count,
            applied_count=len(result.batch),
            coalesce_stats=result.stats,
            cut=cut,
            used_fallback=used_fallback,
            fallback_reason=fallback_reason,
            modeled_seconds=seconds,
        )

    # -- durability ----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a durable checkpoint and compact the journal."""
        if self.journal is None:
            raise StreamError("session has no journal configured")
        self._require_started()
        scheduler = self.scheduler.config
        meta = {
            "applied_seq": self.applied_seq,
            "next_seq": self.queue.next_seq,
            "adaptive": {
                "volume_threshold": self.partitioner.volume_threshold,
                "batch_threshold": self.partitioner.batch_threshold,
                "drift_threshold": self.partitioner.drift_threshold,
                "modifiers_since_full": (
                    self.partitioner.modifiers_since_full
                ),
                "reference_cut": self.partitioner.reference_cut,
                "fallbacks_taken": self.partitioner.fallbacks_taken,
            },
            "scheduler": {
                "target_batch_size": scheduler.target_batch_size,
                "batch_headroom": scheduler.batch_headroom,
                "max_latency_cycles": scheduler.max_latency_cycles,
                "min_batch_size": scheduler.min_batch_size,
            },
            "queue": {
                "capacity": self.queue.capacity,
                "policy": self.queue.policy,
            },
            "checkpoint_every": self.checkpoint_every,
            "telemetry": self.telemetry.as_dict(),
        }
        self.journal.write_checkpoint(self.partitioner.inner, meta)
        self.telemetry.checkpoints_written += 1
        self._flushes_since_checkpoint = 0

    @classmethod
    def recover(
        cls,
        journal_dir: "str | Path",
        ctx: GpuContext | None = None,
    ) -> "StreamSession":
        """Rebuild a session from its journal after a crash.

        Loads the last checkpoint, replays exactly the flush windows the
        journal recorded past the cursor (re-coalescing each raw window
        — deterministic, hence bit-identical to the uninterrupted run),
        and re-enqueues the logged-but-unflushed suffix.  Session
        parameters (thresholds, scheduler, queue bound) are restored
        from the checkpoint metadata.
        """
        journal = StreamJournal(journal_dir)
        state = journal.load(ctx=ctx)
        meta = state.meta
        adaptive_meta = meta.get("adaptive", {})
        partitioner = AdaptiveIGKway.from_inner(
            state.partitioner,
            volume_threshold=adaptive_meta.get("volume_threshold", 0.5),
            batch_threshold=adaptive_meta.get("batch_threshold", 0.1),
            drift_threshold=adaptive_meta.get("drift_threshold", 2.0),
        )
        partitioner.modifiers_since_full = adaptive_meta.get(
            "modifiers_since_full", 0
        )
        partitioner.reference_cut = adaptive_meta.get("reference_cut")
        partitioner.fallbacks_taken = adaptive_meta.get(
            "fallbacks_taken", 0
        )
        scheduler_meta = meta.get("scheduler", {})
        queue_meta = meta.get("queue", {})

        session = cls.__new__(cls)
        session._init_parts(
            partitioner,
            journal_dir=journal_dir,
            queue_capacity=queue_meta.get("capacity", 4096),
            policy=queue_meta.get("policy", "block"),
            scheduler=SchedulerConfig(
                target_batch_size=scheduler_meta.get("target_batch_size"),
                batch_headroom=scheduler_meta.get("batch_headroom", 0.75),
                max_latency_cycles=scheduler_meta.get(
                    "max_latency_cycles"
                ),
                min_batch_size=scheduler_meta.get("min_batch_size", 1),
            ),
            checkpoint_every=meta.get("checkpoint_every", 8),
        )
        session._started = True
        session.applied_seq = state.applied_seq
        session.telemetry = StreamTelemetry.restore(
            meta.get("telemetry", {})
        )
        # Every logged modifier past the cursor was ingested exactly
        # once by the crashed process after its last checkpoint.
        session.telemetry.ingested += len(state.modifiers)
        session.telemetry.recoveries += 1

        # Replay the recorded flush windows without re-journaling them.
        session._replaying = True
        try:
            for first, last, reason in state.flushes:
                window = [
                    SequencedModifier(seq, state.modifiers.pop(seq))
                    for seq in range(first, last + 1)
                ]
                session._apply_window(window, reason)
        finally:
            session._replaying = False

        # Re-enqueue the unflushed suffix in original order.
        for seq in sorted(state.modifiers):
            session.queue.requeue(seq, state.modifiers[seq])
        session.queue.reserve_seq(
            max(
                int(meta.get("next_seq", 0)),
                state.max_logged_seq + 1,
                session.applied_seq + 1,
            )
        )
        session.telemetry.queue_depth = session.queue.depth
        if not session.queue.is_empty():
            session._window_opened_cycles = session._clock()
        return session

    # -- queries -------------------------------------------------------------------

    def cut_size(self) -> int:
        return self.partitioner.cut_size()

    @property
    def partition(self):
        return self.partitioner.partition

    def metrics(self) -> dict:
        """The structured telemetry dict (issue: consumable by eval)."""
        out = self.telemetry.as_dict()
        out.update(
            {
                "applied_seq": self.applied_seq,
                "next_seq": self.queue.next_seq,
                "queue_depth": self.queue.depth,
                "queue_capacity": self.queue.capacity,
                "size_target": self.scheduler.size_target(
                    self.partitioner
                ),
                "simulated_cycles": self._clock(),
                "fallbacks_taken": self.partitioner.fallbacks_taken,
            }
        )
        return out

    # -- internals -----------------------------------------------------------------

    def _clock(self) -> float:
        return ledger_cycles(self.partitioner.ctx.ledger)

    def _require_started(self) -> None:
        if not self._started:
            raise StreamError("call start() before streaming modifiers")
