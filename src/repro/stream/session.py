"""The streaming partition service: one live, recoverable session.

``StreamSession`` turns the repo's batch-replay partitioner into a
*service*: producers push individual modifiers through a bounded ingest
queue; the coalescer collapses redundant work; the scheduler flushes
well-sized batches into :class:`~repro.core.adaptive.AdaptiveIGKway`
(so the paper's volume/quality fallback is driven by the stream, not
the caller); and an optional journal makes the whole pipeline crash
recoverable — ``StreamSession.recover(path)`` lands bit-identical to
the uninterrupted run.

Quickstart::

    from repro.stream import StreamSession
    from repro.graph import circuit_graph, EdgeInsert
    from repro import PartitionConfig

    session = StreamSession(
        circuit_graph(5_000, 1.3, seed=1),
        PartitionConfig(k=4),
        journal_dir="run/journal",
    )
    session.start()
    session.submit(EdgeInsert(3, 77))     # queued, journaled
    ...                                    # scheduler flushes adaptively
    session.drain()                        # force everything through
    print(session.metrics()["cut_drift"])
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple

from repro.core.adaptive import AdaptiveIGKway, AdaptiveReport
from repro.core.igkway import FullPartitionReport
from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.graph.modifiers import Modifier, ModifierBatch
from repro.obs import MetricsRegistry, span
from repro.partition.config import PartitionConfig
from repro.stream.coalescer import Coalescer, CoalesceResult
from repro.stream.ingest import IngestQueue, SequencedModifier
from repro.stream.journal import StreamJournal
from repro.stream.quarantine import Quarantine
from repro.stream.scheduler import (
    BatchScheduler,
    SchedulerConfig,
    ledger_cycles,
)
from repro.stream.telemetry import StreamTelemetry
from repro.utils.errors import (
    BackpressureError,
    CapacityError,
    ModifierError,
    StreamError,
)

#: (seq, modifier, error message) for a modifier pulled out of a window.
PoisonEntry = Tuple[int, Modifier, str]


@dataclass(frozen=True)
class StreamBatchReport:
    """Outcome of one flushed window."""

    first_seq: int
    last_seq: int
    reason: str
    raw_count: int
    applied_count: int
    coalesce_stats: dict
    cut: int
    used_fallback: bool
    fallback_reason: Optional[str]
    modeled_seconds: float
    #: Poison modifiers this window parked for retry.
    quarantined_count: int = 0
    #: Poison modifiers permanently rejected (quarantine overflow).
    dead_lettered_count: int = 0
    #: Previously quarantined modifiers that re-applied cleanly after
    #: this window.
    recovered_count: int = 0
    #: True when any failure handling ran (poison isolation, quarantine
    #: traffic, or an escalation rebuild).
    degraded: bool = False


class StreamSession:
    """Coalescing, adaptively scheduled, checkpointed partition stream.

    Args:
        csr: Initial graph.
        config: Partitioning configuration.
        ctx: Optional shared GPU context.
        journal_dir: Directory for the recovery journal; None disables
            durability (no checkpoints, no crash recovery).
        queue_capacity / policy: Ingest bound and backpressure policy
            (``"block"`` flushes on the producer's behalf; ``"reject"``
            raises :class:`BackpressureError`).
        scheduler: Flush policy (:class:`SchedulerConfig`); the default
            derives the size trigger from the adaptive batch threshold.
        checkpoint_every: Checkpoint after this many flushes (0
            disables periodic checkpoints; the initial one is always
            written when a journal is configured).
        volume_threshold / batch_threshold / drift_threshold: Fallback
            triggers, forwarded to :class:`AdaptiveIGKway`.
        max_quarantine: Bound on simultaneously quarantined poison
            modifiers; overflow is dead-lettered immediately.
        quarantine_max_attempts / quarantine_backoff_cycles: Retry
            budget and base backoff delay for quarantined modifiers.
        escalate_after: Consecutive failing windows before the session
            escalates to a full device-structure rebuild
            (:meth:`AdaptiveIGKway.full_rebuild`).
        clock: Zero-argument callable returning the session's notion of
            "now" for scheduler deadlines and quarantine backoff.  The
            default reads the partitioner's cost ledger
            (:func:`~repro.stream.scheduler.ledger_cycles`); tests and
            the serving layer inject a deterministic fake so nothing
            depends on wall time or on another session's ledger.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: PartitionConfig,
        ctx: GpuContext | None = None,
        journal_dir: "str | Path | None" = None,
        queue_capacity: int = 4096,
        policy: str = "block",
        scheduler: SchedulerConfig | None = None,
        checkpoint_every: int = 8,
        volume_threshold: float = 0.5,
        batch_threshold: float = 0.1,
        drift_threshold: float = 2.0,
        max_quarantine: int = 64,
        quarantine_max_attempts: int = 4,
        quarantine_backoff_cycles: float = 1e6,
        escalate_after: int = 3,
        clock: Optional[Callable[[], float]] = None,
    ):
        partitioner = AdaptiveIGKway(
            csr,
            config,
            ctx=ctx,
            volume_threshold=volume_threshold,
            batch_threshold=batch_threshold,
            drift_threshold=drift_threshold,
        )
        self._init_parts(
            partitioner,
            journal_dir=journal_dir,
            queue_capacity=queue_capacity,
            policy=policy,
            scheduler=scheduler,
            checkpoint_every=checkpoint_every,
            max_quarantine=max_quarantine,
            quarantine_max_attempts=quarantine_max_attempts,
            quarantine_backoff_cycles=quarantine_backoff_cycles,
            escalate_after=escalate_after,
            clock=clock,
        )

    def _init_parts(
        self,
        partitioner: AdaptiveIGKway,
        journal_dir: "str | Path | None",
        queue_capacity: int,
        policy: str,
        scheduler: SchedulerConfig | None,
        checkpoint_every: int,
        max_quarantine: int = 64,
        quarantine_max_attempts: int = 4,
        quarantine_backoff_cycles: float = 1e6,
        escalate_after: int = 3,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if escalate_after < 1:
            raise ValueError("escalate_after must be >= 1")
        self.partitioner = partitioner
        self.queue = IngestQueue(capacity=queue_capacity, policy=policy)
        self.coalescer = Coalescer()
        self.scheduler = BatchScheduler(scheduler)
        self.journal = (
            StreamJournal(journal_dir) if journal_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.telemetry = StreamTelemetry()
        #: Session-scoped metrics registry: telemetry snapshots,
        #: scheduler trigger counts, quarantine depth and batch-latency
        #: histograms all land here.  Export with :meth:`prometheus`
        #: (text exposition) or ``session.obs.as_dict()`` (flat JSON).
        self.obs = MetricsRegistry()
        self.scheduler.bind_metrics(self.obs)
        self._batch_seconds = self.obs.histogram(
            "stream_batch_modeled_seconds",
            "modeled GPU seconds per flushed window",
            buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
        )
        self.quarantine = Quarantine(
            capacity=max_quarantine,
            max_attempts=quarantine_max_attempts,
            backoff_cycles=quarantine_backoff_cycles,
        )
        self.quarantine.bind_metrics(self.obs)
        self.escalate_after = escalate_after
        self._clock_fn = clock
        #: Fired after every durable checkpoint write.  The serve layer
        #: hooks this to journal cycle settlements that must stay
        #: consistent with the checkpoint cursor (a checkpoint can fire
        #: mid-flush via ``checkpoint_every``, which an after-the-op
        #: observer cannot see).
        self.on_checkpoint: Optional[Callable[[], None]] = None
        self.applied_seq = -1
        self._consecutive_failures = 0
        self._flushes_since_checkpoint = 0
        self._window_opened_cycles: Optional[float] = None
        self._started = False
        self._suspended = False
        self._replaying = False
        # Set during replay of a flush record that had exclusions, so
        # the clean re-apply doesn't reset the failure streak the
        # crashed process had accumulated.
        self._replay_failure = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> FullPartitionReport:
        """Run the initial full partitioning; write the first checkpoint."""
        if self._started:
            raise StreamError("session already started")
        report = self.partitioner.full_partition()
        self._started = True
        self.telemetry.record_full_partition(report.cut, report.seconds)
        if self.journal is not None:
            self.checkpoint()
        return report

    def suspend(self) -> None:
        """Checkpoint and park the session so it can leave memory.

        The cheap half of eviction: everything the engine needs lands in
        the journal (checkpoint + the logged-but-unflushed suffix), the
        journal's file handle is released, and the object refuses
        further streaming calls.  Unlike :meth:`close`, the pending
        queue is *not* drained — the queued suffix is replayed by
        :meth:`recover`, so a suspended-and-recovered session flushes
        the exact same windows an uninterrupted one would have.
        """
        if self.journal is None:
            raise StreamError(
                "cannot suspend a session without a journal"
            )
        self._require_started()
        self.checkpoint()
        self.journal.close()
        self._suspended = True

    def close(self) -> Optional[StreamBatchReport]:
        """Flush everything pending, checkpoint, release the journal."""
        last = None
        if self._started:
            for report in self.drain():
                last = report
            if self.journal is not None:
                self.checkpoint()
        if self.journal is not None:
            self.journal.close()
        return last

    def __enter__(self) -> "StreamSession":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self.journal is not None:
            self.journal.close()

    # -- ingest --------------------------------------------------------------------

    def submit(self, modifier: Modifier) -> int:
        """Accept one modifier; returns its journal sequence number.

        May synchronously flush (backpressure under the ``"block"``
        policy, or a scheduler trigger firing).  Raises
        :class:`BackpressureError` when full under ``"reject"``.
        """
        self._require_started()
        if self.queue.is_full():
            if self.queue.policy == "block":
                self.flush(reason="backpressure")
            else:
                self.telemetry.record_reject()
                raise BackpressureError(
                    f"ingest queue full "
                    f"({self.queue.capacity} pending modifiers)"
                )
        ledger = self.partitioner.ctx.ledger
        with ledger.section("stream_ingest"):
            ledger.charge_host_ops(1)
        was_empty = self.queue.is_empty()
        seq = self.queue.offer(modifier)
        if self.journal is not None:
            self.journal.log_modifier(seq, modifier)
        self.telemetry.record_ingest(self.queue.depth)
        if was_empty:
            self._window_opened_cycles = self._clock()
        self._maybe_flush()
        return seq

    def submit_many(self, modifiers: Iterable[Modifier]) -> List[int]:
        return [self.submit(modifier) for modifier in modifiers]

    # -- flushing ------------------------------------------------------------------

    def flush(self, reason: str = "explicit") -> Optional[StreamBatchReport]:
        """Coalesce and apply one window (at most the size target).

        Returns None when nothing is pending.  Use :meth:`drain` to
        force the entire backlog through.
        """
        self._require_started()
        window = self.queue.drain(
            self.scheduler.size_target(self.partitioner)
        )
        if not window:
            return None
        return self._apply_window(window, reason)

    def drain(self) -> List[StreamBatchReport]:
        """Flush until the queue is empty; returns the batch reports."""
        reports = []
        while not self.queue.is_empty():
            report = self.flush(reason="explicit")
            if report is not None:
                reports.append(report)
        return reports

    def _maybe_flush(self) -> None:
        while True:
            reason = self.scheduler.should_flush(
                self.partitioner,
                self.queue.depth,
                self._window_opened_cycles,
                self._clock(),
            )
            if reason is None:
                return
            self.flush(reason=reason)

    def _apply_window(
        self, window: List[SequencedModifier], reason: str
    ) -> StreamBatchReport:
        with span("stream.apply-window", batch=window[0].seq):
            return self._apply_window_inner(window, reason)

    def _apply_window_inner(
        self, window: List[SequencedModifier], reason: str
    ) -> StreamBatchReport:
        result = self.coalescer.collapse(window)
        applied_count = 0
        poison: List[PoisonEntry] = []
        if len(result.batch):
            entries = list(zip(result.seqs, result.batch))
            applied_count, reports, poison = self._apply_entries(entries)
            if reports:
                cut = reports[-1].iteration.cut
                used_fallback = any(r.used_fallback for r in reports)
                fallback_reason = next(
                    (
                        r.fallback_reason
                        for r in reversed(reports)
                        if r.fallback_reason
                    ),
                    None,
                )
                seconds = sum(
                    r.iteration.modification_seconds
                    + r.iteration.partitioning_seconds
                    for r in reports
                )
            else:
                # Every survivor was poison; the graph is untouched
                # (transactional rollback), so the cut is unchanged.
                cut = self.partitioner.cut_size()
                used_fallback = False
                fallback_reason = None
                seconds = 0.0
        else:
            # The whole window coalesced away: nothing reaches the GPU.
            cut = (
                self.telemetry.last_cut
                if self.telemetry.last_cut is not None
                else self.partitioner.cut_size()
            )
            used_fallback = False
            fallback_reason = None
            seconds = 0.0

        dead_lettered = 0
        if poison:
            self.telemetry.record_batch_failure()
            self._consecutive_failures += 1
            now = self._clock()
            for seq, modifier, error in poison:
                if self.quarantine.add(seq, modifier, error, now):
                    self.telemetry.record_quarantined()
                else:
                    self._dead_letter(seq, modifier, error)
                    dead_lettered += 1
        elif len(result.batch) and not self._replay_failure:
            self._consecutive_failures = 0

        self.applied_seq = result.last_seq
        self._window_opened_cycles = (
            self._clock() if not self.queue.is_empty() else None
        )
        self.telemetry.record_batch(
            reason=reason,
            raw_count=result.raw_count,
            applied_count=applied_count,
            cut=cut,
            used_fallback=used_fallback,
            modeled_seconds=seconds,
            queue_depth=self.queue.depth,
            removed_count=len(poison),
        )
        self._batch_seconds.observe(seconds)
        self.telemetry.publish_to(self.obs)
        if self.journal is not None and not self._replaying:
            self.journal.log_flush(
                result.first_seq,
                result.last_seq,
                reason,
                excluded=[seq for seq, _m, _e in poison],
            )
            self._flushes_since_checkpoint += 1
            if poison:
                # Degraded windows are checkpoint barriers: recovery
                # must never re-run the failure, only its outcome.
                self.checkpoint()
            elif (
                self.checkpoint_every
                and self._flushes_since_checkpoint
                >= self.checkpoint_every
            ):
                self.checkpoint()

        escalated = False
        if poison and self._consecutive_failures >= self.escalate_after:
            self._escalate()
            escalated = True
        recovered = 0
        if not self._replaying and len(self.quarantine):
            recovered = self.retry_quarantine(force=escalated)
        return StreamBatchReport(
            first_seq=result.first_seq,
            last_seq=result.last_seq,
            reason=reason,
            raw_count=result.raw_count,
            applied_count=applied_count,
            coalesce_stats=result.stats,
            cut=cut,
            used_fallback=used_fallback,
            fallback_reason=fallback_reason,
            modeled_seconds=seconds,
            quarantined_count=len(poison) - dead_lettered,
            dead_lettered_count=dead_lettered,
            recovered_count=recovered,
            degraded=bool(poison) or escalated or recovered > 0,
        )

    # -- failure handling ----------------------------------------------------------

    def _apply_entries(
        self, entries: List[Tuple[int, Modifier]]
    ) -> Tuple[int, List[AdaptiveReport], List[PoisonEntry]]:
        """Apply ``(seq, modifier)`` entries, isolating poison modifiers.

        The happy path is a single transactional
        :meth:`AdaptiveIGKway.apply` of the whole batch.  On failure the
        partitioner has already rolled back; the poison is then isolated
        and the healthy remainder re-applied:

        * **fast path** — when the error carries ``modifier_index``
          (every expansion-level rejection does), that one modifier is
          removed and the rest retried in a loop;
        * **bisection** — an unindexed mid-batch failure (capacity
          exhaustion, injected aborts) splits the batch into contiguous
          halves, recursing until the poison is singled out.  Submission
          order is preserved throughout (left half before right).

        Returns ``(applied_count, adaptive_reports, poison_entries)``.
        No healthy modifier is ever dropped: every entry ends up either
        applied or in the poison list.
        """
        applied = 0
        reports: List[AdaptiveReport] = []
        poison: List[PoisonEntry] = []
        remaining = list(entries)
        while remaining:
            batch = ModifierBatch([m for _seq, m in remaining])
            try:
                report = self.partitioner.apply(batch)
            except (ModifierError, CapacityError) as err:
                index = getattr(err, "modifier_index", None)
                if index is not None and 0 <= index < len(remaining):
                    seq, modifier = remaining.pop(index)
                    poison.append((seq, modifier, str(err)))
                    continue
                if len(remaining) == 1:
                    seq, modifier = remaining[0]
                    poison.append((seq, modifier, str(err)))
                    break
                self.telemetry.record_bisection()
                mid = len(remaining) // 2
                a1, r1, p1 = self._apply_entries(remaining[:mid])
                a2, r2, p2 = self._apply_entries(remaining[mid:])
                applied += a1 + a2
                reports.extend(r1 + r2)
                poison.extend(p1 + p2)
                break
            else:
                applied += len(remaining)
                reports.append(report)
                break
        return applied, reports, poison

    def _dead_letter(self, seq: int, modifier: Modifier, error: str) -> None:
        """Permanently reject a modifier, leaving a durable trace."""
        if self.journal is not None and not self._replaying:
            self.journal.log_dead_letter(seq, modifier, error)
        self.telemetry.record_dead_letter()

    def retry_quarantine(self, force: bool = False) -> int:
        """Retry quarantined modifiers whose backoff has elapsed.

        Each success re-applies the modifier (counted as a
        ``quarantine_retry`` batch); each failure doubles the entry's
        backoff until its attempt budget runs out and it is
        dead-lettered.  ``force`` retries everything regardless of
        backoff — used right after an escalation rebuild.  Any change
        to the quarantine is made durable immediately (quarantine
        transitions are checkpoint barriers).  Returns the number of
        recovered modifiers.
        """
        recovered = 0
        changed = False
        for entry in self.quarantine.due(self._clock(), force=force):
            try:
                report = self.partitioner.apply(
                    ModifierBatch([entry.modifier])
                )
            except (ModifierError, CapacityError) as err:
                changed = True
                if self.quarantine.record_failure(
                    entry, str(err), self._clock()
                ):
                    self.quarantine.remove(entry.seq)
                    self._dead_letter(entry.seq, entry.modifier, str(err))
            else:
                changed = True
                self.quarantine.remove(entry.seq)
                recovered += 1
                self.telemetry.record_quarantine_recovered()
                self.telemetry.record_batch(
                    reason="quarantine_retry",
                    raw_count=1,
                    applied_count=1,
                    cut=report.iteration.cut,
                    used_fallback=report.used_fallback,
                    modeled_seconds=(
                        report.iteration.modification_seconds
                        + report.iteration.partitioning_seconds
                    ),
                    queue_depth=self.queue.depth,
                )
        if changed and self.journal is not None and not self._replaying:
            self.checkpoint()
        return recovered

    def _escalate(self) -> None:
        """Full device-structure rebuild after repeated window failures.

        :meth:`AdaptiveIGKway.full_rebuild` constructs a fresh bucket
        list (new pool) and re-runs FGP — the only recovery that fixes
        structural causes like an exhausted bucket pool.
        """
        self.telemetry.record_escalation()
        report = self.partitioner.full_rebuild()
        self.telemetry.record_full_partition(report.cut, report.seconds)
        self._consecutive_failures = 0
        if self.journal is not None and not self._replaying:
            self.checkpoint()

    # -- durability ----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a durable checkpoint and compact the journal."""
        if self.journal is None:
            raise StreamError("session has no journal configured")
        self._require_started()
        with span("stream.checkpoint"):
            self._checkpoint_now()

    def _checkpoint_now(self) -> None:
        # Charge boundary: drain the cut accumulator's pending work so
        # the ledger reading at this cursor is exactly reproducible by
        # checkpoint-load + replay (the accumulator itself is not
        # serialized).
        self.partitioner.inner.settle_cut_maintenance()
        scheduler = self.scheduler.config
        meta = {
            "applied_seq": self.applied_seq,
            "next_seq": self.queue.next_seq,
            "adaptive": {
                "volume_threshold": self.partitioner.volume_threshold,
                "batch_threshold": self.partitioner.batch_threshold,
                "drift_threshold": self.partitioner.drift_threshold,
                "modifiers_since_full": (
                    self.partitioner.modifiers_since_full
                ),
                "reference_cut": self.partitioner.reference_cut,
                "fallbacks_taken": self.partitioner.fallbacks_taken,
            },
            "scheduler": {
                "target_batch_size": scheduler.target_batch_size,
                "batch_headroom": scheduler.batch_headroom,
                "max_latency_cycles": scheduler.max_latency_cycles,
                "min_batch_size": scheduler.min_batch_size,
            },
            "queue": {
                "capacity": self.queue.capacity,
                "policy": self.queue.policy,
            },
            "checkpoint_every": self.checkpoint_every,
            "telemetry": self.telemetry.as_dict(),
            "resilience": {
                "quarantine": self.quarantine.as_meta(self._clock()),
                "consecutive_failures": self._consecutive_failures,
                "escalate_after": self.escalate_after,
            },
        }
        self.journal.write_checkpoint(self.partitioner.inner, meta)
        self.telemetry.checkpoints_written += 1
        self._flushes_since_checkpoint = 0
        if self.on_checkpoint is not None:
            self.on_checkpoint()

    @classmethod
    def recover(
        cls,
        journal_dir: "str | Path",
        ctx: GpuContext | None = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "StreamSession":
        """Rebuild a session from its journal after a crash.

        Loads the last checkpoint, replays exactly the flush windows the
        journal recorded past the cursor (re-coalescing each raw window
        — deterministic, hence bit-identical to the uninterrupted run),
        and re-enqueues the logged-but-unflushed suffix.  Session
        parameters (thresholds, scheduler, queue bound) are restored
        from the checkpoint metadata.
        """
        with span("stream.recover"):
            return cls._recover_impl(journal_dir, ctx=ctx, clock=clock)

    @classmethod
    def _recover_impl(
        cls,
        journal_dir: "str | Path",
        ctx: GpuContext | None = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "StreamSession":
        journal = StreamJournal(journal_dir)
        state = journal.load(ctx=ctx)
        meta = state.meta
        adaptive_meta = meta.get("adaptive", {})
        partitioner = AdaptiveIGKway.from_inner(
            state.partitioner,
            volume_threshold=adaptive_meta.get("volume_threshold", 0.5),
            batch_threshold=adaptive_meta.get("batch_threshold", 0.1),
            drift_threshold=adaptive_meta.get("drift_threshold", 2.0),
        )
        partitioner.modifiers_since_full = adaptive_meta.get(
            "modifiers_since_full", 0
        )
        partitioner.reference_cut = adaptive_meta.get("reference_cut")
        partitioner.fallbacks_taken = adaptive_meta.get(
            "fallbacks_taken", 0
        )
        scheduler_meta = meta.get("scheduler", {})
        queue_meta = meta.get("queue", {})
        resilience_meta = meta.get("resilience", {})

        session = cls.__new__(cls)
        session._init_parts(
            partitioner,
            journal_dir=journal_dir,
            queue_capacity=queue_meta.get("capacity", 4096),
            policy=queue_meta.get("policy", "block"),
            scheduler=SchedulerConfig(
                target_batch_size=scheduler_meta.get("target_batch_size"),
                batch_headroom=scheduler_meta.get("batch_headroom", 0.75),
                max_latency_cycles=scheduler_meta.get(
                    "max_latency_cycles"
                ),
                min_batch_size=scheduler_meta.get("min_batch_size", 1),
            ),
            checkpoint_every=meta.get("checkpoint_every", 8),
            escalate_after=int(resilience_meta.get("escalate_after", 3)),
            clock=clock,
        )
        session._started = True
        session.applied_seq = state.applied_seq
        session.telemetry = StreamTelemetry.restore(
            meta.get("telemetry", {})
        )
        # Every logged modifier past the cursor was ingested exactly
        # once by the crashed process after its last checkpoint — both
        # its telemetry count and its ledger cost (one host op each)
        # are re-applied so a recovered ledger reads identically to the
        # uninterrupted one.
        session.telemetry.ingested += len(state.modifiers)
        if state.modifiers:
            ledger = session.partitioner.ctx.ledger
            with ledger.section("stream_ingest"):
                ledger.charge_host_ops(len(state.modifiers))
        session.telemetry.recoveries += 1
        # Backoff deadlines were persisted relative to the checkpoint
        # clock; re-anchor them to this (fresh) ledger's clock.
        session.quarantine = Quarantine.restore(
            resilience_meta.get("quarantine", {}), now=session._clock()
        )
        session.quarantine.bind_metrics(session.obs)
        session._consecutive_failures = int(
            resilience_meta.get("consecutive_failures", 0)
        )

        # Bootstrap the cut accumulator before replaying: its hooks are
        # no-ops until the first cut read, so a lazy bootstrap would let
        # the first replayed window's arc deltas slip past the cost
        # model — replayed windows must charge exactly what the
        # originals did.  (The bootstrap scan itself is uncharged, in
        # the live path and here alike.)
        session.partitioner.cut_size()

        # Replay the recorded flush windows without re-journaling them.
        # A flush record's excluded seqs were quarantined (or
        # dead-lettered) by the crashed process after its last
        # checkpoint: replay re-routes them the same way instead of
        # re-running the failure itself.
        session._replaying = True
        try:
            for first, last, reason, excluded in state.flushes:
                excluded_set = set(excluded)
                window = []
                for seq in range(first, last + 1):
                    modifier = state.modifiers.pop(seq)
                    if seq not in excluded_set:
                        window.append(SequencedModifier(seq, modifier))
                    elif seq in state.dead_letters:
                        session.telemetry.record_dead_letter()
                    elif session.quarantine.add(
                        seq,
                        modifier,
                        "re-quarantined during replay",
                        session._clock(),
                    ):
                        session.telemetry.record_quarantined()
                    else:
                        session._dead_letter(
                            seq, modifier, "quarantine full during replay"
                        )
                session._replay_failure = bool(excluded)
                if window:
                    session._apply_window(window, reason)
                session._replay_failure = False
                session.applied_seq = last
                if excluded:
                    session.telemetry.record_batch_failure()
                    session._consecutive_failures += 1
                    if (
                        session._consecutive_failures
                        >= session.escalate_after
                    ):
                        session._escalate()
        finally:
            session._replaying = False

        # Re-enqueue the unflushed suffix in original order.
        for seq in sorted(state.modifiers):
            session.queue.requeue(seq, state.modifiers[seq])
        session.queue.reserve_seq(
            max(
                int(meta.get("next_seq", 0)),
                state.max_logged_seq + 1,
                session.applied_seq + 1,
            )
        )
        session.telemetry.queue_depth = session.queue.depth
        if not session.queue.is_empty():
            session._window_opened_cycles = session._clock()
        return session

    # -- queries -------------------------------------------------------------------

    def cut_size(self) -> int:
        return self.partitioner.cut_size()

    @property
    def partition(self):
        return self.partitioner.partition

    def metrics(self) -> dict:
        """The structured telemetry dict (issue: consumable by eval)."""
        self.telemetry.publish_to(self.obs)
        out = self.telemetry.as_dict()
        out.update(
            {
                "applied_seq": self.applied_seq,
                "next_seq": self.queue.next_seq,
                "queue_depth": self.queue.depth,
                "queue_capacity": self.queue.capacity,
                "size_target": self.scheduler.size_target(
                    self.partitioner
                ),
                "simulated_cycles": self._clock(),
                "fallbacks_taken": self.partitioner.fallbacks_taken,
                "quarantine_pending": len(self.quarantine),
            }
        )
        return out

    def prometheus(self) -> str:
        """The session's metrics registry in Prometheus text format."""
        self.telemetry.publish_to(self.obs)
        return self.obs.to_prometheus()

    # -- internals -----------------------------------------------------------------

    def _clock(self) -> float:
        if self._clock_fn is not None:
            return self._clock_fn()
        return ledger_cycles(self.partitioner.ctx.ledger)

    def _require_started(self) -> None:
        if self._suspended:
            raise StreamError(
                "session is suspended; resume it with "
                "StreamSession.recover(journal_dir)"
            )
        if not self._started:
            raise StreamError("call start() before streaming modifiers")
