"""Coalescer: collapse redundant pending work before it reaches the GPU.

Dynamic-graph ingestion layers win or lose on update coalescing: a
stream of fine-grained modifiers routinely contains work that cancels
out (an edge inserted and deleted within the same window), duplicates
(idempotent double-submission), or is subsumed (edge operations on a
vertex the same window deletes).  Shipping that work to the modifier
kernels wastes modeled GPU cycles *and* inflates the adaptive
partitioner's volume triggers with modifiers that have no net effect.

The rules themselves live in
:func:`repro.graph.modifiers.coalesce_modifiers` (they are a property
of modifier semantics, not of streaming); this module packages them for
the stream path: a drained ingest window goes in, a *validated*
:class:`~repro.graph.modifiers.ModifierBatch` plus per-window stats
come out.  Coalescing never changes the final graph — applying the raw
window and the coalesced batch to the same graph yields identical
adjacency (property-tested in ``tests/stream/test_coalescer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.graph.modifiers import (
    ModifierBatch,
    coalesce_modifiers_indexed,
    validate_batch,
)
from repro.stream.ingest import SequencedModifier
from repro.utils.errors import StreamError


@dataclass(frozen=True)
class CoalesceResult:
    """One ingest window collapsed into an applicable batch.

    Attributes:
        batch: The surviving modifiers, in original submission order.
        first_seq / last_seq: Inclusive sequence range the window
            covers — the unit the recovery journal records, so replay
            can re-coalesce exactly the same raw window.
        stats: Counters from the coalescing pass (``input``,
            ``output``, ``cancelled``, ``deduplicated``, ``subsumed``).
        seqs: Journal sequence number of each surviving modifier, in
            batch order — ``seqs[i]`` is the seq of ``batch[i]``.  This
            is what lets the session map a transactional failure's
            ``modifier_index`` straight back to the poison submission
            without bisecting.
    """

    batch: ModifierBatch
    first_seq: int
    last_seq: int
    stats: Dict[str, int]
    seqs: Tuple[int, ...] = field(default=())

    @property
    def raw_count(self) -> int:
        return self.stats["input"]

    @property
    def dropped(self) -> int:
        return self.stats["input"] - self.stats["output"]


class Coalescer:
    """Stateless window collapser used by the session and by replay."""

    def collapse(
        self, window: Sequence[SequencedModifier]
    ) -> CoalesceResult:
        """Coalesce a drained window and validate the survivors.

        Raises :class:`StreamError` on an empty window and
        :class:`~repro.utils.errors.ModifierError` if the surviving
        sequence is internally inconsistent (e.g. a producer submitted
        an edge insert for a vertex it deleted earlier in the window
        without re-inserting it).
        """
        if not window:
            raise StreamError("cannot coalesce an empty window")
        survivors, indices, stats = coalesce_modifiers_indexed(
            sm.modifier for sm in window
        )
        validate_batch(survivors)
        return CoalesceResult(
            batch=ModifierBatch(survivors),
            first_seq=window[0].seq,
            last_seq=window[-1].seq,
            stats=stats,
            seqs=tuple(window[i].seq for i in indices),
        )
