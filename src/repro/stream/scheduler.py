"""Adaptive batch scheduler: decide *when* the pending window flushes.

Batch sizing is where incremental partitioners win or lose: too-small
batches waste kernel-launch overhead and refinement rounds; too-large
batches trip :class:`~repro.core.adaptive.AdaptiveIGKway`'s
volume trigger and force a full re-partition.  The scheduler therefore
drives the flush decision off the *partitioner's own* fallback
thresholds instead of a fixed constant:

* **size trigger** — flush when the pending window approaches the
  adaptive batch threshold (``batch_headroom`` × ``batch_threshold`` ×
  |V|), so a streamed batch lands *under* the single-batch fallback
  trigger that a naive caller would have tripped;
* **deadline trigger** — flush when the oldest pending modifier has
  waited longer than ``max_latency_cycles`` of the simulated GPU's
  clock (the :mod:`repro.gpusim` cost ledger converted to device
  cycles), bounding staleness during quiet periods;
* **explicit** — :meth:`StreamSession.flush` / backpressure, decided by
  the session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.adaptive import AdaptiveIGKway
from repro.gpusim.cost import CostLedger


def ledger_cycles(ledger: CostLedger) -> float:
    """The ledger's modeled elapsed time expressed in device cycles.

    Modeled seconds (compute, memory, atomics, PCIe, host work) scaled
    by the device's SM clock — the clock a CUDA deployment would read
    with ``clock64()`` to implement the same deadline.
    """
    seconds = ledger.model.seconds(ledger.total)
    return seconds * ledger.model.device.clock_ghz * 1e9


@dataclass(frozen=True)
class SchedulerConfig:
    """Flush policy parameters.

    Attributes:
        target_batch_size: Fixed size trigger; when None the target is
            derived from the partitioner's ``batch_threshold``.
        batch_headroom: Fraction of the adaptive single-batch fallback
            trigger at which to flush (default 0.75: stay comfortably
            below the volume/quality fallback unless drift forces it).
        max_latency_cycles: Deadline in simulated device cycles; None
            disables the deadline trigger.
        min_batch_size: Lower bound of the derived size target.
    """

    target_batch_size: Optional[int] = None
    batch_headroom: float = 0.75
    max_latency_cycles: Optional[float] = None
    min_batch_size: int = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.batch_headroom <= 1.0):
            raise ValueError("batch_headroom must be in (0, 1]")
        if self.min_batch_size < 1:
            raise ValueError("min_batch_size must be >= 1")
        if (
            self.target_batch_size is not None
            and self.target_batch_size < 1
        ):
            raise ValueError("target_batch_size must be >= 1")
        if (
            self.max_latency_cycles is not None
            and self.max_latency_cycles <= 0
        ):
            raise ValueError("max_latency_cycles must be positive")


class BatchScheduler:
    """Evaluates the flush triggers against the live partitioner."""

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config if config is not None else SchedulerConfig()
        # Metrics instruments (None until bind_metrics; the hot path
        # checks one attribute, so unbound schedulers pay nothing).
        self._size_trigger_counter = None
        self._deadline_trigger_counter = None

    def bind_metrics(self, registry) -> None:
        """Register this scheduler's trigger counters into ``registry``
        (a :class:`repro.obs.metrics.MetricsRegistry`)."""
        self._size_trigger_counter = registry.counter(
            "scheduler_size_triggers_total",
            "flushes fired by the size trigger",
        )
        self._deadline_trigger_counter = registry.counter(
            "scheduler_deadline_triggers_total",
            "flushes fired by the latency deadline",
        )

    def size_target(self, partitioner: AdaptiveIGKway) -> int:
        """Pending-window size at which the size trigger fires."""
        cfg = self.config
        if cfg.target_batch_size is not None:
            return cfg.target_batch_size
        graph = partitioner.graph
        n = graph.num_active_vertices() if graph is not None else 0
        derived = int(
            cfg.batch_headroom
            * partitioner.batch_threshold
            * max(n, 1)
        )
        return max(cfg.min_batch_size, derived)

    def should_flush(
        self,
        partitioner: AdaptiveIGKway,
        queue_depth: int,
        window_opened_cycles: Optional[float],
        now_cycles: float,
    ) -> Optional[str]:
        """Return the firing trigger's name, or None to keep waiting.

        ``window_opened_cycles`` is the ledger clock when the oldest
        pending modifier arrived (None for an empty window).
        """
        if queue_depth <= 0:
            return None
        if queue_depth >= self.size_target(partitioner):
            if self._size_trigger_counter is not None:
                self._size_trigger_counter.inc()
            return "size"
        cfg = self.config
        if (
            cfg.max_latency_cycles is not None
            and window_opened_cycles is not None
            and now_cycles - window_opened_cycles
            >= cfg.max_latency_cycles
        ):
            if self._deadline_trigger_counter is not None:
                self._deadline_trigger_counter.inc()
            return "deadline"
        return None
