"""Bounded ingest queue: the front door of the streaming service.

Producers submit *individual* modifiers; the queue stamps each with a
monotonically increasing sequence number (the recovery journal's
cursor space) and holds it until the scheduler decides the pending
window is worth a GPU round-trip.

The queue is bounded.  What happens at the bound is the session's
*backpressure policy*:

* ``"block"`` — the session flushes the pending window to the
  partitioner and then accepts the modifier (the single-threaded
  analogue of blocking the producer until the consumer catches up);
* ``"reject"`` — :class:`~repro.utils.errors.BackpressureError` is
  raised to the producer, which is expected to retry later.

The queue itself only *enforces* the bound; the policy lives here but
is *acted on* by :class:`~repro.stream.session.StreamSession`, which is
the component able to flush.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.graph.modifiers import Modifier
from repro.utils.errors import BackpressureError

#: Recognized backpressure policies.
POLICIES = ("block", "reject")


@dataclass(frozen=True)
class SequencedModifier:
    """A modifier stamped with its ingest sequence number."""

    seq: int
    modifier: Modifier


class IngestQueue:
    """Bounded FIFO of sequence-stamped modifiers.

    Args:
        capacity: Maximum pending modifiers.
        policy: ``"block"`` or ``"reject"`` (see module docstring).
    """

    def __init__(self, capacity: int = 4096, policy: str = "block"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r} "
                f"(expected one of {POLICIES})"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: Deque[SequencedModifier] = deque()
        self._next_seq = 0

    # -- queries ----------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`offer` will assign."""
        return self._next_seq

    @property
    def depth(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def peek_oldest(self) -> Optional[SequencedModifier]:
        return self._items[0] if self._items else None

    # -- mutation ---------------------------------------------------------------

    def offer(self, modifier: Modifier) -> int:
        """Enqueue ``modifier``; returns its sequence number.

        Raises :class:`BackpressureError` when full, regardless of
        policy — the session decides whether to flush-and-retry
        (``"block"``) or propagate (``"reject"``).
        """
        if self.is_full():
            raise BackpressureError(
                f"ingest queue full ({self.capacity} pending modifiers)"
            )
        seq = self._next_seq
        self._next_seq += 1
        self._items.append(SequencedModifier(seq, modifier))
        return seq

    def requeue(self, seq: int, modifier: Modifier) -> None:
        """Re-enqueue a journaled modifier under its original sequence
        number (recovery path).  Must be called in ascending seq order
        before any new :meth:`offer`."""
        if self._items and self._items[-1].seq >= seq:
            raise ValueError(
                f"requeue out of order: seq {seq} after "
                f"{self._items[-1].seq}"
            )
        self._items.append(SequencedModifier(seq, modifier))
        self._next_seq = max(self._next_seq, seq + 1)

    def reserve_seq(self, next_seq: int) -> None:
        """Advance the sequence counter (recovery: skip journaled seqs)."""
        self._next_seq = max(self._next_seq, next_seq)

    def drain(self, limit: int | None = None) -> List[SequencedModifier]:
        """Pop and return the oldest ``limit`` pending modifiers
        (everything pending when ``limit`` is None)."""
        if limit is None or limit >= len(self._items):
            window = list(self._items)
            self._items.clear()
            return window
        return [self._items.popleft() for _ in range(max(limit, 0))]
