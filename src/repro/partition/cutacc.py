"""Incremental cut maintenance: the per-batch pool scan, killed.

``IGKway.cut_size()`` used to re-scan the entire bucket pool after every
batch — ~67% of the post-vectorization sweep's host time, and the one
remaining cost proportional to *graph size* rather than *batch size*.
The whole premise of the paper is incrementality, and the engine already
knows every committed move and modifier delta; :class:`CutAccumulator`
folds those deltas into a small matrix instead.

Representation
--------------
A dense ``(k+2) x (k+2)`` int64 **directed-arc weight matrix** over
extended labels (real partitions ``0..k-1``, pseudo ``k``, UNASSIGNED
``k+1``), kept flat for scatter-add folds.  The maintained invariant:

    matrix == arc_matrix_bucketlist(graph, partition, k)

under the *current* graph and labels, at every point where all pending
deltas have been folded.  Folds are plain integer scatter-adds, so they
commute — the invariant needs to hold only at read time (cut size / cut
matrix queries, the sanitizer cross-check), not between individual
hooks.  From the invariant, ``cut = (total - trace) // 2`` equals
``cut_size_bucketlist`` bit-exactly whenever labels compare the same
way, which they always do (extended labels are a bijection on the label
alphabet).

Delta sources
-------------
* **Move deltas** — :class:`~repro.partition.state.PartitionState`
  calls :meth:`on_move` / :meth:`on_moves` *before* writing the new
  labels.  A mover's arcs are re-keyed from its current slots; arcs to
  co-movers (both endpoints moving in one bulk call) are updated
  single-sided from each endpoint's own scan, while arcs to non-movers
  also update the mirrored entry.
* **Modifier deltas** — :meth:`edge_deltas` pre-computes per-arc
  add/subtract keys from the expanded slot-op sequence against the
  *pre-batch* adjacency (a deleted arc's weight is only known before
  the kernel blanks it), and :meth:`fold` applies them after the
  modification kernels commit.

Lifecycle
---------
The matrix is **lazy**: construction costs nothing, every hook is a
no-op until the first read bootstraps via one (uncharged, one-time)
pool scan.  It is **derived state** — never serialized, excluded from
``state_digest`` — so checkpoints and digests stay independent of read
patterns; a recovered session simply re-bootstraps.  Transactional
rollback restores it bit-identically through
:meth:`PartitionState.copy`/``restore`` (see :meth:`clone` /
:meth:`restore_from`).

Cost model: the owner (``IGKway``) drains :meth:`take_touched` once per
batch and charges a ``cut-update`` kernel in a ``cut_maintenance``
ledger section proportional to the arcs actually touched — never to
pool size.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bucketlist import EMPTY, BucketListGraph
from repro.partition.metrics import arc_matrix_bucketlist


def _backend():
    # Lazy: a module-level ``repro.core.backend`` import would initialize
    # ``repro.core``, whose own init imports this package — see the same
    # pattern in :mod:`repro.partition.state`.
    from repro.core.backend import get_backend

    return get_backend()


class CutAccumulator:
    """Incrementally maintained extended-label cut matrix.

    Attributes:
        graph: The bucket-list graph whose arcs are tracked.
        k: Number of real partitions.
        touched_arcs: Arc-delta count since the last
            :meth:`take_touched` (the cost-model's unit of work).
    """

    def __init__(self, graph: BucketListGraph, k: int) -> None:
        self.graph = graph
        self.k = int(k)
        self.ext_n = self.k + 2
        #: Flat (ext_n * ext_n) int64 arc matrix; None until bootstrap.
        self._flat: np.ndarray | None = None
        #: Scratch: vertex -> position in the current bulk-move batch
        #: (-1 outside a batch).  Persistent to avoid per-call allocation.
        self._mover_pos: np.ndarray | None = None
        self.touched_arcs = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True once bootstrapped; hooks are no-ops while False."""
        return self._flat is not None

    def invalidate(self) -> None:
        """Drop the matrix; the next read re-bootstraps from a scan."""
        self._flat = None
        self.touched_arcs = 0

    def ensure(self, partition: np.ndarray) -> np.ndarray:
        """Bootstrap (once) and return the flat matrix.

        The bootstrap is a single host-side pool scan — the same
        uncharged ground-truth computation the old per-batch path ran
        every iteration; here it runs once per accumulator lifetime
        (and once more after a checkpoint recovery or invalidation).
        """
        if self._flat is None:
            # repro-lint: allow[pool-scan-outside-sanitizer] one-time lazy bootstrap; every subsequent read is incremental
            self._flat = arc_matrix_bucketlist(
                self.graph, partition, self.k
            ).reshape(-1)
        return self._flat

    def clone(self) -> "CutAccumulator":
        """Snapshot for transactional rollback (matrix + counters).

        The mover-position scratch is not copied: it is transient
        within one bulk-move call and always reset to -1 between calls.
        """
        out = CutAccumulator(self.graph, self.k)
        if self._flat is not None:
            out._flat = self._flat.copy()
        out.touched_arcs = self.touched_arcs
        return out

    def restore_from(self, snapshot: "CutAccumulator | None") -> None:
        """Restore matrix + counters from a :meth:`clone` snapshot.

        A ``None`` (or unbootstrapped) snapshot invalidates: the batch
        being rolled back may have bootstrapped mid-flight, and the
        pre-batch truth is "not yet computed".
        """
        if snapshot is None or snapshot._flat is None:
            self.invalidate()
            return
        if self._flat is None or self._flat.size != snapshot._flat.size:
            self._flat = snapshot._flat.copy()
        else:
            self._flat[:] = snapshot._flat
        self.touched_arcs = snapshot.touched_arcs

    # -- queries ------------------------------------------------------------

    def cut_size(self, partition: np.ndarray) -> int:
        """Exact weighted cut between distinct labels, O(k^2)."""
        flat = self.ensure(partition)
        matrix = flat.reshape(self.ext_n, self.ext_n)
        return int(flat.sum() - np.trace(matrix)) // 2

    def cut_matrix(self, partition: np.ndarray) -> np.ndarray:
        """``k x k`` cut matrix (same semantics as ``metrics.cut_matrix``):
        symmetric inter-partition weight, diagonal = internal weight."""
        flat = self.ensure(partition)
        matrix = flat.reshape(self.ext_n, self.ext_n)[
            : self.k, : self.k
        ].copy()
        np.fill_diagonal(matrix, np.diagonal(matrix) // 2)
        return matrix

    def arc_matrix(self, partition: np.ndarray) -> np.ndarray:
        """The full extended-label arc matrix (sanitizer cross-check)."""
        return self.ensure(partition).reshape(self.ext_n, self.ext_n).copy()

    def take_touched(self) -> int:
        """Drain and return the arc-delta count since the last drain."""
        arcs, self.touched_arcs = self.touched_arcs, 0
        return arcs

    # -- delta folds ---------------------------------------------------------

    def _ext(self, labels: np.ndarray) -> np.ndarray:
        """Map labels onto extended indices (-1 -> k+1)."""
        return np.where(labels < 0, np.int64(self.k + 1), labels)

    def on_move(self, partition: np.ndarray, u: int, old: int, new: int) -> None:
        """Re-key vertex ``u``'s arcs from label ``old`` to ``new``.

        Called by ``PartitionState.move`` *before* the label write, so
        ``partition`` still holds every pre-move label.  ``u`` has no
        self-loop, hence ``partition[nbr]`` is never ``u``'s own stale
        label.
        """
        if self._flat is None:
            return
        values = self.graph.slots(u)
        filled = values != EMPTY
        nbrs = values[filled]
        if nbrs.size == 0:
            return
        weights = self.graph.slot_weights(u)[filled]
        nbr_ext = self._ext(partition[nbrs])
        old_e = np.int64(old if old >= 0 else self.k + 1)
        new_e = np.int64(new if new >= 0 else self.k + 1)
        ext_n = np.int64(self.ext_n)
        # Both directions of every incident arc change key.
        sub_keys = np.concatenate(
            [old_e * ext_n + nbr_ext, nbr_ext * ext_n + old_e]
        )
        add_keys = np.concatenate(
            [new_e * ext_n + nbr_ext, nbr_ext * ext_n + new_e]
        )
        w2 = np.concatenate([weights, weights])
        _backend().fold_cut_deltas(self._flat, sub_keys, w2, add_keys, w2)
        self.touched_arcs += int(sub_keys.size)

    def on_moves(
        self,
        partition: np.ndarray,
        vertices: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """Re-key the arcs of a bulk move (``PartitionState.apply_moves``).

        Called before the label writes with the already-filtered
        actually-changing ``(vertices, targets)``; ``vertices`` holds no
        duplicates (the caller's documented contract).  Arcs between two
        co-movers are updated single-sided — each endpoint's own slot
        scan covers its outgoing direction with the *new* label of the
        other endpoint — while arcs to non-movers update the mirrored
        entry too (the non-mover's scan never runs).
        """
        if self._flat is None or vertices.size == 0:
            return
        graph = self.graph
        if (
            self._mover_pos is None
            or self._mover_pos.size < graph.capacity
        ):
            self._mover_pos = np.full(graph.capacity, -1, dtype=np.int64)
        pos = self._mover_pos
        pos[vertices] = np.arange(vertices.size)

        slot_idx, owner = graph.slot_index_arrays(vertices)
        slot_vals = graph.bucket_list[slot_idx]
        filled = slot_vals != EMPTY
        owner_f = owner[filled]
        nbrs = slot_vals[filled]
        weights = graph.slot_wgt[slot_idx][filled]

        old_u = self._ext(partition[vertices])[owner_f]
        new_u = self._ext(targets)[owner_f]
        nbr_pos = pos[nbrs]
        co = nbr_pos >= 0
        nbr_old = self._ext(partition[nbrs])
        nbr_new = np.where(
            co, self._ext(targets)[np.maximum(nbr_pos, 0)], nbr_old
        )
        ext_n = np.int64(self.ext_n)
        # Outgoing arc u -> nbr for every mover.
        sub_keys = old_u * ext_n + nbr_old
        add_keys = new_u * ext_n + nbr_new
        # Mirror nbr -> u, only where nbr is NOT itself a mover (a
        # co-mover's scan contributes its own outgoing direction).
        non_co = ~co
        sub_keys = np.concatenate(
            [sub_keys, (nbr_old * ext_n + old_u)[non_co]]
        )
        add_keys = np.concatenate(
            [add_keys, (nbr_old * ext_n + new_u)[non_co]]
        )
        w_all = np.concatenate([weights, weights[non_co]])
        _backend().fold_cut_deltas(
            self._flat, sub_keys, w_all, add_keys, w_all
        )
        self.touched_arcs += int(sub_keys.size)
        pos[vertices] = -1

    def edge_deltas(
        self, partition: np.ndarray, ops
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Arc deltas of an expanded slot-op sequence (pre-apply).

        Must run against the *pre-batch* graph (before
        ``apply_ops``): a deleted arc's weight is read from the
        adjacency the kernel is about to blank.  Labels are the
        pre-batch labels too — modification never moves a vertex, so
        they are also the labels in force when the deltas are folded.

        Replays the batch's in-flight adjacency the same way
        ``expand_modifiers`` does (which already validated it), so
        insert-then-delete sequences and vertex deactivations resolve
        to their net arc effect:

        * ``SlotInsert(u, v, w)`` adds arc ``(u, v)``,
        * ``SlotDelete(u, v)`` removes it with its current weight,
        * ``VertexDeactivate(u)`` removes every arc still leaving ``u``
          (expansion only emits the *reverse* slot-deletes; the forward
          arcs die when the kernel blanks ``u``'s buckets),
        * ``VertexActivate`` contributes nothing (a fresh or previously
          blanked vertex has no arcs).

        Returns ``(sub_keys, sub_weights, add_keys, add_weights)``.
        """
        from repro.core.modification import (
            SlotDelete,
            SlotInsert,
            VertexActivate,
            VertexDeactivate,
        )

        graph = self.graph
        k = self.k
        ext_n = self.ext_n

        def ext_of(w: int) -> int:
            label = int(partition[w]) if w < partition.size else -1
            return label if label >= 0 else k + 1

        adj_cache: dict[int, dict[int, int]] = {}

        def adj_of(u: int) -> dict[int, int]:
            d = adj_cache.get(u)
            if d is None:
                if u >= graph.num_vertices or not graph.is_active(u):
                    d = {}
                else:
                    values = graph.slots(u)
                    mask = values != EMPTY
                    d = dict(
                        zip(
                            (int(v) for v in values[mask]),
                            (int(w) for w in graph.slot_weights(u)[mask]),
                        )
                    )
                adj_cache[u] = d
            return d

        sub_keys: list[int] = []
        sub_w: list[int] = []
        add_keys: list[int] = []
        add_w: list[int] = []
        for op in ops:
            if isinstance(op, SlotInsert):
                adj_of(op.u)[op.v] = op.w
                add_keys.append(ext_of(op.u) * ext_n + ext_of(op.v))
                add_w.append(op.w)
            elif isinstance(op, SlotDelete):
                w = adj_of(op.u).pop(op.v)
                sub_keys.append(ext_of(op.u) * ext_n + ext_of(op.v))
                sub_w.append(w)
            elif isinstance(op, VertexDeactivate):
                d = adj_of(op.u)
                eu = ext_of(op.u) * ext_n
                for v, w in d.items():
                    sub_keys.append(eu + ext_of(v))
                    sub_w.append(w)
                adj_cache[op.u] = {}
            elif isinstance(op, VertexActivate):
                # Buckets are blanked on (re)activation; in-batch
                # inserts land via SlotInsert afterwards.
                adj_cache[op.u] = {}
        return (
            np.asarray(sub_keys, dtype=np.int64),
            np.asarray(sub_w, dtype=np.int64),
            np.asarray(add_keys, dtype=np.int64),
            np.asarray(add_w, dtype=np.int64),
        )

    def fold(
        self,
        sub_keys: np.ndarray,
        sub_weights: np.ndarray,
        add_keys: np.ndarray,
        add_weights: np.ndarray,
    ) -> None:
        """Apply :meth:`edge_deltas` output to the matrix (post-commit)."""
        if self._flat is None:
            return
        _backend().fold_cut_deltas(
            self._flat, sub_keys, sub_weights, add_keys, add_weights
        )
        self.touched_arcs += int(sub_keys.size + add_keys.size)
