"""Parallel union-find vertex grouping (G-kway's coarsening front end).

G-kway groups vertices into subsets with a parallel union-find: in each
iteration every still-ungrouped vertex selects a neighbor (heaviest edge,
random tie-break) and the two subsets are united.  The key extra signal
iG-kway needs (Section IV) is *when* each vertex joined its subset —
vertices that joined later are structurally farther from the subset's
core — so :func:`group_vertices` also returns a ``join_iteration`` label
per vertex, exactly the ``(n)`` annotations of Figure 3.

The implementation is the standard GPU-style hook-to-minimum union-find:
all hooks write ``parent[max(r, t)] = min(r, t)``, which is trivially
acyclic, followed by pointer-jumping to full path compression.  Lost
hooks (two subsets hooking onto the same root in one round) are retried
in later rounds, matching the parallel semantics.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.utils.seeding import make_rng

_NO_NEIGHBOR = np.int64(-1)


def find_roots(parent: np.ndarray) -> np.ndarray:
    """Fully compress ``parent`` by pointer jumping; returns the roots."""
    roots = parent.copy()
    while True:
        nxt = roots[roots]
        if np.array_equal(nxt, roots):
            return roots
        roots = nxt


def select_neighbors(
    csr: CSRGraph, priorities: np.ndarray, eligible: np.ndarray
) -> np.ndarray:
    """Each eligible vertex's selected neighbor (heaviest edge wins).

    Ties on edge weight are broken by per-arc random ``priorities`` so
    repeated runs with different seeds explore different matchings, like
    G-kway's GPU scheduler nondeterminism — but deterministically for a
    fixed seed.  Returns ``_NO_NEIGHBOR`` for isolated or non-eligible
    vertices.
    """
    n = csr.num_vertices
    selected = np.full(n, _NO_NEIGHBOR, dtype=np.int64)
    degrees = csr.degrees()
    has_nbrs = (degrees > 0) & eligible
    if not np.any(has_nbrs):
        return selected
    # Composite key: weight first, then random priority.
    key = csr.adjwgt.astype(np.int64) * np.int64(1 << 20) + priorities
    starts = csr.xadj[:-1]
    seg_max = np.maximum.reduceat(key, np.minimum(starts, key.size - 1))
    src = np.repeat(np.arange(n), degrees)
    is_max = key == seg_max[src]
    arc_index = np.arange(key.size, dtype=np.int64)
    masked = np.where(is_max, arc_index, np.int64(key.size))
    first_max = np.minimum.reduceat(
        masked, np.minimum(starts, max(key.size - 1, 0))
    )
    valid = has_nbrs & (degrees > 0)
    selected[valid] = csr.adjncy[first_max[valid]]
    return selected


def group_vertices(
    csr: CSRGraph,
    match_iterations: int = 3,
    seed: int = 0,
    ctx: GpuContext | None = None,
    mode: str = "vector",
) -> tuple[np.ndarray, np.ndarray]:
    """Group vertices into subsets; label each with its join iteration.

    Returns ``(roots, join_iteration)`` where ``roots[v]`` identifies the
    subset of ``v`` (a representative vertex ID) and
    ``join_iteration[v]`` is the 1-based iteration in which ``v`` was
    merged into a subset of size > 1, or 0 if ``v`` stayed a singleton
    (or was a subset seed that only ever *received* members in iteration
    1 — seeds sort first, which is what constrained grouping wants).
    """
    n = csr.num_vertices
    rng = make_rng(seed, "unionfind")
    parent = np.arange(n, dtype=np.int64)
    join_iteration = np.zeros(n, dtype=np.int64)

    for iteration in range(1, match_iterations + 1):
        roots = find_roots(parent)
        sizes = np.bincount(roots, minlength=n)
        single = sizes[roots] == 1
        if not np.any(single):
            break
        priorities = rng.integers(
            0, 1 << 20, size=csr.adjncy.size, dtype=np.int64
        )
        if mode == "warp" and ctx is not None:
            from repro.partition.warp_kernels import select_neighbors_warp

            selected = select_neighbors_warp(ctx, csr, priorities, single)
        else:
            selected = select_neighbors(csr, priorities, single)
            if ctx is not None:
                _charge_match_iteration(ctx, csr)
        hookers = np.flatnonzero(selected != _NO_NEIGHBOR)
        if hookers.size == 0:
            break
        own_root = roots[hookers]
        target_root = roots[selected[hookers]]
        differs = own_root != target_root
        own_root = own_root[differs]
        target_root = target_root[differs]
        if own_root.size == 0:
            break
        hi = np.maximum(own_root, target_root)
        lo = np.minimum(own_root, target_root)
        # Parallel hook: last write wins on conflicts, like atomicExch.
        parent[hi] = lo
        new_roots = find_roots(parent)
        new_sizes = np.bincount(new_roots, minlength=n)
        newly_grouped = (
            single & (new_sizes[new_roots] > 1) & (join_iteration == 0)
        )
        join_iteration[newly_grouped] = iteration

    return find_roots(parent), join_iteration


def _charge_match_iteration(ctx: GpuContext, csr: CSRGraph) -> None:
    """One matching round: every warp serves 32 vertices; per arc it
    loads the neighbor, its root and weight and updates the best
    candidate (~4 instructions), then hooks via atomics."""
    import math

    n_warps = math.ceil(max(csr.num_vertices, 1) / 32)
    arcs = csr.adjncy.size
    arcs_per_warp = math.ceil(arcs / max(n_warps, 1))
    # Scattered CSR reads: neighbor ID, its union-find root and the edge
    # weight live in different segments (~3 transactions per arc).
    with ctx.ledger.kernel("uf-match"):
        ctx.charge_wavefront(
            n_warps,
            instructions_per_warp=4 + 4 * arcs_per_warp,
            transactions_per_warp=2 + 3 * arcs_per_warp,
        )
