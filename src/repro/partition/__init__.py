"""Full graph partitioning: G-kway with constrained coarsening."""

from repro.partition.coarsen import (
    CoarsenLevel,
    build_groups_constrained,
    build_groups_unionfind,
    coarse_weight_imbalance,
    coarsen_once,
    coarsen_to_size,
    contract,
)
from repro.partition.config import PartitionConfig
from repro.partition.cutacc import CutAccumulator
from repro.partition.cutcheck import verify_cut
from repro.partition.gkway import FullPartitionResult, GKwayPartitioner
from repro.partition.initial import initial_partition
from repro.partition.metrics import (
    arc_matrix_bucketlist,
    boundary_vertices_csr,
    cut_matrix,
    cut_matrix_bucketlist,
    cut_size_bucketlist,
    cut_size_csr,
    external_internal_degrees,
    imbalance,
    is_balanced,
    max_partition_weight,
    partition_weights,
)
from repro.partition.fm import fm_refine
from repro.partition.jet import jet_refine
from repro.partition.recursive import recursive_bisection
from repro.partition.refine import rebalance_csr, refine_csr
from repro.partition.state import UNASSIGNED, PartitionState
from repro.partition.unionfind import find_roots, group_vertices

__all__ = [
    "PartitionConfig",
    "PartitionState",
    "UNASSIGNED",
    "GKwayPartitioner",
    "FullPartitionResult",
    "CoarsenLevel",
    "coarsen_once",
    "coarsen_to_size",
    "contract",
    "build_groups_constrained",
    "build_groups_unionfind",
    "coarse_weight_imbalance",
    "group_vertices",
    "find_roots",
    "initial_partition",
    "refine_csr",
    "rebalance_csr",
    "fm_refine",
    "jet_refine",
    "recursive_bisection",
    "cut_size_csr",
    "cut_size_bucketlist",
    "cut_matrix",
    "cut_matrix_bucketlist",
    "arc_matrix_bucketlist",
    "CutAccumulator",
    "verify_cut",
    "boundary_vertices_csr",
    "external_internal_degrees",
    "partition_weights",
    "imbalance",
    "is_balanced",
    "max_partition_weight",
]
