"""Graph coarsening: subset formation and contraction (Section IV).

Two strategies are implemented on top of the union-find grouping:

* ``"unionfind"`` — plain G-kway: every union-find subset collapses into
  one coarse vertex.  Subset sizes vary wildly, so coarse vertex weights
  become imbalanced (Figure 3a), which later hurts partition balance.
* ``"constrained"`` — the paper's contribution: subset members are
  sorted by their join iteration (earlier = closer to the subset core)
  and chopped into groups of fixed size ``s``; each group becomes one
  coarse vertex (Figure 3b).  Weights stay balanced while nearby
  vertices still merge together.

:func:`contract` builds the coarse CSR: group weights are summed, edges
between groups aggregate their weights, intra-group edges vanish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.partition.unionfind import group_vertices


@dataclass
class CoarsenLevel:
    """One level of the multilevel hierarchy.

    Attributes:
        fine: The graph that was coarsened.
        coarse: The resulting smaller graph.
        cmap: ``cmap[v]`` = coarse vertex containing fine vertex ``v``.
    """

    fine: CSRGraph
    coarse: CSRGraph
    cmap: np.ndarray


def build_groups_unionfind(roots: np.ndarray) -> np.ndarray:
    """G-kway grouping: one coarse vertex per union-find subset."""
    _, cmap = np.unique(roots, return_inverse=True)
    return cmap.astype(np.int64)


def build_groups_constrained(
    roots: np.ndarray,
    join_iteration: np.ndarray,
    group_size: int,
) -> np.ndarray:
    """Constrained grouping: sort by join iteration, chop into groups.

    Within each subset, members are ordered by ``(join_iteration,
    vertex_id)`` — the paper's "sort the vertices based on their labels"
    — and consecutive runs of ``group_size`` become one coarse vertex.
    """
    n = roots.shape[0]
    order = np.lexsort((np.arange(n), join_iteration, roots))
    sorted_roots = roots[order]
    # Rank of each vertex within its subset, in sorted order.
    new_subset = np.ones(n, dtype=bool)
    new_subset[1:] = sorted_roots[1:] != sorted_roots[:-1]
    subset_start = np.maximum.accumulate(
        np.where(new_subset, np.arange(n), 0)
    )
    rank_in_subset = np.arange(n) - subset_start
    # New coarse vertex at each subset start and every s-th member.
    new_group = new_subset | (rank_in_subset % group_size == 0)
    group_of_sorted = np.cumsum(new_group) - 1
    cmap = np.empty(n, dtype=np.int64)
    cmap[order] = group_of_sorted
    return cmap


def contract(
    csr: CSRGraph, cmap: np.ndarray, ctx: GpuContext | None = None
) -> CSRGraph:
    """Contract ``csr`` along ``cmap`` into the coarse graph.

    Parallel fine edges between the same pair of groups merge, summing
    weights; intra-group edges disappear (their weight is the cut the
    coarsening "locks in").
    """
    n_coarse = int(cmap.max()) + 1 if cmap.size else 0
    degrees = csr.degrees()
    src = np.repeat(np.arange(csr.num_vertices), degrees)
    csrc = cmap[src]
    cdst = cmap[csr.adjncy]
    keep = csrc != cdst
    csrc, cdst = csrc[keep], cdst[keep]
    weights = csr.adjwgt[keep]
    if ctx is not None:
        _charge_contract(ctx, csr)
    # Aggregate parallel directed arcs.
    keys = csrc * np.int64(n_coarse) + cdst
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    agg_wgt = np.bincount(
        inverse, weights=weights, minlength=unique_keys.size
    ).astype(np.int64)
    out_src = (unique_keys // n_coarse).astype(np.int64)
    out_dst = (unique_keys % n_coarse).astype(np.int64)
    out_degrees = np.bincount(out_src, minlength=n_coarse)
    xadj = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(out_degrees, out=xadj[1:])
    vwgt = np.bincount(
        cmap, weights=csr.vwgt, minlength=n_coarse
    ).astype(np.int64)
    return CSRGraph(xadj=xadj, adjncy=out_dst, adjwgt=agg_wgt, vwgt=vwgt)


def coarsen_once(
    csr: CSRGraph,
    strategy: str,
    group_size: int,
    match_iterations: int,
    seed: int,
    ctx: GpuContext | None = None,
    mode: str = "vector",
) -> CoarsenLevel:
    """Run one full coarsening step (group + contract)."""
    roots, join_iteration = group_vertices(
        csr, match_iterations=match_iterations, seed=seed, ctx=ctx,
        mode=mode,
    )
    if strategy == "constrained":
        if ctx is not None:
            _charge_constrained_sort(ctx, csr.num_vertices)
        cmap = build_groups_constrained(roots, join_iteration, group_size)
    elif strategy == "unionfind":
        cmap = build_groups_unionfind(roots)
    else:
        raise ValueError(f"unknown coarsening strategy {strategy!r}")
    coarse = contract(csr, cmap, ctx=ctx)
    return CoarsenLevel(fine=csr, coarse=coarse, cmap=cmap)


def coarsen_to_size(
    csr: CSRGraph,
    target_vertices: int,
    min_coarsen_rate: float,
    strategy: str,
    group_size: int,
    match_iterations: int,
    seed: int,
    ctx: GpuContext | None = None,
    max_levels: int = 64,
    mode: str = "vector",
) -> list[CoarsenLevel]:
    """Coarsen until the target size, the rate floor, or the level cap.

    Termination mirrors Section VI: stop when the vertex count drops
    below the target or when an iteration keeps more than
    ``min_coarsen_rate`` of the vertices (coarsening has stalled).
    """
    levels: list[CoarsenLevel] = []
    current = csr
    for level_index in range(max_levels):
        if current.num_vertices <= target_vertices:
            break
        level = coarsen_once(
            current,
            strategy=strategy,
            group_size=group_size,
            match_iterations=match_iterations,
            seed=seed + level_index,
            ctx=ctx,
            mode=mode,
        )
        levels.append(level)
        shrank_to = level.coarse.num_vertices / current.num_vertices
        current = level.coarse
        if shrank_to > min_coarsen_rate:
            break
    return levels


def coarse_weight_imbalance(cmap: np.ndarray, vwgt: np.ndarray) -> float:
    """max / mean coarse vertex weight — the metric Figure 3 is about.

    Plain union-find coarsening produces a high value (a few huge
    subsets); constrained coarsening keeps it near 1.
    """
    weights = np.bincount(cmap, weights=vwgt)
    if weights.size == 0:
        return 1.0
    return float(weights.max() / weights.mean())


def _charge_constrained_sort(ctx: GpuContext, n: int) -> None:
    """Sorting (root, join_iteration) pairs: 2 radix-sort passes' worth."""
    n_warps = math.ceil(max(n, 1) / 32)
    for _ in range(2):
        with ctx.ledger.kernel("constrained-sort"):
            ctx.charge_wavefront(
                n_warps, instructions_per_warp=8, transactions_per_warp=3
            )


def _charge_contract(ctx: GpuContext, csr: CSRGraph) -> None:
    """Contraction: gather + sort + reduce over all arcs (a few radix
    passes' worth of work per arc)."""
    arcs = csr.adjncy.size
    n_warps = math.ceil(max(arcs, 1) / 32)
    with ctx.ledger.kernel("contract"):
        ctx.charge_wavefront(
            n_warps, instructions_per_warp=16, transactions_per_warp=4
        )
