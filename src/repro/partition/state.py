"""Mutable partition state shared by the partitioners.

``PartitionState`` owns the per-vertex partition array plus the cached
partition weights and the balance constraint.  Two reserved labels extend
the ``0 .. k-1`` partition IDs:

* :data:`UNASSIGNED` (-1): deleted vertices,
* :data:`PSEUDO` (k): the paper's pseudo-partition holding affected
  vertices between balancing and refinement (Section V.C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.partition.metrics import (
    is_balanced,
    max_partition_weight,
    partition_weights,
)
from repro.utils.errors import PartitionError

if TYPE_CHECKING:
    from repro.partition.cutacc import CutAccumulator


def _backend():
    # Imported lazily: ``repro.core.backend`` initializes the
    # ``repro.core`` package, which imports this module — a module-level
    # import here would deadlock the cycle when ``repro.partition`` is
    # imported first.  ``sys.modules`` makes the per-call cost one dict
    # hit.
    from repro.core.backend import get_backend

    return get_backend()

#: Partition label of deleted / not-yet-assigned vertices.
UNASSIGNED = np.int64(-1)


class PartitionState:
    """Partition assignment + cached weights for ``k`` partitions.

    The pseudo-partition is labelled ``k`` (one past the real
    partitions); its accumulated weight is tracked separately and never
    counts toward the balance constraint — that is the whole point of
    parking affected vertices there.
    """

    def __init__(
        self,
        partition: np.ndarray,
        vwgt: np.ndarray,
        k: int,
        epsilon: float,
    ):
        self.k = int(k)
        self.epsilon = float(epsilon)
        self.partition = np.asarray(partition, dtype=np.int64).copy()
        if self.partition.ndim != 1:
            raise PartitionError("partition must be one-dimensional")
        # Snapshot, not a view: the graph's weight array may be rewritten
        # by modification kernels *before* the balancing kernel accounts
        # for the change (e.g. a delete + re-insert with a new weight in
        # one batch); the state's weights advance only through
        # ``set_vertex_weight``/``move`` in modifier order.
        self._vwgt = np.asarray(vwgt, dtype=np.int64).copy()
        if self._vwgt.shape != self.partition.shape:
            raise PartitionError("vwgt and partition must align")
        self.part_weights = partition_weights(self._vwgt, self.partition, k)
        self.pseudo_weight = int(
            self._vwgt[self.partition == self.pseudo_label].sum()
        )
        #: Incremental cut accumulator (attached by the owning
        #: partitioner; see :mod:`repro.partition.cutacc`).  Derived
        #: state: excluded from ``state_digest`` and checkpoints, but
        #: snapshot/restored through :meth:`copy`/:meth:`restore` so a
        #: transactional rollback restores it bit-identically.
        self.cut_acc: CutAccumulator | None = None

    # -- labels ------------------------------------------------------------------

    @property
    def pseudo_label(self) -> int:
        """The pseudo-partition's label (``k``)."""
        return self.k

    # -- weights -----------------------------------------------------------------

    def total_weight(self) -> int:
        """Weight of all vertices currently assigned or pseudo-parked."""
        return int(self.part_weights.sum()) + self.pseudo_weight

    def w_pmax(self) -> int:
        """Current ``W_pmax`` from the live total weight."""
        return max_partition_weight(self.total_weight(), self.k, self.epsilon)

    def balanced(self) -> bool:
        return is_balanced(
            self.part_weights, self.total_weight(), self.k, self.epsilon
        )

    # -- vertex transitions ---------------------------------------------------------

    def vertex_weight(self, u: int) -> int:
        return int(self._vwgt[u])

    def vertex_weights(self, vertices: np.ndarray) -> np.ndarray:
        """Bulk weight gather (one ``vwgt`` load per vertex)."""
        return self._vwgt[np.asarray(vertices, dtype=np.int64)]

    def set_vertex_weight(self, u: int, weight: int) -> None:
        """Update a vertex's weight, keeping cached sums consistent."""
        old = int(self._vwgt[u])
        label = int(self.partition[u])
        self._vwgt[u] = weight
        if 0 <= label < self.k:
            self.part_weights[label] += weight - old
        elif label == self.pseudo_label:
            self.pseudo_weight += weight - old

    def move(self, u: int, target: int) -> None:
        """Move vertex ``u`` to ``target`` (a real label, PSEUDO or
        UNASSIGNED), updating cached weights."""
        source = int(self.partition[u])
        if source == target:
            return
        if target != UNASSIGNED and not (0 <= target <= self.pseudo_label):
            raise PartitionError(f"invalid target label {target}")
        if self.cut_acc is not None:
            # Before the label write: the hook re-keys u's arcs from the
            # pre-move labels still in ``partition``.
            self.cut_acc.on_move(self.partition, u, source, int(target))
        weight = int(self._vwgt[u])
        if 0 <= source < self.k:
            # repro-lint: allow[uncharged-device-write] scalar host-side move; the driving refinement/balancing kernels price moves in their own ledger scopes
            self.part_weights[source] -= weight
        elif source == self.pseudo_label:
            self.pseudo_weight -= weight
        if 0 <= target < self.k:
            self.part_weights[target] += weight
        elif target == self.pseudo_label:
            self.pseudo_weight += weight
        self.partition[u] = target

    def move_many(self, vertices: np.ndarray, target: int) -> None:
        """Bulk :meth:`move` of several vertices to one label."""
        vertices = np.asarray(vertices, dtype=np.int64)
        self.apply_moves(vertices, np.full(vertices.shape, target))

    def apply_moves(
        self, vertices: np.ndarray, targets: np.ndarray
    ) -> None:
        """Vectorized :meth:`move` of aligned ``(vertices, targets)``.

        Equivalent to moving each vertex in order; ``vertices`` must not
        contain duplicates (per-label weight deltas are accumulated in
        one scatter-add, so a duplicate would be double-counted).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if vertices.size == 0:
            return
        if np.any(
            (targets != UNASSIGNED) & (targets > self.pseudo_label)
        ) or np.any(targets < UNASSIGNED):
            bad = targets[
                ((targets != UNASSIGNED) & (targets > self.pseudo_label))
                | (targets < UNASSIGNED)
            ][0]
            raise PartitionError(f"invalid target label {int(bad)}")
        src = self.partition[vertices]
        changing = src != targets
        if not np.any(changing):
            return
        vertices = vertices[changing]
        src = src[changing]
        targets = targets[changing]
        weights = self._vwgt[vertices]
        if self.cut_acc is not None:
            # Before the label writes: the hook re-keys the movers' arcs
            # from the pre-move labels still in ``partition``.
            self.cut_acc.on_moves(self.partition, vertices, targets)
        part_delta, pseudo_delta = _backend().apply_move_deltas(
            src, targets, weights, self.k, self.pseudo_label
        )
        self.part_weights += part_delta
        self.pseudo_weight += pseudo_delta
        # repro-lint: allow[uncharged-device-write] bulk label scatter priced by the refinement/balancing kernels that computed the move set
        self.partition[vertices] = targets

    # -- consistency ------------------------------------------------------------------

    def recompute(self) -> None:
        """Recompute cached weights from scratch (after bulk edits)."""
        self.part_weights = partition_weights(
            self._vwgt, self.partition, self.k
        )
        self.pseudo_weight = int(
            self._vwgt[self.partition == self.pseudo_label].sum()
        )

    def validate(self, active_mask: np.ndarray | None = None) -> None:
        """Check label ranges and cached-weight consistency.

        Args:
            active_mask: If given, every active vertex must have a label
                in ``[0, k]`` (real or pseudo) and every inactive vertex
                must be UNASSIGNED.
        """
        labels = self.partition
        if np.any((labels < UNASSIGNED) | (labels > self.pseudo_label)):
            raise PartitionError("partition label out of range")
        expected = partition_weights(self._vwgt, labels, self.k)
        if not np.array_equal(expected, self.part_weights):
            raise PartitionError(
                f"cached part_weights {self.part_weights} != recomputed "
                f"{expected}"
            )
        expected_pseudo = int(
            self._vwgt[labels == self.pseudo_label].sum()
        )
        if expected_pseudo != self.pseudo_weight:
            raise PartitionError(
                f"cached pseudo_weight {self.pseudo_weight} != "
                f"{expected_pseudo}"
            )
        if active_mask is not None:
            active_mask = np.asarray(active_mask, dtype=bool)
            if np.any(labels[active_mask] == UNASSIGNED):
                raise PartitionError("active vertex is UNASSIGNED")
            if np.any(labels[~active_mask] != UNASSIGNED):
                raise PartitionError("deleted vertex still has a label")

    def copy(self) -> "PartitionState":
        out = PartitionState.__new__(PartitionState)
        out.k = self.k
        out.epsilon = self.epsilon
        out.partition = self.partition.copy()
        out._vwgt = self._vwgt.copy()
        out.part_weights = self.part_weights.copy()
        out.pseudo_weight = self.pseudo_weight
        out.cut_acc = (
            self.cut_acc.clone() if self.cut_acc is not None else None
        )
        return out

    def restore(self, snapshot: "PartitionState") -> None:
        """Restore this state in place from a :meth:`copy` snapshot.

        In-place (array contents, not identities) so kernels holding a
        reference to ``partition`` keep seeing the live state after a
        transactional rollback.
        """
        if snapshot.k != self.k or snapshot.partition.shape != (
            self.partition.shape
        ):
            raise PartitionError("snapshot does not match this state")
        self.epsilon = snapshot.epsilon
        # repro-lint: allow[uncharged-device-write] rollback copy-back; core.transaction prices it in the coalesced txn_rollback kernel
        self.partition[:] = snapshot.partition
        self._vwgt[:] = snapshot._vwgt
        self.part_weights[:] = snapshot.part_weights
        self.pseudo_weight = snapshot.pseudo_weight
        if self.cut_acc is not None:
            # Restores the maintained cut matrix bit-identically (or
            # invalidates it when the snapshot predates its bootstrap).
            self.cut_acc.restore_from(getattr(snapshot, "cut_acc", None))
