"""Configuration for full and incremental partitioning.

Defaults follow Section VI of the paper: imbalance ratio eps = 3%, group
size s = 6, coarsening stops when the graph has at most ``35 * k``
vertices or when an iteration shrinks the graph by less than 10%
("fewer than 90% of the vertices could be coarsened"), and gamma = 1
spare bucket per vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PartitionConfig:
    """All tunables of the partitioners.

    Attributes:
        k: Number of partitions.
        epsilon: Imbalance ratio; max partition weight is
            ``(1 + epsilon) * total_weight / k``.
        group_size: Constrained-coarsening group size ``s`` (paper: 6).
        gamma: Spare buckets per vertex in the bucket list (paper: 1).
        coarsen_vertex_floor: Stop coarsening at ``floor * k`` vertices
            (paper: 35).
        min_coarsen_rate: Stop when an iteration keeps more than this
            fraction of vertices (paper: 0.9).
        match_iterations: Union-find grouping rounds per coarsening level.
        coarsening: ``"constrained"`` (Section IV) or ``"unionfind"``
            (plain G-kway, for ablation).
        refinement: ``"gkway"`` (independent-set boundary refinement,
            the default) or ``"jet"`` (Jet-style label propagation with
            afterburner; the paper's reference [2]).
        refine_passes: Boundary-refinement passes per uncoarsening level.
        fm_passes: FM (hill-climbing) refinement passes per level after
            the boundary passes; 0 disables FM.
        fm_max_vertices: FM only runs on levels with at most this many
            vertices (the sequential-host FM is the reproduction's
            quality booster, not a GPU kernel; bounding it keeps big
            baselines tractable).
        fm_max_moves: Cap on moves per FM pass.
        initial_tries: Independent initial-partitioning attempts; best
            cut wins.
        seed: Master seed for every stochastic choice.
        mode: ``"vector"`` (batched NumPy kernels) or ``"warp"``
            (lane-faithful warp simulation); results are identical.
        max_incremental_rounds: Safety cap on pseudo-partition drain
            rounds in Algorithm 4.
    """

    k: int = 2
    epsilon: float = 0.03
    group_size: int = 6
    gamma: int = 1
    coarsen_vertex_floor: int = 35
    min_coarsen_rate: float = 0.9
    match_iterations: int = 3
    coarsening: str = "constrained"
    refinement: str = "gkway"
    refine_passes: int = 4
    fm_passes: int = 2
    fm_max_vertices: int = 25_000
    fm_max_moves: int = 5_000
    initial_tries: int = 4
    seed: int = 0
    mode: str = "vector"
    max_incremental_rounds: int = 64

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if self.group_size < 2:
            raise ValueError("group_size must be at least 2")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.coarsening not in ("constrained", "unionfind"):
            raise ValueError(
                f"unknown coarsening strategy {self.coarsening!r}"
            )
        if self.refinement not in ("gkway", "jet"):
            raise ValueError(
                f"unknown refinement strategy {self.refinement!r}"
            )
        if self.mode not in ("vector", "warp"):
            raise ValueError(f"unknown execution mode {self.mode!r}")

    @property
    def coarsen_until(self) -> int:
        """Coarsening target size, ``35 * k`` by default."""
        return self.coarsen_vertex_floor * self.k

    def with_(self, **changes: object) -> "PartitionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
