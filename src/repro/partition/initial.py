"""Initial partitioning of the coarsest graph.

The multilevel scheme only ever partitions the coarsest graph directly
(a few hundred vertices at the paper's ``35 * k`` stop), so quality per
CPU-second matters more than asymptotics.  We use a portfolio:

* **BFS strips**: breadth-first-number the graph from a random seed and
  cut the BFS order into ``k`` contiguous chunks of equal weight — the
  classic "graph growing" heuristic, great on meshes and circuits.
* **random balanced**: shuffle vertices and deal them into the lightest
  partition — a diversity fallback for structureless graphs.

Each try is greedily improved by one refinement pass; the best cut wins.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.metrics import cut_size_csr, max_partition_weight
from repro.utils.seeding import make_rng


def bfs_order(csr: CSRGraph, start: int) -> np.ndarray:
    """BFS numbering covering every component (restarts at unvisited)."""
    n = csr.num_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    queue: deque[int] = deque()
    pivots = np.concatenate(
        ([start], np.delete(np.arange(n), start))
    )
    for pivot in pivots:
        if visited[pivot]:
            continue
        visited[pivot] = True
        queue.append(int(pivot))
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            for v in csr.neighbors(u):
                v = int(v)
                if not visited[v]:
                    visited[v] = True
                    queue.append(v)
    return order


def partition_by_order(
    csr: CSRGraph, order: np.ndarray, k: int
) -> np.ndarray:
    """Split an ordering into k contiguous chunks of ~equal weight."""
    weights = csr.vwgt[order]
    cum = np.cumsum(weights)
    total = int(cum[-1]) if cum.size else 0
    partition = np.empty(csr.num_vertices, dtype=np.int64)
    if total == 0:
        partition[:] = 0
        return partition
    # Each element lands in the chunk its weight *midpoint* falls into,
    # which splits heavy vertices fairly instead of off-by-one.
    midpoints = cum - weights / 2.0
    labels = np.minimum((midpoints * k / total).astype(np.int64), k - 1)
    partition[order] = labels
    return partition


def random_balanced_partition(
    csr: CSRGraph, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Deal shuffled vertices into the currently-lightest partition."""
    n = csr.num_vertices
    partition = np.empty(n, dtype=np.int64)
    weights = np.zeros(k, dtype=np.int64)
    for u in rng.permutation(n):
        label = int(np.argmin(weights))
        partition[u] = label
        weights[label] += csr.vwgt[u]
    return partition


def initial_partition(
    csr: CSRGraph,
    k: int,
    epsilon: float,
    tries: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Best-of-``tries`` initial partition of the coarsest graph."""
    from repro.partition.refine import refine_csr

    from repro.partition.recursive import recursive_bisection

    rng = make_rng(seed, "initial")
    n = csr.num_vertices
    best_partition: np.ndarray | None = None
    best_cut = None
    for attempt in range(max(1, tries)):
        style = attempt % 3
        if style == 2 and k > 2 and n >= k:
            candidate = recursive_bisection(
                csr, k, epsilon, seed=int(rng.integers(0, 1 << 30))
            )
        elif style == 0 or n < k:
            start = int(rng.integers(0, n))
            candidate = partition_by_order(csr, bfs_order(csr, start), k)
        else:
            candidate = random_balanced_partition(csr, k, rng)
        candidate = refine_csr(
            csr,
            candidate,
            k=k,
            epsilon=epsilon,
            passes=2,
            seed=int(rng.integers(0, 1 << 30)),
        )
        cut = cut_size_csr(csr, candidate)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_partition = candidate
    assert best_partition is not None
    return best_partition


def is_feasible_initial(
    csr: CSRGraph, partition: np.ndarray, k: int, epsilon: float
) -> bool:
    """Check the balance constraint for an initial partition."""
    weights = np.bincount(
        partition, weights=csr.vwgt, minlength=k
    ).astype(np.int64)
    return int(weights.max()) <= max_partition_weight(
        csr.total_vertex_weight(), k, epsilon
    )
