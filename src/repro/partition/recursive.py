"""Recursive bisection initial partitioning.

The multilevel literature's other standard way to seed a k-way
partition: split the graph in two, recurse on each side.  Included in
the initial-partitioning portfolio because direct k-way growing degrades
for large k on small coarsest graphs, while bisection trees stay sharp —
exactly the regime of the paper's Figure 7 sweep (k up to 32).

Non-power-of-two ``k`` is supported by splitting k into
``floor(k/2) / ceil(k/2)`` and sizing the two sides proportionally; each
bisection refines with per-side weight caps (the generalized
:func:`~repro.partition.refine.refine_pass`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.refine import refine_pass
from repro.utils.seeding import derive_seed, make_rng


def _bisect(
    csr: CSRGraph,
    k_left: int,
    k_right: int,
    epsilon: float,
    seed: int,
    refine_passes: int = 4,
) -> np.ndarray:
    """Split ``csr`` into two sides weighted ``k_left : k_right``.

    Returns a 0/1 label per vertex.  Seeding is BFS-order based (like
    the direct initial partitioner); refinement uses per-side caps.
    """
    from repro.partition.initial import bfs_order

    n = csr.num_vertices
    total = csr.total_vertex_weight()
    fraction = k_left / (k_left + k_right)
    rng = make_rng(seed, "bisect")
    order = bfs_order(csr, int(rng.integers(0, n)))
    cum = np.cumsum(csr.vwgt[order])
    midpoints = cum - csr.vwgt[order] / 2.0
    labels_sorted = (midpoints > fraction * total).astype(np.int64)
    partition = np.empty(n, dtype=np.int64)
    partition[order] = labels_sorted

    caps = np.array(
        [
            math.ceil((1.0 + epsilon) * total * fraction),
            math.ceil((1.0 + epsilon) * total * (1.0 - fraction)),
        ],
        dtype=np.int64,
    )
    part_weights = np.bincount(
        partition, weights=csr.vwgt, minlength=2
    ).astype(np.int64)
    for _pass in range(refine_passes):
        if refine_pass(csr, partition, part_weights, 2, caps) == 0:
            break
    return partition


def recursive_bisection(
    csr: CSRGraph,
    k: int,
    epsilon: float,
    seed: int = 0,
    refine_passes: int = 4,
) -> np.ndarray:
    """Partition ``csr`` into ``k`` parts by recursive bisection."""
    if k < 1:
        raise ValueError("k must be positive")
    partition = np.zeros(csr.num_vertices, dtype=np.int64)
    _recurse(
        csr,
        np.arange(csr.num_vertices, dtype=np.int64),
        k,
        0,
        epsilon,
        seed,
        refine_passes,
        partition,
    )
    return partition


def _recurse(
    csr: CSRGraph,
    vertices: np.ndarray,
    k: int,
    label_offset: int,
    epsilon: float,
    seed: int,
    refine_passes: int,
    out: np.ndarray,
) -> None:
    if k == 1 or vertices.size == 0:
        out[vertices] = label_offset
        return
    sub, mapping = csr.subgraph(vertices)
    k_left = k // 2
    k_right = k - k_left
    sides = _bisect(
        sub,
        k_left,
        k_right,
        epsilon,
        derive_seed(seed, "split", label_offset, k),
        refine_passes,
    )
    left = mapping[sides == 0]
    right = mapping[sides == 1]
    _recurse(
        csr, left, k_left, label_offset, epsilon, seed, refine_passes, out
    )
    _recurse(
        csr,
        right,
        k_right,
        label_offset + k_left,
        epsilon,
        seed,
        refine_passes,
        out,
    )
