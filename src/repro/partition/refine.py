"""Boundary refinement and rebalancing for full partitioning.

This is the reproduction of G-kway's independent-set-based refinement,
used during uncoarsening and by the G-kway† baseline.  Each pass:

1. computes, for every vertex, its edge-weight connectivity to every
   partition (one ``bincount`` over the arcs),
2. picks the best *feasible* target partition per vertex (respecting
   ``W_pmax``) and its gain,
3. selects an **independent set** of positive-gain candidates — a
   candidate moves only if its (gain, ID) key beats every candidate
   neighbor's key, which prevents the adjacent-move oscillation the
   paper discusses in Section V.C.2 — and
4. commits moves per target partition in gain order up to capacity.

``rebalance_csr`` restores the balance constraint after events that can
break it (projection of coarse partitions, graph modification in the
baseline) by shedding minimum-loss vertices from overweight partitions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.partition.metrics import max_partition_weight

_NEG_INF = np.float64(-np.inf)


def connectivity_matrix(
    csr: CSRGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """``W[v, p]`` = total edge weight from ``v`` into partition ``p``."""
    n = csr.num_vertices
    src = np.repeat(np.arange(n), csr.degrees())
    keys = src * np.int64(k) + partition[csr.adjncy]
    flat = np.bincount(
        keys, weights=csr.adjwgt, minlength=n * k
    )
    return flat.reshape(n, k)


def _segment_max(
    values: np.ndarray, xadj: np.ndarray, fill: float
) -> np.ndarray:
    """Per-vertex max of arc values; ``fill`` for degree-0 vertices."""
    n = xadj.shape[0] - 1
    out = np.full(n, fill, dtype=np.float64)
    if values.size == 0:
        return out
    starts = np.minimum(xadj[:-1], values.size - 1)
    reduced = np.maximum.reduceat(values, starts)
    nonempty = np.diff(xadj) > 0
    out[nonempty] = reduced[nonempty]
    return out


def refine_pass(
    csr: CSRGraph,
    partition: np.ndarray,
    part_weights: np.ndarray,
    k: int,
    w_pmax: "int | np.ndarray",
    allow_zero_gain_from: np.ndarray | None = None,
    conn: np.ndarray | None = None,
) -> int:
    """One independent-set refinement pass; mutates ``partition`` and
    ``part_weights`` in place and returns the number of moves applied.

    Args:
        w_pmax: Weight cap — a scalar, or an array of per-partition caps
            (recursive bisection splits with unequal side targets).
        allow_zero_gain_from: Optional boolean mask of source partitions
            from which zero-gain moves are allowed (used to drain
            overweight partitions).
        conn: Optional precomputed connectivity matrix (the warp path
            supplies its warp-computed gains here).
    """
    n = csr.num_vertices
    caps = np.broadcast_to(
        np.asarray(w_pmax, dtype=np.int64), (k,)
    )
    if conn is None:
        conn = connectivity_matrix(csr, partition, k).astype(np.float64)
    internal = conn[np.arange(n), partition]
    vwgt = csr.vwgt
    feasible = (part_weights[None, :] + vwgt[:, None]) <= caps[None, :]
    scores = np.where(feasible, conn, _NEG_INF)
    scores[np.arange(n), partition] = _NEG_INF
    best_target = np.argmax(scores, axis=1)
    best_conn = scores[np.arange(n), best_target]
    gain = best_conn - internal

    candidate = gain > 0
    if allow_zero_gain_from is not None:
        candidate |= (gain >= 0) & allow_zero_gain_from[partition]
    candidate &= np.isfinite(best_conn)
    if not np.any(candidate):
        return 0

    # Independent set by (gain, lower-ID-wins) priority.
    priority = gain * np.float64(n + 1) + (n - np.arange(n))
    arc_priority = np.where(
        candidate[csr.adjncy], priority[csr.adjncy], -np.inf
    )
    nbr_best = _segment_max(arc_priority, csr.xadj, -np.inf)
    winners = candidate & (priority > nbr_best)
    if not np.any(winners):
        return 0

    moved = 0
    winner_ids = np.flatnonzero(winners)
    targets = best_target[winner_ids]
    gains = gain[winner_ids]
    for p in range(k):
        into_p = winner_ids[targets == p]
        if into_p.size == 0:
            continue
        order = np.argsort(-gains[targets == p], kind="stable")
        into_p = into_p[order]
        cum = np.cumsum(vwgt[into_p])
        fits = int(np.searchsorted(cum, caps[p] - part_weights[p], "right"))
        into_p = into_p[:fits]
        if into_p.size == 0:
            continue
        sources = partition[into_p]
        np.subtract.at(part_weights, sources, vwgt[into_p])
        part_weights[p] += int(vwgt[into_p].sum())
        partition[into_p] = p
        moved += into_p.size
    return moved


def refine_csr(
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
    epsilon: float,
    passes: int = 4,
    seed: int = 0,
    ctx: GpuContext | None = None,
    mode: str = "vector",
) -> np.ndarray:
    """Run up to ``passes`` refinement passes; returns the partition.

    ``seed`` is accepted for API symmetry (the pass itself is
    deterministic; priorities are ID-based).  With ``mode="warp"`` and
    a context, the per-pass gains come from the lane-faithful warp
    kernel (bit-identical results, warp-level cost accounting).
    """
    partition = np.asarray(partition, dtype=np.int64).copy()
    part_weights = np.bincount(
        partition, weights=csr.vwgt, minlength=k
    ).astype(np.int64)
    w_pmax = max_partition_weight(csr.total_vertex_weight(), k, epsilon)
    for _pass in range(passes):
        conn = None
        if mode == "warp" and ctx is not None:
            from repro.partition.warp_kernels import (
                connectivity_matrix_warp,
            )

            conn = connectivity_matrix_warp(
                ctx, csr, partition, k
            ).astype(np.float64)
        elif ctx is not None:
            _charge_refine_pass(ctx, csr, k)
        moved = refine_pass(
            csr, partition, part_weights, k, w_pmax, conn=conn
        )
        if moved == 0:
            break
    return partition


def rebalance_csr(
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
    epsilon: float,
    max_rounds: int = 32,
    ctx: GpuContext | None = None,
) -> np.ndarray:
    """Restore the balance constraint with minimum-loss evictions.

    Repeatedly sheds the cheapest vertices (smallest connectivity loss)
    from every overweight partition into the lightest feasible target
    until ``W_p <= W_pmax`` everywhere or no progress is possible.
    """
    partition = np.asarray(partition, dtype=np.int64).copy()
    n = csr.num_vertices
    part_weights = np.bincount(
        partition, weights=csr.vwgt, minlength=k
    ).astype(np.int64)
    w_pmax = max_partition_weight(csr.total_vertex_weight(), k, epsilon)
    vwgt = csr.vwgt
    for _round in range(max_rounds):
        overweight = part_weights > w_pmax
        if not np.any(overweight):
            break
        if ctx is not None:
            _charge_refine_pass(ctx, csr, k)
        conn = connectivity_matrix(csr, partition, k).astype(np.float64)
        internal = conn[np.arange(n), partition]
        headroom = w_pmax - (part_weights[None, :] + vwgt[:, None])
        feasible = headroom >= 0
        scores = np.where(feasible, conn, _NEG_INF)
        scores[np.arange(n), partition] = _NEG_INF
        best_target = np.argmax(scores, axis=1)
        best_conn = scores[np.arange(n), best_target]
        loss = internal - best_conn  # smaller is better
        movable = overweight[partition] & np.isfinite(best_conn)
        if not np.any(movable):
            break
        moved_this_round = 0
        for p in np.flatnonzero(overweight):
            from_p = np.flatnonzero(movable & (partition == p))
            if from_p.size == 0:
                continue
            order = np.argsort(loss[from_p], kind="stable")
            from_p = from_p[order]
            excess = int(part_weights[p]) - w_pmax
            for u in from_p:
                if excess <= 0:
                    break
                target = int(best_target[u])
                if part_weights[target] + vwgt[u] > w_pmax:
                    continue
                part_weights[p] -= int(vwgt[u])
                part_weights[target] += int(vwgt[u])
                partition[u] = target
                excess -= int(vwgt[u])
                moved_this_round += 1
        if moved_this_round == 0:
            break
    return partition


def _charge_refine_pass(ctx: GpuContext, csr: CSRGraph, k: int) -> None:
    """One refinement pass: every warp serves 32 vertices.

    G-kway's gain computation reads each arc once and accumulates a
    per-partition connectivity histogram in shared memory, then argmaxes
    over the ``k`` bins — ``O(deg + k)`` per vertex, *not*
    ``O(deg * k)``.  (iG-kway's Algorithm 4, by contrast, rescans its
    buckets once per candidate partition, which is why *its* cost grows
    with k and the paper's Figure 7 speedup shrinks as k rises.)
    """
    arcs = csr.adjncy.size
    n_warps = math.ceil(max(csr.num_vertices, 1) / 32)
    arcs_per_warp = math.ceil(arcs / max(n_warps, 1))
    # CSR arc accesses are scattered (neighbor ID, its partition, the
    # gain-table update and the weight check land in different 128-byte
    # segments), so each arc costs ~4 transactions per pass.
    with ctx.ledger.kernel("refine-pass"):
        ctx.charge_wavefront(
            n_warps,
            instructions_per_warp=4 + 3 * arcs_per_warp + k,
            transactions_per_warp=1 + 4 * arcs_per_warp,
        )
