"""G-kway: multilevel full graph partitioning (Section IV).

The pipeline is the classic three-phase multilevel scheme the paper
builds on:

1. **Coarsening** — union-find grouping with either plain (G-kway) or
   constrained (iG-kway, Section IV) group formation, contracted level
   by level until ``35 * k`` vertices or the shrink-rate floor.
2. **Initial partitioning** — a small portfolio on the coarsest graph.
3. **Uncoarsening** — project each level's partition to the finer graph,
   rebalance if projection broke the constraint, then run
   independent-set boundary refinement.

``GKwayPartitioner`` is used twice in this repository: once by iG-kway
for the initial full partition, and once per incremental iteration by
the G-kway† baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.partition.coarsen import coarsen_to_size
from repro.partition.config import PartitionConfig
from repro.partition.fm import fm_refine
from repro.partition.initial import initial_partition
from repro.partition.metrics import (
    cut_size_csr,
    is_balanced,
    max_partition_weight,
)
from repro.partition.refine import rebalance_csr, refine_csr
from repro.utils.errors import PartitionError


@dataclass
class FullPartitionResult:
    """Outcome of one full (from-scratch) partitioning run.

    Attributes:
        partition: ``int64[n]`` labels in ``[0, k)``.
        cut: Weighted cut size.
        part_weights: ``int64[k]`` partition weights.
        num_levels: Coarsening levels used.
        coarsest_vertices: Vertex count of the coarsest graph.
        balanced: Whether the balance constraint is met.
    """

    partition: np.ndarray
    cut: int
    part_weights: np.ndarray
    num_levels: int
    coarsest_vertices: int
    balanced: bool


class GKwayPartitioner:
    """Multilevel k-way full graph partitioner.

    Args:
        config: All tunables (k, epsilon, coarsening strategy, ...).
        ctx: Optional simulated GPU; when given, every stage charges the
            context's cost ledger so the experiment harness can estimate
            device runtime.
    """

    def __init__(
        self, config: PartitionConfig, ctx: GpuContext | None = None
    ):
        self.config = config
        self.ctx = ctx

    def partition(
        self, csr: CSRGraph, seed: int | None = None
    ) -> FullPartitionResult:
        """Partition ``csr`` from scratch into ``config.k`` parts."""
        cfg = self.config
        if csr.num_vertices < cfg.k:
            raise PartitionError(
                f"cannot split {csr.num_vertices} vertices into {cfg.k} parts"
            )
        seed = cfg.seed if seed is None else seed

        levels = coarsen_to_size(
            csr,
            target_vertices=cfg.coarsen_until,
            min_coarsen_rate=cfg.min_coarsen_rate,
            strategy=cfg.coarsening,
            group_size=cfg.group_size,
            match_iterations=cfg.match_iterations,
            seed=seed,
            ctx=self.ctx,
            mode=cfg.mode,
        )
        coarsest = levels[-1].coarse if levels else csr
        part = initial_partition(
            coarsest,
            k=cfg.k,
            epsilon=cfg.epsilon,
            tries=cfg.initial_tries,
            seed=seed,
        )
        for level in reversed(levels):
            part = part[level.cmap]
            part = self._balance_and_refine(level.fine, part, seed)
        if not levels:
            part = self._balance_and_refine(csr, part, seed)

        part_weights = np.bincount(
            part, weights=csr.vwgt, minlength=cfg.k
        ).astype(np.int64)
        total = csr.total_vertex_weight()
        return FullPartitionResult(
            partition=part,
            cut=cut_size_csr(csr, part),
            part_weights=part_weights,
            num_levels=len(levels),
            coarsest_vertices=coarsest.num_vertices,
            balanced=is_balanced(part_weights, total, cfg.k, cfg.epsilon),
        )

    def _balance_and_refine(
        self, csr: CSRGraph, part: np.ndarray, seed: int
    ) -> np.ndarray:
        cfg = self.config
        w_pmax = max_partition_weight(
            csr.total_vertex_weight(), cfg.k, cfg.epsilon
        )
        part_weights = np.bincount(
            part, weights=csr.vwgt, minlength=cfg.k
        ).astype(np.int64)
        if int(part_weights.max()) > w_pmax:
            part = rebalance_csr(
                csr, part, cfg.k, cfg.epsilon, ctx=self.ctx
            )
        if cfg.refinement == "jet":
            from repro.partition.jet import jet_refine

            part = jet_refine(
                csr,
                part,
                k=cfg.k,
                epsilon=cfg.epsilon,
                passes=3 * cfg.refine_passes,
                ctx=self.ctx,
            )
        else:
            part = refine_csr(
                csr,
                part,
                k=cfg.k,
                epsilon=cfg.epsilon,
                passes=cfg.refine_passes,
                seed=seed,
                ctx=self.ctx,
                mode=cfg.mode,
            )
        if cfg.fm_passes > 0 and csr.num_vertices <= cfg.fm_max_vertices:
            part = fm_refine(
                csr,
                part,
                k=cfg.k,
                epsilon=cfg.epsilon,
                passes=cfg.fm_passes,
                ctx=self.ctx,
                max_moves=cfg.fm_max_moves,
            )
        return part
