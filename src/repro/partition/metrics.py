"""Partition quality metrics: cut size, balance, boundaries, gains.

Definitions follow Section II of the paper:

* cut size  = sum of ``W_e`` over edges whose endpoints are in different
  partitions,
* partition weight ``W_p`` = sum of vertex weights in ``p``,
* balance constraint ``W_p <= (1 + eps) * total / k``,
* ``adj_ext(v)`` / ``adj_int(v)`` = neighbors in another / the same
  partition.

These functions are host-side "ground truth" used for reporting and
testing; they never charge the GPU ledger.

Since the incremental cut accumulator (:mod:`repro.partition.cutacc`)
landed, the pool scans here are *sanitizer/cross-check* machinery, not
per-batch hot-path code: the ``pool-scan-outside-sanitizer`` lint rule
flags any new call site outside this module, :mod:`~repro.partition.cutcheck`
and the accumulator's one-time bootstrap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
)
from repro.graph.csr import CSRGraph


def max_partition_weight(total_weight: int, k: int, epsilon: float) -> int:
    """``W_pmax = (1 + eps) * total / k`` (Section II), rounded up."""
    return int(math.ceil((1.0 + epsilon) * total_weight / k))


def cut_size_csr(csr: CSRGraph, partition: np.ndarray) -> int:
    """Weighted cut of a CSR graph under ``partition``."""
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    crossing = partition[src] != partition[csr.adjncy]
    return int(csr.adjwgt[crossing].sum()) // 2


def cut_size_bucketlist(
    graph: BucketListGraph, partition: np.ndarray
) -> int:
    """Weighted cut of the active subgraph of a bucket-list graph.

    Scans the used slot pool contiguously against the cached
    ``slot_owner_array`` instead of re-gathering per-vertex slot ranges:
    deleted vertices have blanked slots and no inbound references, so
    masking EMPTY slots yields exactly the active subgraph's arcs.
    """
    used_slots = graph.num_buckets_used * SLOTS_PER_BUCKET
    if used_slots == 0:
        return 0
    dst = graph.bucket_list[:used_slots]
    filled = dst != EMPTY
    src = graph.slot_owner_array()[:used_slots][filled]
    dst = dst[filled]
    weights = graph.slot_wgt[:used_slots][filled]
    crossing = partition[src] != partition[dst]
    return int(weights[crossing].sum()) // 2


def arc_matrix_bucketlist(
    graph: BucketListGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """Directed-arc weight matrix over *extended* labels, by pool scan.

    Extended labels map the full label alphabet onto ``0 .. k+1``: real
    partitions keep their IDs, the pseudo-partition stays ``k``, and
    UNASSIGNED (-1) becomes ``k + 1``.  Entry ``(i, j)`` is the total
    weight of directed arcs from extended label ``i`` to ``j``; the
    matrix is symmetric (each undirected edge contributes both arcs) and
    its off-diagonal sum is twice the cut *between distinct labels* —
    with every label real, ``(total - trace) // 2`` equals
    :func:`cut_size_bucketlist` exactly.

    This is the scan the :class:`~repro.partition.cutacc.CutAccumulator`
    maintains incrementally; it bootstraps from this function and the
    sanitizer cross-check (:mod:`repro.partition.cutcheck`) asserts
    exact agreement against it.
    """
    ext_n = k + 2
    flat = np.zeros(ext_n * ext_n, dtype=np.int64)
    used_slots = graph.num_buckets_used * SLOTS_PER_BUCKET
    if used_slots == 0:
        return flat.reshape(ext_n, ext_n)
    dst = graph.bucket_list[:used_slots]
    filled = dst != EMPTY
    src = graph.slot_owner_array()[:used_slots][filled]
    dst = dst[filled]
    weights = graph.slot_wgt[:used_slots][filled]
    src_ext = np.where(partition[src] < 0, np.int64(k + 1), partition[src])
    dst_ext = np.where(partition[dst] < 0, np.int64(k + 1), partition[dst])
    # int64 scatter-add, not np.bincount(weights=...): bincount promotes
    # to float64, which would break bit-exact comparisons.
    np.add.at(flat, src_ext * ext_n + dst_ext, weights)
    return flat.reshape(ext_n, ext_n)


def cut_matrix_bucketlist(
    graph: BucketListGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """``k x k`` cut matrix of a bucket-list graph (pool scan).

    Same semantics as :func:`cut_matrix` on CSR: symmetric off-diagonal
    inter-partition weight, diagonal = internal edge weight.  Arcs
    touching the pseudo-partition or deleted vertices (extended labels
    ``k``/``k+1``) fall outside the real block and are dropped, matching
    the refined steady state where no such arcs exist.
    """
    ext = arc_matrix_bucketlist(graph, partition, k)
    matrix = ext[:k, :k].copy()
    np.fill_diagonal(matrix, np.diagonal(matrix) // 2)
    return matrix


def partition_weights(
    vwgt: np.ndarray, partition: np.ndarray, k: int
) -> np.ndarray:
    """``W_p`` for each partition; ignores vertices with partition < 0
    or >= k (deleted vertices and the pseudo-partition)."""
    valid = (partition >= 0) & (partition < k)
    return np.bincount(
        partition[valid], weights=vwgt[valid], minlength=k
    ).astype(np.int64)


def imbalance(part_weights: np.ndarray, total_weight: int, k: int) -> float:
    """Achieved imbalance: ``max(W_p) * k / total - 1``."""
    if total_weight == 0:
        return 0.0
    return float(part_weights.max()) * k / total_weight - 1.0


def is_balanced(
    part_weights: np.ndarray, total_weight: int, k: int, epsilon: float
) -> bool:
    """True iff every partition satisfies the balance constraint."""
    return int(part_weights.max()) <= max_partition_weight(
        total_weight, k, epsilon
    )


def boundary_vertices_csr(
    csr: CSRGraph, partition: np.ndarray
) -> np.ndarray:
    """Vertices with at least one external neighbor (``adj_ext != 0``)."""
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    crossing = partition[src] != partition[csr.adjncy]
    is_boundary = np.zeros(csr.num_vertices, dtype=bool)
    is_boundary[src[crossing]] = True
    return np.flatnonzero(is_boundary)


def cut_matrix(
    csr: CSRGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """``k x k`` matrix of inter-partition edge weight.

    Entry ``(i, j)`` with ``i != j`` is the total weight of edges between
    partitions ``i`` and ``j`` (the matrix is symmetric); the diagonal
    holds each partition's internal edge weight.  The upper-triangle sum
    equals :func:`cut_size_csr`.  CAD schedulers use this to weigh
    communication between the engines each partition is assigned to.
    """
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    keys = partition[src] * np.int64(k) + partition[csr.adjncy]
    flat = np.bincount(keys, weights=csr.adjwgt, minlength=k * k)
    matrix = flat.reshape(k, k).astype(np.int64)
    # Each undirected internal edge contributes both of its arcs to the
    # diagonal; off-diagonal entries see one arc per direction already.
    np.fill_diagonal(matrix, np.diagonal(matrix) // 2)
    return matrix


def boundary_sizes(
    csr: CSRGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """Number of boundary vertices per partition."""
    boundary = boundary_vertices_csr(csr, partition)
    return np.bincount(partition[boundary], minlength=k).astype(np.int64)


def external_internal_degrees(
    graph: BucketListGraph, partition: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(adj_ext, adj_int)`` counts for each vertex in ``vertices``.

    Matches the warp computation of Algorithm 3 lines 16-21: a neighbor
    counts as external iff its partition differs from the vertex's
    current partition.  Pseudo-partition and deleted markers compare like
    ordinary labels, exactly as ``partition[nbr]`` does on the GPU.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, zero
    slot_idx, owner = graph.slot_index_arrays(vertices)
    nbrs = graph.bucket_list[slot_idx]
    filled = nbrs != EMPTY
    owner = owner[filled]
    nbr_part = partition[nbrs[filled]]
    own_part = partition[vertices][owner]
    ext = np.bincount(
        owner[nbr_part != own_part], minlength=vertices.size
    ).astype(np.int64)
    internal = np.bincount(
        owner[nbr_part == own_part], minlength=vertices.size
    ).astype(np.int64)
    return ext, internal
