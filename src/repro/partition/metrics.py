"""Partition quality metrics: cut size, balance, boundaries, gains.

Definitions follow Section II of the paper:

* cut size  = sum of ``W_e`` over edges whose endpoints are in different
  partitions,
* partition weight ``W_p`` = sum of vertex weights in ``p``,
* balance constraint ``W_p <= (1 + eps) * total / k``,
* ``adj_ext(v)`` / ``adj_int(v)`` = neighbors in another / the same
  partition.

These functions are host-side "ground truth" used for reporting and
testing; they never charge the GPU ledger.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    BucketListGraph,
)
from repro.graph.csr import CSRGraph


def max_partition_weight(total_weight: int, k: int, epsilon: float) -> int:
    """``W_pmax = (1 + eps) * total / k`` (Section II), rounded up."""
    return int(math.ceil((1.0 + epsilon) * total_weight / k))


def cut_size_csr(csr: CSRGraph, partition: np.ndarray) -> int:
    """Weighted cut of a CSR graph under ``partition``."""
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    crossing = partition[src] != partition[csr.adjncy]
    return int(csr.adjwgt[crossing].sum()) // 2


def cut_size_bucketlist(
    graph: BucketListGraph, partition: np.ndarray
) -> int:
    """Weighted cut of the active subgraph of a bucket-list graph.

    Scans the used slot pool contiguously against the cached
    ``slot_owner_array`` instead of re-gathering per-vertex slot ranges:
    deleted vertices have blanked slots and no inbound references, so
    masking EMPTY slots yields exactly the active subgraph's arcs.
    """
    used_slots = graph.num_buckets_used * SLOTS_PER_BUCKET
    if used_slots == 0:
        return 0
    dst = graph.bucket_list[:used_slots]
    filled = dst != EMPTY
    src = graph.slot_owner_array()[:used_slots][filled]
    dst = dst[filled]
    weights = graph.slot_wgt[:used_slots][filled]
    crossing = partition[src] != partition[dst]
    return int(weights[crossing].sum()) // 2


def partition_weights(
    vwgt: np.ndarray, partition: np.ndarray, k: int
) -> np.ndarray:
    """``W_p`` for each partition; ignores vertices with partition < 0
    or >= k (deleted vertices and the pseudo-partition)."""
    valid = (partition >= 0) & (partition < k)
    return np.bincount(
        partition[valid], weights=vwgt[valid], minlength=k
    ).astype(np.int64)


def imbalance(part_weights: np.ndarray, total_weight: int, k: int) -> float:
    """Achieved imbalance: ``max(W_p) * k / total - 1``."""
    if total_weight == 0:
        return 0.0
    return float(part_weights.max()) * k / total_weight - 1.0


def is_balanced(
    part_weights: np.ndarray, total_weight: int, k: int, epsilon: float
) -> bool:
    """True iff every partition satisfies the balance constraint."""
    return int(part_weights.max()) <= max_partition_weight(
        total_weight, k, epsilon
    )


def boundary_vertices_csr(
    csr: CSRGraph, partition: np.ndarray
) -> np.ndarray:
    """Vertices with at least one external neighbor (``adj_ext != 0``)."""
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    crossing = partition[src] != partition[csr.adjncy]
    is_boundary = np.zeros(csr.num_vertices, dtype=bool)
    is_boundary[src[crossing]] = True
    return np.flatnonzero(is_boundary)


def cut_matrix(
    csr: CSRGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """``k x k`` matrix of inter-partition edge weight.

    Entry ``(i, j)`` with ``i != j`` is the total weight of edges between
    partitions ``i`` and ``j`` (the matrix is symmetric); the diagonal
    holds each partition's internal edge weight.  The upper-triangle sum
    equals :func:`cut_size_csr`.  CAD schedulers use this to weigh
    communication between the engines each partition is assigned to.
    """
    src = np.repeat(np.arange(csr.num_vertices), csr.degrees())
    keys = partition[src] * np.int64(k) + partition[csr.adjncy]
    flat = np.bincount(keys, weights=csr.adjwgt, minlength=k * k)
    matrix = flat.reshape(k, k).astype(np.int64)
    # Each undirected internal edge contributes both of its arcs to the
    # diagonal; off-diagonal entries see one arc per direction already.
    np.fill_diagonal(matrix, np.diagonal(matrix) // 2)
    return matrix


def boundary_sizes(
    csr: CSRGraph, partition: np.ndarray, k: int
) -> np.ndarray:
    """Number of boundary vertices per partition."""
    boundary = boundary_vertices_csr(csr, partition)
    return np.bincount(partition[boundary], minlength=k).astype(np.int64)


def external_internal_degrees(
    graph: BucketListGraph, partition: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(adj_ext, adj_int)`` counts for each vertex in ``vertices``.

    Matches the warp computation of Algorithm 3 lines 16-21: a neighbor
    counts as external iff its partition differs from the vertex's
    current partition.  Pseudo-partition and deleted markers compare like
    ordinary labels, exactly as ``partition[nbr]`` does on the GPU.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, zero
    slot_idx, owner = graph.slot_index_arrays(vertices)
    nbrs = graph.bucket_list[slot_idx]
    filled = nbrs != EMPTY
    owner = owner[filled]
    nbr_part = partition[nbrs[filled]]
    own_part = partition[vertices][owner]
    ext = np.bincount(
        owner[nbr_part != own_part], minlength=vertices.size
    ).astype(np.int64)
    internal = np.bincount(
        owner[nbr_part == own_part], minlength=vertices.size
    ).astype(np.int64)
    return ext, internal
