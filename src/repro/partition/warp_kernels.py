"""Warp-faithful kernels for the full-partitioning substrate.

The incremental kernels (Algorithms 1-4) have lane-level warp
implementations in :mod:`repro.core`; this module provides the same
treatment for the two data-dependent kernels of the G-kway FGP pipeline,
so that ``PartitionConfig(mode="warp")`` exercises warp semantics end to
end:

* :func:`select_neighbors_warp` — union-find matching's best-neighbor
  selection: one warp per vertex, lanes load 32 CSR arcs at a time,
  reduce the (weight, priority) key with a warp max-reduction, and the
  first lane holding the maximum wins (same tie-breaking as the
  vectorized :func:`~repro.partition.unionfind.select_neighbors`).
* :func:`connectivity_matrix_warp` — boundary refinement's gain input:
  one warp per vertex accumulating a per-partition connectivity
  histogram in "shared memory".

Both are differentially tested for bit-identical outputs against their
vectorized counterparts.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.context import FULL_MASK, WARP_SIZE, GpuContext
from repro.gpusim.kernel import launch_warps
from repro.gpusim.warp import Warp
from repro.graph.csr import CSRGraph

_NO_NEIGHBOR = np.int64(-1)


def select_neighbors_warp(
    ctx: GpuContext,
    csr: CSRGraph,
    priorities: np.ndarray,
    eligible: np.ndarray,
) -> np.ndarray:
    """Warp-faithful twin of ``unionfind.select_neighbors``.

    The composite key is ``weight * 2^20 + priority`` exactly as in the
    vectorized path; among equal keys the *first arc in CSR order* wins,
    which the warp reproduces by masking the ballot of key-equal lanes
    and taking the lowest arc index.
    """
    n = csr.num_vertices
    selected = np.full(n, _NO_NEIGHBOR, dtype=np.int64)
    key = csr.adjwgt.astype(np.int64) * np.int64(1 << 20) + priorities
    work = [int(u) for u in np.flatnonzero(eligible) if csr.degree(u) > 0]

    def body(warp: Warp, u: int) -> None:
        start = int(csr.xadj[u])
        end = int(csr.xadj[u + 1])
        best_key = None
        best_arc = None
        for chunk in range(start, end, WARP_SIZE):
            lanes = chunk + warp.lane_id
            valid = lanes < end
            safe = np.where(valid, lanes, start)
            lane_keys = warp.load(key, safe)
            lane_keys = np.where(valid, lane_keys, -1)
            chunk_best = warp.reduce_min_sync(FULL_MASK, -lane_keys)
            chunk_best = -int(chunk_best)
            # First lane holding the maximum key wins the chunk.
            hit = warp.ballot_sync(
                FULL_MASK, (lane_keys == chunk_best) & valid
            )
            first_lane = (hit & -hit).bit_length() - 1
            arc = chunk + first_lane
            if best_key is None or chunk_best > best_key:
                best_key = chunk_best
                best_arc = arc
        if best_arc is not None:
            selected[u] = csr.adjncy[best_arc]

    launch_warps(ctx, work, body, name="uf-match-select")
    return selected


def connectivity_matrix_warp(
    ctx: GpuContext,
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
) -> np.ndarray:
    """Warp-faithful twin of ``refine.connectivity_matrix``.

    Each warp owns one vertex and builds its ``k``-bin histogram of
    neighbor-partition edge weight in shared memory; lanes read 32 arcs
    per step and accumulate with (simulated) shared-memory atomics.
    """
    n = csr.num_vertices
    conn = np.zeros((n, k), dtype=np.float64)

    def body(warp: Warp, u: int) -> None:
        start = int(csr.xadj[u])
        end = int(csr.xadj[u + 1])
        histogram = np.zeros(k, dtype=np.int64)  # shared memory
        for chunk in range(start, end, WARP_SIZE):
            lanes = chunk + warp.lane_id
            valid = lanes < end
            safe = np.where(valid, lanes, start)
            nbrs = warp.load(csr.adjncy, safe)
            weights = warp.load(csr.adjwgt, safe)
            parts = warp.load(partition, nbrs)
            warp.charge(instructions=2)  # histogram atomics
            np.add.at(
                histogram, parts[valid], weights[valid]
            )
        conn[u] = histogram

    work = [int(u) for u in range(n) if csr.degree(u) > 0]
    launch_warps(ctx, work, body, name="refine-gains")
    return conn
