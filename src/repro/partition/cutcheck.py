"""Sanitizer cross-check: incremental cut vs. ground-truth pool scan.

The :class:`~repro.partition.cutacc.CutAccumulator` replaces the
per-batch pool scan with incremental folds; this module keeps the scan
alive as a *verifier*.  :func:`verify_cut` recomputes the extended-label
arc matrix from scratch and asserts the accumulator agrees **exactly**
(bit-identical int64 entries, not approximately) — any drift means a
missed or double-counted delta and raises immediately with a diff
summary.

Wired behind ``IGKway(verify_cut_scan=...)`` / ``REPRO_VERIFY_CUT=1``
and the property-test suite; it pays the full pool-scan cost per call,
so it is sanitizer-mode machinery, never hot-path.  Along with
:mod:`repro.partition.metrics`, this module is exempt from the
``pool-scan-outside-sanitizer`` lint rule.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bucketlist import BucketListGraph
from repro.partition.metrics import (
    arc_matrix_bucketlist,
    cut_size_bucketlist,
)
from repro.utils.errors import PartitionError


def verify_cut(graph: BucketListGraph, state) -> int:
    """Assert the accumulator's matrix matches a fresh pool scan.

    Args:
        graph: The live bucket-list graph.
        state: The :class:`~repro.partition.state.PartitionState` whose
            ``cut_acc`` to verify.  An absent or not-yet-bootstrapped
            accumulator verifies trivially (there is nothing maintained
            to drift).

    Returns:
        The verified cut size (from the scan, which by then equals the
        accumulator's answer).

    Raises:
        PartitionError: On any entry-level disagreement between the
            maintained matrix and the scan, or a cut-size mismatch.
    """
    scan_cut = cut_size_bucketlist(graph, state.partition)
    acc = getattr(state, "cut_acc", None)
    if acc is None or not acc.active:
        return scan_cut
    expected = arc_matrix_bucketlist(graph, state.partition, acc.k)
    maintained = acc.arc_matrix(state.partition)
    if not np.array_equal(maintained, expected):
        diff = maintained - expected
        bad = np.argwhere(diff != 0)
        sample = ", ".join(
            f"({int(i)},{int(j)}): maintained={int(maintained[i, j])} "
            f"scan={int(expected[i, j])}"
            for i, j in bad[:8]
        )
        raise PartitionError(
            "incremental cut matrix drifted from pool scan: "
            f"{bad.shape[0]} mismatching entries; first: {sample}"
        )
    acc_cut = acc.cut_size(state.partition)
    if acc_cut != scan_cut:
        raise PartitionError(
            f"incremental cut {acc_cut} != scan cut {scan_cut} "
            "(matrix agrees but reduction drifted)"
        )
    return scan_cut
