"""Jet-style refinement (Gilbert et al., SISC 2024 — the paper's [2]).

Jet is the other GPU refinement family the paper discusses: instead of
independent-set moves, it applies *all* promising moves simultaneously
and repairs the damage:

1. **Label propagation with negative-gain lookahead** — every boundary
   vertex picks its best destination; candidates are kept when their
   gain exceeds ``-filter_ratio *`` (their current internal
   connectivity), which lets hill-descending moves through.
2. **Afterburner** — each candidate re-evaluates its gain under the
   assumption that every *higher-priority* candidate (larger gain,
   ties by lower vertex ID) also moves; only moves that remain
   non-negative under that assumption are applied.  This is Jet's
   synchronization-free answer to the adjacent-moves problem the
   paper's Section V.C solves with independent sets.
3. **Rebalancing** — moves ignore the balance constraint; a separate
   pass sheds minimum-loss vertices from overweight partitions.
4. **Best-state rollback** — the best *balanced* partition seen across
   all iterations is returned, so the unconstrained exploration can
   never make the final answer worse.

Select it with ``PartitionConfig(refinement="jet")``; the ablation
study compares it with the default G-kway-style refinement.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.partition.metrics import (
    cut_size_csr,
    is_balanced,
    max_partition_weight,
)
from repro.partition.refine import connectivity_matrix, rebalance_csr

_NEG_INF = np.float64(-np.inf)


def jet_lp_pass(
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
    filter_ratio: float = 0.25,
) -> int:
    """One label-propagation + afterburner pass; mutates ``partition``.

    Returns the number of vertices moved.  Balance is intentionally NOT
    enforced here (Jet separates quality moves from balance repair).
    """
    n = csr.num_vertices
    conn = connectivity_matrix(csr, partition, k).astype(np.float64)
    internal = conn[np.arange(n), partition]
    scores = conn.copy()
    scores[np.arange(n), partition] = _NEG_INF
    dest = np.argmax(scores, axis=1)
    dest_conn = scores[np.arange(n), dest]
    gain = dest_conn - internal

    # Negative-gain lookahead filter.
    candidate = np.isfinite(dest_conn) & (
        gain > -filter_ratio * internal
    )
    # Interior vertices (no external connectivity) never move.
    candidate &= dest_conn > 0
    if not np.any(candidate):
        return 0

    # Afterburner: priority = (gain, lower ID wins); every arc assumes
    # its endpoint's *post-move* label when that endpoint outranks us.
    priority = gain * np.float64(n + 1) + (n - np.arange(n))
    degrees = csr.degrees()
    src = np.repeat(np.arange(n), degrees)
    dst = csr.adjncy
    outranked = candidate[dst] & (priority[dst] > priority[src])
    arc_label = np.where(outranked, dest[dst], partition[dst])
    weights = csr.adjwgt.astype(np.float64)
    to_dest = np.bincount(
        src, weights=weights * (arc_label == dest[src]), minlength=n
    )
    to_cur = np.bincount(
        src, weights=weights * (arc_label == partition[src]), minlength=n
    )
    post_gain = to_dest - to_cur
    movers = candidate & (post_gain > 0)
    moved = int(np.count_nonzero(movers))
    partition[movers] = dest[movers]
    return moved


def jet_refine(
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
    epsilon: float,
    passes: int = 12,
    filter_ratio: float = 0.25,
    patience: int = 3,
    ctx: GpuContext | None = None,
) -> np.ndarray:
    """Jet's driver loop: LP passes + rebalance, best-state rollback.

    Returns the best *balanced* partition observed; if the input was
    balanced the result is never worse than the input.
    """
    partition = np.asarray(partition, dtype=np.int64).copy()
    total = csr.total_vertex_weight()
    w_pmax = max_partition_weight(total, k, epsilon)

    def weights_of(part: np.ndarray) -> np.ndarray:
        return np.bincount(part, weights=csr.vwgt, minlength=k).astype(
            np.int64
        )

    if int(weights_of(partition).max()) > w_pmax:
        partition = rebalance_csr(csr, partition, k, epsilon, ctx=ctx)

    best = partition.copy()
    best_cut = (
        cut_size_csr(csr, best)
        if is_balanced(weights_of(best), total, k, epsilon)
        else None
    )
    stale = 0
    for _pass in range(passes):
        if ctx is not None:
            _charge_jet_pass(ctx, csr, k)
        balanced_now = int(weights_of(partition).max()) <= w_pmax
        if balanced_now:
            moved = jet_lp_pass(csr, partition, k, filter_ratio)
            if moved == 0:
                stale += 1
        else:
            partition = rebalance_csr(csr, partition, k, epsilon, ctx=ctx)
        if int(weights_of(partition).max()) <= w_pmax:
            cut = cut_size_csr(csr, partition)
            if best_cut is None or cut < best_cut:
                best_cut = cut
                best = partition.copy()
                stale = 0
        if stale >= patience:
            break
    if best_cut is None:
        # Never reached balance: force it once and accept the result.
        best = rebalance_csr(csr, partition, k, epsilon, ctx=ctx)
    return best


def _charge_jet_pass(ctx: GpuContext, csr: CSRGraph, k: int) -> None:
    """LP + afterburner: two sweeps over the arcs per pass."""
    arcs = csr.adjncy.size
    n_warps = math.ceil(max(csr.num_vertices, 1) / 32)
    arcs_per_warp = math.ceil(arcs / max(n_warps, 1))
    with ctx.ledger.kernel("jet-pass"):
        ctx.charge_wavefront(
            n_warps,
            instructions_per_warp=6 + 5 * arcs_per_warp + k,
            transactions_per_warp=2 + 6 * arcs_per_warp,
        )
