"""Fiduccia–Mattheyses-style k-way boundary refinement.

The independent-set pass in :mod:`repro.partition.refine` only ever
applies positive-gain moves, so it converges to a shallow local minimum.
G-kway's real refinement climbs out of such minima; we reproduce that
with a classic FM pass:

* every boundary vertex gets a candidate move to its best feasible
  partition, prioritized by gain,
* moves are applied greedily (each vertex moves at most once per pass),
  *including negative-gain moves*, while tracking the running cut,
* at the end, the move sequence is rolled back to its best prefix —
  hill-climbing with a safety net.

The implementation uses a lazy max-heap: entries are re-validated
against the live connectivity table when popped, which avoids the
textbook bucket-list gain structure while keeping the same behavior.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.gpusim.context import GpuContext
from repro.graph.csr import CSRGraph
from repro.partition.metrics import max_partition_weight
from repro.partition.refine import connectivity_matrix


def _best_move(
    conn_row: np.ndarray,
    current: int,
    vertex_weight: int,
    part_weights: np.ndarray,
    w_pmax: int,
) -> tuple[int, int] | None:
    """Best feasible (gain, target) for one vertex, or None."""
    k = conn_row.shape[0]
    best_gain = None
    best_target = None
    for p in range(k):
        if p == current:
            continue
        if part_weights[p] + vertex_weight > w_pmax:
            continue
        gain = int(conn_row[p] - conn_row[current])
        if (
            best_gain is None
            or gain > best_gain
            or (gain == best_gain and part_weights[p]
                < part_weights[best_target])
        ):
            best_gain = gain
            best_target = p
    if best_gain is None:
        return None
    return best_gain, best_target


def fm_pass(
    csr: CSRGraph,
    partition: np.ndarray,
    part_weights: np.ndarray,
    k: int,
    w_pmax: int,
    max_moves: int | None = None,
) -> int:
    """One FM pass with rollback; returns the realized cut *improvement*.

    Mutates ``partition`` and ``part_weights`` in place.  Every vertex
    moves at most once; the sequence of applied moves is rolled back to
    the prefix with the best cumulative gain, so the cut never gets
    worse.
    """
    n = csr.num_vertices
    conn = connectivity_matrix(csr, partition, k).astype(np.int64)
    vwgt = csr.vwgt
    if max_moves is None:
        max_moves = n

    heap: list[tuple[int, int, int, int]] = []
    for v in range(n):
        current = int(partition[v])
        internal = conn[v, current]
        external = int(conn[v].sum()) - internal
        if external == 0:
            continue  # not a boundary vertex
        move = _best_move(conn[v], current, int(vwgt[v]), part_weights,
                          w_pmax)
        if move is not None:
            gain, target = move
            heapq.heappush(heap, (-gain, v, target, gain))

    locked = np.zeros(n, dtype=bool)
    applied: list[tuple[int, int]] = []  # (vertex, source partition)
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0

    while heap and len(applied) < max_moves:
        _neg, v, target, stamped_gain = heapq.heappop(heap)
        if locked[v]:
            continue
        current = int(partition[v])
        move = _best_move(conn[v], current, int(vwgt[v]), part_weights,
                          w_pmax)
        if move is None:
            continue
        gain, live_target = move
        if gain != stamped_gain or live_target != target:
            # Stale entry: re-push with the fresh values.
            heapq.heappush(heap, (-gain, v, live_target, gain))
            continue
        # Apply the move.
        locked[v] = True
        partition[v] = target
        part_weights[current] -= int(vwgt[v])
        part_weights[target] += int(vwgt[v])
        applied.append((v, current))
        cumulative += gain
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(applied)
        # Update neighbor connectivity and refresh their heap entries.
        start, end = csr.xadj[v], csr.xadj[v + 1]
        for w, wgt in zip(csr.adjncy[start:end], csr.adjwgt[start:end]):
            w = int(w)
            conn[w, current] -= wgt
            conn[w, target] += wgt
            if not locked[w]:
                refreshed = _best_move(
                    conn[w], int(partition[w]), int(vwgt[w]),
                    part_weights, w_pmax,
                )
                if refreshed is not None:
                    heapq.heappush(
                        heap, (-refreshed[0], w, refreshed[1], refreshed[0])
                    )

    # Roll back past the best prefix.
    for v, source in reversed(applied[best_prefix:]):
        target = int(partition[v])
        partition[v] = source
        part_weights[target] -= int(vwgt[v])
        part_weights[source] += int(vwgt[v])
    return best_cumulative


def fm_refine(
    csr: CSRGraph,
    partition: np.ndarray,
    k: int,
    epsilon: float,
    passes: int = 2,
    ctx: GpuContext | None = None,
    max_moves: int | None = None,
) -> np.ndarray:
    """Run up to ``passes`` FM passes; returns the refined partition."""
    partition = np.asarray(partition, dtype=np.int64).copy()
    part_weights = np.bincount(
        partition, weights=csr.vwgt, minlength=k
    ).astype(np.int64)
    w_pmax = max_partition_weight(csr.total_vertex_weight(), k, epsilon)
    if max_moves is None:
        max_moves = csr.num_vertices
    for _pass in range(passes):
        if ctx is not None:
            _charge_fm_pass(ctx, csr, k)
        improvement = fm_pass(
            csr, partition, part_weights, k, w_pmax, max_moves=max_moves
        )
        if improvement == 0:
            break
    return partition


def _charge_fm_pass(ctx: GpuContext, csr: CSRGraph, k: int) -> None:
    """Charged like two boundary-refinement passes (gain maintenance)."""
    arcs = csr.adjncy.size
    n_warps = math.ceil(max(csr.num_vertices, 1) / 32)
    arcs_per_warp = math.ceil(arcs / max(n_warps, 1))
    with ctx.ledger.kernel("fm-pass"):
        ctx.charge_wavefront(
            n_warps,
            instructions_per_warp=8 + 6 * arcs_per_warp + 2 * k,
            transactions_per_warp=2 + 8 * arcs_per_warp,
        )
