"""Graph modifiers and a host-side reference graph.

Section II of the paper defines four modifiers: vertex insertion
(``M_u^+``), vertex deletion (``M_u^-``), edge insertion (``M_(u,v)^+``)
and edge deletion (``M_(u,v)^-``).  This module provides:

* typed modifier records and :class:`ModifierBatch` (one incremental
  iteration's worth of modifiers),
* :class:`HostGraph`, a plain dictionary-based dynamic graph that serves
  as the *reference semantics* for modifiers.  The bucket-list GPU
  structure is differentially tested against it, and the baseline
  G-kway† uses it as the CPU-side graph it rebuilds CSRs from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ModifierError


@dataclass(frozen=True)
class VertexInsert:
    """``M_u^+``: (re-)insert vertex ``u`` with weight ``weight``.

    The vertex starts with no incident edges; edges are added by
    subsequent :class:`EdgeInsert` modifiers, matching Algorithm 2.
    """

    u: int
    weight: int = 1


@dataclass(frozen=True)
class VertexDelete:
    """``M_u^-``: delete vertex ``u`` and all its incident edges."""

    u: int


@dataclass(frozen=True)
class EdgeInsert:
    """``M_(u,v)^+``: insert undirected edge ``(u, v)`` with ``weight``."""

    u: int
    v: int
    weight: int = 1


@dataclass(frozen=True)
class EdgeDelete:
    """``M_(u,v)^-``: delete undirected edge ``(u, v)``."""

    u: int
    v: int


Modifier = Union[VertexInsert, VertexDelete, EdgeInsert, EdgeDelete]


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def coalesce_modifiers(
    modifiers: Iterable[Modifier],
) -> Tuple[List[Modifier], Dict[str, int]]:
    """See :func:`coalesce_modifiers_indexed`; drops the index map."""
    out, _indices, stats = coalesce_modifiers_indexed(modifiers)
    return out, stats


def coalesce_modifiers_indexed(
    modifiers: Iterable[Modifier],
) -> Tuple[List[Modifier], List[int], Dict[str, int]]:
    """Collapse redundant pending work out of a modifier sequence.

    Three context-free rules, each preserving the net effect on *any*
    base graph the raw sequence applies cleanly to:

    * **cancellation** — a pending :class:`EdgeInsert` followed by an
      :class:`EdgeDelete` of the same edge removes both (the edge was
      absent before the insert and is absent after the delete);
    * **dedup** — an :class:`EdgeInsert` (or :class:`VertexInsert`)
      identical to one still pending is dropped, making idempotent
      double-submission from stream producers harmless;
    * **subsumption** — :class:`VertexDelete` removes every pending edge
      modifier incident to the vertex, since deleting the vertex drops
      all its edges anyway.

    Vertex insert/delete pairs are *never* cancelled: a
    :class:`VertexInsert` of a brand-new ID extends the vertex-ID space,
    which later modifiers may rely on.

    Returns ``(surviving_modifiers, surviving_indices, stats)`` where
    ``surviving_indices[i]`` is the position the ``i``-th survivor held
    in the input sequence (the stream layer maps these back to journal
    sequence numbers when isolating poison modifiers) and ``stats``
    counts ``input`` / ``output`` modifiers and per-rule drops
    (``cancelled`` counts both halves of each insert+delete pair).
    """
    mods = list(modifiers)
    live: Dict[int, Modifier] = {}
    # Per-edge stack of live op indices (in order), and per-vertex set of
    # edge keys with live ops, for O(1) subsumption.
    edge_ops: Dict[Tuple[int, int], List[int]] = {}
    touching: Dict[int, set] = {}
    # Last live vertex-status op per vertex (index into ``live``).
    vert_last: Dict[int, int] = {}
    stats = {
        "input": len(mods),
        "output": 0,
        "cancelled": 0,
        "deduplicated": 0,
        "subsumed": 0,
    }

    def push_edge_op(idx: int, mod: Modifier, key: Tuple[int, int]) -> None:
        live[idx] = mod
        edge_ops.setdefault(key, []).append(idx)
        touching.setdefault(key[0], set()).add(key)
        touching.setdefault(key[1], set()).add(key)

    for idx, mod in enumerate(mods):
        if isinstance(mod, EdgeInsert):
            key = _edge_key(mod.u, mod.v)
            stack = edge_ops.get(key)
            if stack:
                top = live[stack[-1]]
                if isinstance(top, EdgeInsert) and top.weight == mod.weight:
                    stats["deduplicated"] += 1
                    continue
            push_edge_op(idx, mod, key)
        elif isinstance(mod, EdgeDelete):
            key = _edge_key(mod.u, mod.v)
            stack = edge_ops.get(key)
            if stack and isinstance(live[stack[-1]], EdgeInsert):
                del live[stack.pop()]
                stats["cancelled"] += 2
                continue
            push_edge_op(idx, mod, key)
        elif isinstance(mod, VertexDelete):
            for key in touching.pop(mod.u, set()):
                for i in edge_ops.get(key, ()):
                    if i in live:
                        del live[i]
                        stats["subsumed"] += 1
                edge_ops[key] = []
                other = key[0] if key[1] == mod.u else key[1]
                if other in touching:
                    touching[other].discard(key)
            live[idx] = mod
            vert_last[mod.u] = idx
        elif isinstance(mod, VertexInsert):
            prev_idx = vert_last.get(mod.u)
            prev = live.get(prev_idx) if prev_idx is not None else None
            if (
                isinstance(prev, VertexInsert)
                and prev.weight == mod.weight
            ):
                stats["deduplicated"] += 1
                continue
            live[idx] = mod
            vert_last[mod.u] = idx
        else:
            raise ModifierError(f"unknown modifier {mod!r}")

    indices = sorted(live)
    out = [live[idx] for idx in indices]
    stats["output"] = len(out)
    return out, indices, stats


def validate_batch(modifiers: Iterable[Modifier]) -> None:
    """Reject intra-batch inconsistencies before they reach a kernel.

    Context-free checks (no base graph needed): an edge modifier may not
    reference a vertex deleted *earlier in the same batch* (without a
    re-insert in between) — previously such an ``EdgeInsert`` silently
    wrote a neighbor slot into the deleted vertex's blanked buckets,
    corrupting the bucket list.  Also rejected: self-loops, duplicate
    pending edge inserts / deletes of the same edge, and double
    insert/delete of the same vertex.

    Raises :class:`~repro.utils.errors.ModifierError` on the first
    violation.
    """
    # None = untouched this batch; True = (re-)inserted; False = deleted.
    vertex_state: Dict[int, bool] = {}
    # Last pending op kind per edge: True = insert, False = delete.
    edge_state: Dict[Tuple[int, int], bool] = {}

    def check_endpoint(w: int, mod: Modifier) -> None:
        if vertex_state.get(w) is False:
            raise ModifierError(
                f"{mod!r} references vertex {w} deleted earlier "
                "in the same batch"
            )

    for mod in modifiers:
        if isinstance(mod, (EdgeInsert, EdgeDelete)):
            if mod.u == mod.v:
                raise ModifierError(f"{mod!r} is a self-loop")
            check_endpoint(mod.u, mod)
            check_endpoint(mod.v, mod)
            key = _edge_key(mod.u, mod.v)
            inserting = isinstance(mod, EdgeInsert)
            if edge_state.get(key) is inserting:
                kind = "insert" if inserting else "delete"
                raise ModifierError(
                    f"duplicate pending edge {kind} for edge {key} "
                    "in the same batch"
                )
            edge_state[key] = inserting
        elif isinstance(mod, VertexInsert):
            if vertex_state.get(mod.u) is True:
                raise ModifierError(
                    f"vertex {mod.u} inserted twice in the same batch"
                )
            vertex_state[mod.u] = True
        elif isinstance(mod, VertexDelete):
            if vertex_state.get(mod.u) is False:
                raise ModifierError(
                    f"vertex {mod.u} deleted twice in the same batch"
                )
            vertex_state[mod.u] = False
            # The delete subsumes pending state of its incident edges.
            for key in [k for k in edge_state if mod.u in k]:
                del edge_state[key]
        else:
            raise ModifierError(f"unknown modifier {mod!r}")


@dataclass
class ModifierBatch:
    """The modifiers applied in one incremental iteration."""

    modifiers: List[Modifier] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.modifiers)

    def __iter__(self) -> Iterator[Modifier]:
        return iter(self.modifiers)

    def append(self, modifier: Modifier) -> None:
        self.modifiers.append(modifier)

    def counts(self) -> Dict[str, int]:
        """Histogram of modifier kinds, for reports."""
        out = {
            "vertex_insert": 0,
            "vertex_delete": 0,
            "edge_insert": 0,
            "edge_delete": 0,
        }
        for mod in self.modifiers:
            if isinstance(mod, VertexInsert):
                out["vertex_insert"] += 1
            elif isinstance(mod, VertexDelete):
                out["vertex_delete"] += 1
            elif isinstance(mod, EdgeInsert):
                out["edge_insert"] += 1
            else:
                out["edge_delete"] += 1
        return out

    def coalesce(self) -> "ModifierBatch":
        """Return a new batch with redundant pending work removed.

        See :func:`coalesce_modifiers` for the cancellation / dedup /
        subsumption rules.  For any batch whose raw application
        succeeds, applying the coalesced batch yields the identical
        graph.
        """
        survivors, _stats = coalesce_modifiers(self.modifiers)
        return ModifierBatch(survivors)

    def validate(self) -> None:
        """Reject intra-batch inconsistencies (:func:`validate_batch`)."""
        validate_batch(self.modifiers)


class HostGraph:
    """Reference dynamic undirected graph living in host (CPU) memory.

    Implements the modifier semantics of Section II exactly once so every
    other component (bucket list, baseline, tests) can be checked against
    it.  Deleted vertices keep their IDs (they may be re-inserted later,
    as in the paper's TAU-2015-style traces).
    """

    def __init__(
        self,
        num_vertices: int,
        vertex_weights: np.ndarray | None = None,
    ) -> None:
        self.adj: Dict[int, Dict[int, int]] = {
            u: {} for u in range(num_vertices)
        }
        self.active: Dict[int, bool] = {u: True for u in range(num_vertices)}
        if vertex_weights is None:
            self.vwgt: Dict[int, int] = {u: 1 for u in range(num_vertices)}
        else:
            self.vwgt = {
                u: int(vertex_weights[u]) for u in range(num_vertices)
            }

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_csr(cls, csr: CSRGraph) -> "HostGraph":
        graph = cls(csr.num_vertices, csr.vwgt)
        edges, weights = csr.edge_array()
        for (u, v), w in zip(edges, weights):
            graph.adj[int(u)][int(v)] = int(w)
            graph.adj[int(v)][int(u)] = int(w)
        return graph

    def copy(self) -> "HostGraph":
        out = HostGraph.__new__(HostGraph)
        out.adj = {u: dict(nbrs) for u, nbrs in self.adj.items()}
        out.active = dict(self.active)
        out.vwgt = dict(self.vwgt)
        return out

    # -- queries ------------------------------------------------------------------

    @property
    def num_vertex_slots(self) -> int:
        """Size of the vertex ID space (active and deleted)."""
        return len(self.adj)

    def num_active_vertices(self) -> int:
        return sum(1 for flag in self.active.values() if flag)

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adj.values()) // 2

    def is_active(self, u: int) -> bool:
        return self.active.get(u, False)

    def degree(self, u: int) -> int:
        return len(self.adj.get(u, {}))

    def neighbors(self, u: int) -> Dict[int, int]:
        return self.adj.get(u, {})

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adj.get(u, {})

    def active_vertices(self) -> List[int]:
        return [u for u, flag in self.active.items() if flag]

    def total_active_weight(self) -> int:
        return sum(self.vwgt[u] for u, flag in self.active.items() if flag)

    # -- modifier application -------------------------------------------------------

    def apply(self, modifier: Modifier) -> None:
        """Apply a single modifier, validating its preconditions."""
        if isinstance(modifier, VertexInsert):
            self._insert_vertex(modifier.u, modifier.weight)
        elif isinstance(modifier, VertexDelete):
            self._delete_vertex(modifier.u)
        elif isinstance(modifier, EdgeInsert):
            self._insert_edge(modifier.u, modifier.v, modifier.weight)
        elif isinstance(modifier, EdgeDelete):
            self._delete_edge(modifier.u, modifier.v)
        else:
            raise ModifierError(f"unknown modifier {modifier!r}")

    def apply_batch(self, batch: Iterable[Modifier]) -> None:
        for modifier in batch:
            self.apply(modifier)

    def _insert_vertex(self, u: int, weight: int) -> None:
        if self.active.get(u, False):
            raise ModifierError(f"vertex {u} already active")
        if u not in self.adj:
            # Brand-new ID: extend the ID space (IDs must be dense).
            if u != len(self.adj):
                raise ModifierError(
                    f"new vertex ID must be {len(self.adj)}, got {u}"
                )
            self.adj[u] = {}
        self.active[u] = True
        # repro-lint: allow[untracked-pool-write] host-side dict mirror, not the device pool
        self.vwgt[u] = weight
        self.adj[u].clear()

    def _delete_vertex(self, u: int) -> None:
        if not self.active.get(u, False):
            raise ModifierError(f"vertex {u} is not active")
        for v in list(self.adj[u]):
            del self.adj[v][u]
        self.adj[u].clear()
        self.active[u] = False

    def _insert_edge(self, u: int, v: int, weight: int) -> None:
        if u == v:
            raise ModifierError("self-loops are not allowed")
        if not self.active.get(u, False) or not self.active.get(v, False):
            raise ModifierError(f"edge ({u}, {v}) touches an inactive vertex")
        if v in self.adj[u]:
            raise ModifierError(f"edge ({u}, {v}) already exists")
        self.adj[u][v] = weight
        self.adj[v][u] = weight

    def _delete_edge(self, u: int, v: int) -> None:
        if v not in self.adj.get(u, {}):
            raise ModifierError(f"edge ({u}, {v}) does not exist")
        del self.adj[u][v]
        del self.adj[v][u]

    # -- export -------------------------------------------------------------------

    def to_csr(self) -> tuple[CSRGraph, np.ndarray]:
        """Compact the active subgraph into a CSR.

        Returns ``(csr, id_map)`` where ``id_map[i]`` is the original
        vertex ID of compacted vertex ``i``.  This mirrors what G-kway†
        must do on the CPU every iteration.
        """
        ids = self.active_vertices()
        id_map = np.array(ids, dtype=np.int64)
        remap = {u: i for i, u in enumerate(ids)}
        edges = []
        weights = []
        for u in ids:
            for v, w in self.adj[u].items():
                if u < v:
                    edges.append((remap[u], remap[v]))
                    weights.append(w)
        edges_arr = (
            np.array(edges, dtype=np.int64)
            if edges
            else np.empty((0, 2), dtype=np.int64)
        )
        weights_arr = np.array(weights, dtype=np.int64)
        vwgt = np.array([self.vwgt[u] for u in ids], dtype=np.int64)
        csr = CSRGraph.from_edges(len(ids), edges_arr, weights_arr, vwgt)
        return csr, id_map

    def rebuild_work(self) -> int:
        """Scalar CPU operations a CSR rebuild costs (|V| + 2|E| scans)."""
        return self.num_vertex_slots + 2 * self.num_edges()
