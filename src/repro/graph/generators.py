"""Synthetic benchmark graphs.

The paper evaluates on seven industrial circuit graphs produced by the
OpenTimer flow plus three DIMACS graphs (Table I).  Neither dataset ships
with this reproduction, so this module synthesizes graphs of the same
*structure class* and the same |E|/|V| ratio, scaled down to sizes a pure
Python warp simulator can partition (DESIGN.md, substitution table):

* **circuit graphs** (tv80, mem_ctrl, usb, vga_lcd, wb_dma, systemcase,
  des_perf): netlist-like — vertices laid out in a synthetic placement
  order, each cell wired to a bounded number of mostly-nearby earlier
  cells with a geometric tail of long wires.  This reproduces the strong
  locality and small balanced min-cuts of real circuits.
* **mesh graphs** (adaptive): 2-D grid, |E|/|V| ≈ 2.
* **forest-like graphs** (NLR, |E|/|V| ≈ 0.6 in Table I): each vertex
  links to at most one earlier vertex with probability = ratio.
* **co-authorship graphs** (coAuthorsCiteseer): community-clustered
  preferential attachment (Holme–Kim powerlaw cluster model).

Every generator takes an explicit seed and returns a
:class:`~repro.graph.csr.CSRGraph` with unit weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.seeding import make_rng


def _dedupe_edges(edges: np.ndarray) -> np.ndarray:
    """Canonicalize to (lo, hi), drop self-loops and duplicates."""
    if edges.size == 0:
        return edges.reshape(0, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    canonical = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return canonical


def circuit_graph(
    num_vertices: int,
    edge_ratio: float = 1.3,
    locality: float = 30.0,
    long_wire_fraction: float = 0.02,
    seed: int = 0,
) -> CSRGraph:
    """Netlist-like graph with placement locality.

    The generator builds a connected "placement backbone" (every vertex
    wired to a nearby earlier vertex, geometric backward distance with
    mean ``locality``) and then adds local extra nets until the edge
    count reaches ``round(num_vertices * edge_ratio)``.  A
    ``long_wire_fraction`` of the extra nets jump uniformly far away
    (global nets such as clocks and resets).  The result has the strong
    locality and small balanced min-cuts characteristic of circuit
    netlists.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if edge_ratio < 1.0:
        raise ValueError("circuit graphs need edge_ratio >= 1")
    rng = make_rng(seed, "circuit")
    n = num_vertices
    target_m = int(round(n * edge_ratio))

    # Backbone: vertex i -> a geometrically-nearby earlier vertex.
    dst = np.arange(1, n, dtype=np.int64)
    distance = rng.geometric(min(1.0, 1.0 / locality), size=n - 1).astype(
        np.int64
    )
    src = np.maximum(dst - distance, 0)
    backbone = np.stack([src, dst], axis=1)
    edges = _dedupe_edges(backbone)

    # Extra nets, oversampled then trimmed to hit target_m exactly.
    seen = set(map(tuple, edges))
    needed = target_m - edges.shape[0]
    extra_rows: list[np.ndarray] = []
    attempts = 0
    while needed > 0 and attempts < 8:
        attempts += 1
        batch = int(needed * 1.5) + 16
        cand_dst = rng.integers(1, n, size=batch)
        cand_dist = rng.geometric(
            min(1.0, 1.0 / locality), size=batch
        ).astype(np.int64)
        is_long = rng.random(batch) < long_wire_fraction
        uniform_src = (rng.random(batch) * cand_dst).astype(np.int64)
        cand_src = np.where(
            is_long, uniform_src, np.maximum(cand_dst - cand_dist, 0)
        )
        for u, v in zip(cand_src, cand_dst):
            if u == v:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key in seen:
                continue
            seen.add(key)
            extra_rows.append(np.array(key, dtype=np.int64))
            needed -= 1
            if needed == 0:
                break
    if extra_rows:
        edges = np.concatenate([edges, np.stack(extra_rows)])
    return CSRGraph.from_edges(num_vertices, edges)


def rent_circuit_graph(
    num_vertices: int,
    rent_exponent: float = 0.6,
    terminals_per_cell: float = 3.0,
    seed: int = 0,
) -> CSRGraph:
    """Hierarchical netlist following Rent's rule.

    Rent's rule, ``T = t * g^p``, is the empirical law relating the
    number of external terminals ``T`` of a circuit block to its gate
    count ``g`` (exponent ``p`` ~ 0.5-0.75 for real logic).  The
    generator recursively bipartitions the cell range and wires
    ``~t * (g/2)^p / 2`` cross-edges between the halves, producing the
    hierarchical cut structure real placers and partitioners see:
    bisection cuts grow like ``n^p``, sub-linearly in n.

    This is the most realistic of the circuit generators; the Table I
    suite uses the lighter locality generator for speed, but the two
    classify identically (`classify_structure` == "circuit-like").
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if not 0.0 < rent_exponent < 1.0:
        raise ValueError("rent_exponent must be in (0, 1)")
    rng = make_rng(seed, "rent")
    rows: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        key = (min(u, v), max(u, v))
        if key in seen:
            return
        seen.add(key)
        rows.append(key)

    def wire(lo: int, hi: int) -> None:
        size = hi - lo
        if size <= 2:
            if size == 2:
                add_edge(lo, lo + 1)
            return
        mid = lo + size // 2
        wire(lo, mid)
        wire(mid, hi)
        crossings = max(
            1,
            int(round(
                terminals_per_cell * (size / 2) ** rent_exponent / 2
            )),
        )
        for _ in range(crossings):
            u = int(rng.integers(lo, mid))
            v = int(rng.integers(mid, hi))
            add_edge(u, v)

    wire(0, num_vertices)
    edges = np.array(sorted(rows), dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, edges)


def mesh_graph_2d(num_vertices: int) -> CSRGraph:
    """2-D grid mesh with |E|/|V| approaching 2 (the `adaptive` class)."""
    side = max(2, int(round(math.sqrt(num_vertices))))
    rows = cols = side
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = np.concatenate([right, down])
    return CSRGraph.from_edges(n, edges)


def mesh_graph_3d(num_vertices: int) -> CSRGraph:
    """3-D grid mesh, |E|/|V| approaching 3 (finite-element class)."""
    side = max(2, int(round(num_vertices ** (1.0 / 3.0))))
    n = side ** 3
    idx = np.arange(n, dtype=np.int64).reshape(side, side, side)
    pairs = []
    pairs.append(
        np.stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()], axis=1)
    )
    pairs.append(
        np.stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()], axis=1)
    )
    pairs.append(
        np.stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()], axis=1)
    )
    return CSRGraph.from_edges(n, np.concatenate(pairs))


def triangulated_mesh_graph(num_vertices: int) -> CSRGraph:
    """2-D grid with one diagonal per cell (|E|/|V| ~ 3).

    The structure class of triangulated FEM meshes such as the DIMACS
    ``NLR`` graph (4.16M vertices / 24.97M edges; the paper's Table I
    lists 2.49M edges, which looks like a dropped digit — see
    EXPERIMENTS.md).
    """
    side = max(2, int(round(math.sqrt(num_vertices))))
    n = side * side
    idx = np.arange(n, dtype=np.int64).reshape(side, side)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    diag = np.stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()], axis=1)
    return CSRGraph.from_edges(n, np.concatenate([right, down, diag]))


def forest_graph(
    num_vertices: int, edge_ratio: float = 0.6, seed: int = 0
) -> CSRGraph:
    """Sparse forest-like graph (|E|/|V| < 1, the Table I `NLR` row).

    Each vertex ``i > 0`` attaches to one random earlier vertex with
    probability ``edge_ratio``, producing a forest whose tree sizes are
    power-law-ish — the structure class of sparse road/river networks.
    """
    if not 0.0 < edge_ratio < 1.0:
        raise ValueError("forest edge_ratio must be in (0, 1)")
    rng = make_rng(seed, "forest")
    dst = np.arange(1, num_vertices, dtype=np.int64)
    keep = rng.random(num_vertices - 1) < edge_ratio
    dst = dst[keep]
    src = (rng.random(dst.size) * dst).astype(np.int64)
    edges = _dedupe_edges(np.stack([src, dst], axis=1))
    return CSRGraph.from_edges(num_vertices, edges)


def community_graph(
    num_vertices: int, edges_per_vertex: int = 4, seed: int = 0
) -> CSRGraph:
    """Co-authorship-style clustered powerlaw graph (Holme–Kim model)."""
    import networkx as nx

    nxg = nx.powerlaw_cluster_graph(
        num_vertices, max(1, edges_per_vertex), 0.4, seed=seed & 0x7FFFFFFF
    )
    edges = np.array(nxg.edges(), dtype=np.int64).reshape(-1, 2)
    return CSRGraph.from_edges(num_vertices, _dedupe_edges(edges))


def random_graph(
    num_vertices: int, edge_ratio: float = 2.0, seed: int = 0
) -> CSRGraph:
    """Erdős–Rényi-style random graph (no locality; worst case for cuts)."""
    rng = make_rng(seed, "random")
    m = int(num_vertices * edge_ratio * 1.1)
    src = rng.integers(0, num_vertices, size=m)
    dst = rng.integers(0, num_vertices, size=m)
    edges = _dedupe_edges(np.stack([src, dst], axis=1))
    target = int(num_vertices * edge_ratio)
    if edges.shape[0] > target:
        pick = rng.choice(edges.shape[0], size=target, replace=False)
        edges = edges[np.sort(pick)]
    return CSRGraph.from_edges(num_vertices, edges)


# ---------------------------------------------------------------------------
# The Table I benchmark suite (scaled).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PaperRow:
    """The numbers the paper reports for one Table I row (k = 2)."""

    vertices: int
    edges: int
    mod_time_ig: float
    mod_time_gk: float
    part_time_ig: float
    part_time_gk: float
    speedup: float
    cut_ig: int
    cut_gk: int
    cut_improvement: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark graph: its generator and the paper's reference row."""

    name: str
    kind: str
    num_vertices: int
    generator: Callable[[int, int], CSRGraph]
    paper: PaperRow

    def build(self, seed: int = 0) -> CSRGraph:
        return self.generator(self.num_vertices, seed)


def _scale(paper_vertices: int, divisor: int = 400, floor: int = 2000) -> int:
    return max(floor, paper_vertices // divisor)


def _circuit(ratio: float) -> Callable[[int, int], CSRGraph]:
    def build(n: int, seed: int) -> CSRGraph:
        return circuit_graph(n, edge_ratio=ratio, seed=seed)

    return build


def _mesh(n: int, seed: int) -> CSRGraph:
    return mesh_graph_2d(n)


def _triangulated(n: int, seed: int) -> CSRGraph:
    return triangulated_mesh_graph(n)


def _coauthor(n: int, seed: int) -> CSRGraph:
    return community_graph(n, edges_per_vertex=4, seed=seed)


#: All ten Table I graphs, scaled by ~1/400 (floor 2000 vertices), with
#: the paper's reported numbers attached for EXPERIMENTS.md comparisons.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "tv80": BenchmarkSpec(
        "tv80", "circuit", _scale(3_901_702), _circuit(1.36),
        PaperRow(3_901_702, 5_298_851, 0.02, 0.36, 0.18, 14.88, 82.67,
                 4_721, 4_774, 1.01),
    ),
    "mem_ctrl": BenchmarkSpec(
        "mem_ctrl", "circuit", _scale(32_445_075), _circuit(1.32),
        PaperRow(32_445_075, 42_670_885, 0.11, 3.37, 0.58, 46.07, 79.43,
                 5_945, 5_659, 0.95),
    ),
    "usb": BenchmarkSpec(
        "usb", "circuit", _scale(139_479), _circuit(1.29),
        PaperRow(139_479, 180_510, 0.01, 0.01, 0.12, 10.16, 84.67,
                 5_798, 5_701, 0.98),
    ),
    "vga_lcd": BenchmarkSpec(
        "vga_lcd", "circuit", _scale(1_869_688), _circuit(12.5),
        PaperRow(1_869_688, 23_447_678, 0.07, 2.13, 0.38, 31.27, 82.29,
                 502, 496, 0.99),
    ),
    "wb_dma": BenchmarkSpec(
        "wb_dma", "circuit", _scale(9_646_140), _circuit(1.27),
        PaperRow(9_646_140, 12_208_324, 0.04, 1.04, 0.26, 20.75, 79.81,
                 5_483, 5_489, 1.00),
    ),
    "systemcase": BenchmarkSpec(
        "systemcase", "circuit", _scale(10_897_616), _circuit(1.32),
        PaperRow(10_897_616, 14_386_851, 0.04, 1.10, 0.28, 22.61, 80.75,
                 4_670, 4_699, 1.00),
    ),
    "des_perf": BenchmarkSpec(
        "des_perf", "circuit", _scale(303_690), _circuit(1.28),
        PaperRow(303_690, 387_292, 0.01, 0.03, 0.13, 10.98, 84.46,
                 5_097, 5_150, 1.01),
    ),
    "coAuthorsCiteseer": BenchmarkSpec(
        "coAuthorsCiteseer", "coauthor", _scale(227_320), _coauthor,
        PaperRow(227_320, 814_134, 0.01, 0.03, 0.13, 11.20, 86.15,
                 25_853, 25_537, 0.99),
    ),
    "adaptive": BenchmarkSpec(
        "adaptive", "mesh", _scale(6_815_744), _mesh,
        PaperRow(6_815_744, 13_624_320, 0.03, 0.97, 0.51, 50.12, 98.27,
                 1_809, 2_029, 1.12),
    ),
    "NLR": BenchmarkSpec(
        "NLR", "triangulated-mesh", _scale(4_163_763), _triangulated,
        PaperRow(4_163_763, 2_487_976, 0.02, 1.02, 0.25, 21.64, 86.56,
                 4_611, 4_600, 1.00),
    ),
}


def make_benchmark_graph(name: str, seed: int = 0) -> CSRGraph:
    """Build one of the ten Table I graphs (scaled) by name."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return spec.build(seed)
