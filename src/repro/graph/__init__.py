"""Graph substrates: CSR, bucket-list, modifiers, generators, I/O."""

from repro.graph.analysis import (
    classify_structure,
    connected_components,
    degree_statistics,
    graph_summary,
)
from repro.graph.bucketlist import (
    EMPTY,
    SLOTS_PER_BUCKET,
    STATUS_ACTIVE,
    STATUS_DELETED,
    BucketListGraph,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    BENCHMARKS,
    BenchmarkSpec,
    circuit_graph,
    community_graph,
    forest_graph,
    make_benchmark_graph,
    mesh_graph_2d,
    mesh_graph_3d,
    random_graph,
    rent_circuit_graph,
    triangulated_mesh_graph,
)
from repro.graph.io import (
    read_edge_list,
    read_metis,
    write_edge_list,
    write_metis,
)
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    Modifier,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
)

__all__ = [
    "CSRGraph",
    "BucketListGraph",
    "EMPTY",
    "SLOTS_PER_BUCKET",
    "STATUS_ACTIVE",
    "STATUS_DELETED",
    "HostGraph",
    "Modifier",
    "ModifierBatch",
    "VertexInsert",
    "VertexDelete",
    "EdgeInsert",
    "EdgeDelete",
    "circuit_graph",
    "mesh_graph_2d",
    "mesh_graph_3d",
    "triangulated_mesh_graph",
    "rent_circuit_graph",
    "forest_graph",
    "community_graph",
    "random_graph",
    "make_benchmark_graph",
    "BENCHMARKS",
    "BenchmarkSpec",
    "read_metis",
    "write_metis",
    "graph_summary",
    "classify_structure",
    "degree_statistics",
    "connected_components",
    "read_edge_list",
    "write_edge_list",
]
