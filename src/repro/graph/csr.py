"""Static CSR graph — the representation used by G-kway and G-kway†.

The compressed-sparse-row layout stores, for an undirected graph with
``n`` vertices and ``m`` edges, an adjacency-pointer array ``xadj`` of
length ``n + 1`` and an adjacency list ``adjncy`` of length ``2m`` (each
undirected edge appears in both endpoints' lists), plus aligned edge
weights ``adjwgt`` and vertex weights ``vwgt``.

This structure is exactly what the paper criticizes for incrementality:
inserting one edge requires shifting the tail of ``adjncy`` and patching
every later pointer, so the baseline G-kway† rebuilds the whole CSR on
the CPU and re-uploads it each iteration (see
:mod:`repro.core.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.utils.errors import GraphConsistencyError


@dataclass
class CSRGraph:
    """Immutable-by-convention CSR representation of an undirected graph.

    Attributes:
        xadj: ``int64[n + 1]`` adjacency pointers.
        adjncy: ``int64[2m]`` concatenated neighbor lists.
        adjwgt: ``int64[2m]`` edge weights aligned with ``adjncy``.
        vwgt: ``int64[n]`` vertex weights.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        edge_weights: np.ndarray | None = None,
        vertex_weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a CSR from an ``(m, 2)`` array of undirected edges.

        Self-loops and duplicate edges are rejected; each undirected edge
        should appear exactly once in ``edges`` (either orientation).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        m = edges.shape[0]
        if edge_weights is None:
            edge_weights = np.ones(m, dtype=np.int64)
        else:
            edge_weights = np.asarray(edge_weights, dtype=np.int64)
            if edge_weights.shape[0] != m:
                raise ValueError("edge_weights length must match edges")
        if vertex_weights is None:
            vertex_weights = np.ones(num_vertices, dtype=np.int64)
        else:
            vertex_weights = np.asarray(vertex_weights, dtype=np.int64)
            if vertex_weights.shape[0] != num_vertices:
                raise ValueError("vertex_weights length must be num_vertices")
        if m and (edges.min() < 0 or edges.max() >= num_vertices):
            raise GraphConsistencyError("edge endpoint out of range")
        if m and np.any(edges[:, 0] == edges[:, 1]):
            raise GraphConsistencyError("self-loops are not allowed")

        # Duplicate detection on canonicalized endpoints.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * np.int64(num_vertices) + hi
        if m and np.unique(keys).size != m:
            raise GraphConsistencyError("duplicate undirected edges")

        # Symmetrize: every edge contributes two directed arcs.
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        wgt = np.concatenate([edge_weights, edge_weights])
        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        degrees = np.bincount(src, minlength=num_vertices)
        xadj = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=xadj[1:])
        return cls(xadj=xadj, adjncy=dst, adjwgt=wgt, vwgt=vertex_weights)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: dict,
        num_vertices: int | None = None,
        vertex_weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build from ``{u: {v: weight}}`` (both directions optional)."""
        seen: dict[tuple[int, int], int] = {}
        max_v = -1
        for u, nbrs in adjacency.items():
            max_v = max(max_v, u)
            for v, w in nbrs.items():
                max_v = max(max_v, v)
                key = (min(u, v), max(u, v))
                if key in seen and seen[key] != w:
                    raise GraphConsistencyError(
                        f"conflicting weights for edge {key}"
                    )
                seen[key] = w
        n = num_vertices if num_vertices is not None else max_v + 1
        if seen:
            edges = np.array(sorted(seen), dtype=np.int64)
            weights = np.array([seen[tuple(e)] for e in edges], dtype=np.int64)
        else:
            edges = np.empty((0, 2), dtype=np.int64)
            weights = np.empty(0, dtype=np.int64)
        return cls.from_edges(n, edges, weights, vertex_weights)

    @classmethod
    def from_networkx(cls, nxg: "Any") -> "CSRGraph":
        """Build from a ``networkx.Graph``.

        Node labels must be integers 0..n-1 (relabel with
        ``networkx.convert_node_labels_to_integers`` first).  Edge
        attribute ``weight`` and node attribute ``weight`` are honored
        when present (default 1).
        """
        import numpy as np

        n = nxg.number_of_nodes()
        if sorted(nxg.nodes()) != list(range(n)):
            raise GraphConsistencyError(
                "node labels must be 0..n-1; use "
                "networkx.convert_node_labels_to_integers"
            )
        rows = []
        weights = []
        for u, v, data in nxg.edges(data=True):
            rows.append((u, v))
            weights.append(int(data.get("weight", 1)))
        edges = (
            np.array(rows, dtype=np.int64)
            if rows
            else np.empty((0, 2), dtype=np.int64)
        )
        vwgt = np.array(
            [int(nxg.nodes[u].get("weight", 1)) for u in range(n)],
            dtype=np.int64,
        )
        return cls.from_edges(
            n, edges, np.array(weights, dtype=np.int64), vwgt
        )

    def to_networkx(self) -> "Any":
        """Export as a ``networkx.Graph`` with weight attributes."""
        import networkx as nx

        nxg = nx.Graph()
        for u in range(self.num_vertices):
            nxg.add_node(u, weight=int(self.vwgt[u]))
        edges, weights = self.edge_array()
        for (u, v), w in zip(edges, weights):
            nxg.add_edge(int(u), int(v), weight=int(w))
        return nxg

    # -- basic queries ---------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.xadj.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.adjncy.shape[0] // 2

    def degree(self, u: int) -> int:
        return int(self.xadj[u + 1] - self.xadj[u])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    def neighbors(self, u: int) -> np.ndarray:
        return self.adjncy[self.xadj[u] : self.xadj[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        return self.adjwgt[self.xadj[u] : self.xadj[u + 1]]

    def total_vertex_weight(self) -> int:
        return int(self.vwgt.sum())

    def total_edge_weight(self) -> int:
        return int(self.adjwgt.sum()) // 2

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(edges, weights)`` with each undirected edge once."""
        src = np.repeat(np.arange(self.num_vertices), self.degrees())
        mask = src < self.adjncy
        edges = np.stack([src[mask], self.adjncy[mask]], axis=1)
        return edges, self.adjwgt[mask]

    def subgraph(
        self, vertices: np.ndarray
    ) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, vertices)`` where sub-vertex ``i`` corresponds to
        ``vertices[i]``.  Edges with one endpoint outside the set are
        dropped (their weight is the cut the caller is accounting for).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        inverse = np.full(self.num_vertices, -1, dtype=np.int64)
        inverse[vertices] = np.arange(vertices.size)
        src = np.repeat(np.arange(self.num_vertices), self.degrees())
        keep = (inverse[src] >= 0) & (inverse[self.adjncy] >= 0)
        sub_src = inverse[src[keep]]
        sub_dst = inverse[self.adjncy[keep]]
        wgt = self.adjwgt[keep]
        upper = sub_src < sub_dst
        edges = np.stack([sub_src[upper], sub_dst[upper]], axis=1)
        sub = CSRGraph.from_edges(
            vertices.size, edges, wgt[upper], self.vwgt[vertices]
        )
        return sub, vertices

    def nbytes(self) -> int:
        """Device-memory footprint, used to charge H2D transfers."""
        return (
            self.xadj.nbytes
            + self.adjncy.nbytes
            + self.adjwgt.nbytes
            + self.vwgt.nbytes
        )

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises GraphConsistencyError."""
        n = self.num_vertices
        if self.xadj[0] != 0 or self.xadj[-1] != self.adjncy.shape[0]:
            raise GraphConsistencyError("xadj endpoints are wrong")
        if np.any(np.diff(self.xadj) < 0):
            raise GraphConsistencyError("xadj must be non-decreasing")
        if self.adjncy.size and (
            self.adjncy.min() < 0 or self.adjncy.max() >= n
        ):
            raise GraphConsistencyError("adjacency index out of range")
        if self.adjwgt.shape != self.adjncy.shape:
            raise GraphConsistencyError("adjwgt misaligned with adjncy")
        if self.vwgt.shape[0] != n:
            raise GraphConsistencyError("vwgt length mismatch")
        src = np.repeat(np.arange(n), self.degrees())
        if np.any(src == self.adjncy):
            raise GraphConsistencyError("self-loop present")
        # Symmetry with matching weights: (u, v, w) multiset equals (v, u, w).
        fwd = np.lexsort((self.adjwgt, self.adjncy, src))
        rev = np.lexsort((self.adjwgt, src, self.adjncy))
        sym = (
            np.array_equal(src[fwd], self.adjncy[rev])
            and np.array_equal(self.adjncy[fwd], src[rev])
            and np.array_equal(self.adjwgt[fwd], self.adjwgt[rev])
        )
        if not sym:
            raise GraphConsistencyError("adjacency is not symmetric")
