"""Graph file I/O: METIS ``.graph`` and plain edge-list formats.

The METIS format is the lingua franca of the partitioning literature (and
what the DIMACS challenge graphs ship as), so supporting it lets users
run this partitioner on the paper's original inputs when they have them.

METIS format recap: the header line is ``n m [fmt [ncon]]`` where ``fmt``
is a 3-digit flag string (001 = edge weights, 010 = vertex weights,
011 = both).  Line ``i`` (1-based) lists vertex ``i``'s neighbors as
1-based IDs, each optionally followed by the edge weight.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphConsistencyError


def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` in METIS format with vertex and edge weights."""
    path = Path(path)
    n = graph.num_vertices
    lines = [f"{n} {graph.num_edges} 011"]
    for u in range(n):
        parts = [str(int(graph.vwgt[u]))]
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            parts.append(str(int(v) + 1))
            parts.append(str(int(w)))
        lines.append(" ".join(parts))
    path.write_text("\n".join(lines) + "\n")


def read_metis(path: str | Path) -> CSRGraph:
    """Read a METIS ``.graph`` file (supports fmt 000/001/010/011)."""
    path = Path(path)
    with path.open() as handle:
        header = None
        body: list[list[int]] = []
        for raw in handle:
            line = raw.split("%", 1)[0].strip()
            if not line:
                if header is None:
                    continue
                body.append([])
                continue
            tokens = [int(tok) for tok in line.split()]
            if header is None:
                header = tokens
            else:
                body.append(tokens)
    if header is None:
        raise GraphConsistencyError(f"{path}: empty METIS file")
    n, m = header[0], header[1]
    fmt = f"{header[2]:03d}" if len(header) > 2 else "000"
    has_vwgt = fmt[1] == "1"
    has_ewgt = fmt[2] == "1"
    if len(body) < n:
        raise GraphConsistencyError(
            f"{path}: expected {n} vertex lines, found {len(body)}"
        )
    vwgt = np.ones(n, dtype=np.int64)
    edges: dict[tuple[int, int], int] = {}
    for u in range(n):
        tokens = body[u]
        pos = 0
        if has_vwgt:
            if not tokens:
                raise GraphConsistencyError(
                    f"{path}: vertex {u} missing weight"
                )
            vwgt[u] = tokens[0]
            pos = 1
        step = 2 if has_ewgt else 1
        while pos < len(tokens):
            v = tokens[pos] - 1
            w = tokens[pos + 1] if has_ewgt else 1
            if not 0 <= v < n:
                raise GraphConsistencyError(
                    f"{path}: vertex {u} lists out-of-range neighbor {v}"
                )
            key = (min(u, v), max(u, v))
            if key in edges and edges[key] != w:
                raise GraphConsistencyError(
                    f"{path}: conflicting weights on edge {key}"
                )
            edges[key] = w
            pos += step
    if len(edges) != m:
        raise GraphConsistencyError(
            f"{path}: header says {m} edges, body has {len(edges)}"
        )
    if edges:
        edge_arr = np.array(sorted(edges), dtype=np.int64)
        wgt_arr = np.array(
            [edges[tuple(e)] for e in edge_arr], dtype=np.int64
        )
    else:
        edge_arr = np.empty((0, 2), dtype=np.int64)
        wgt_arr = np.empty(0, dtype=np.int64)
    return CSRGraph.from_edges(n, edge_arr, wgt_arr, vwgt)


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``u v w`` lines, one per undirected edge, 0-based IDs."""
    path = Path(path)
    edges, weights = graph.edge_array()
    lines = [f"{graph.num_vertices}"]
    for (u, v), w in zip(edges, weights):
        lines.append(f"{int(u)} {int(v)} {int(w)}")
    path.write_text("\n".join(lines) + "\n")


def read_edge_list(path: str | Path) -> CSRGraph:
    """Read the edge-list format written by :func:`write_edge_list`."""
    path = Path(path)
    lines = [
        ln.strip() for ln in path.read_text().splitlines() if ln.strip()
    ]
    if not lines:
        raise GraphConsistencyError(f"{path}: empty edge-list file")
    n = int(lines[0])
    rows = []
    weights = []
    for line in lines[1:]:
        parts = line.split()
        rows.append((int(parts[0]), int(parts[1])))
        weights.append(int(parts[2]) if len(parts) > 2 else 1)
    edges = (
        np.array(rows, dtype=np.int64)
        if rows
        else np.empty((0, 2), dtype=np.int64)
    )
    return CSRGraph.from_edges(n, edges, np.array(weights, dtype=np.int64))
