"""Graph structure analysis.

Used by the experiment reports to verify that the synthetic benchmark
graphs reproduce the *structure class* of the paper's inputs (DESIGN.md
substitution table): circuit netlists are sparse, low-variance, highly
local; meshes are regular with bounded degree; co-authorship graphs are
heavy-tailed and clustered; NLR-like triangulations sit in between.

Everything here is host-side analysis — no GPU cost is charged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.seeding import make_rng


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of the degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    std: float

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean — low for meshes/circuits, high for social graphs."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean


def degree_statistics(csr: CSRGraph) -> DegreeStats:
    """Degree distribution summary of ``csr``."""
    degrees = csr.degrees()
    if degrees.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0)
    return DegreeStats(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        std=float(degrees.std()),
    )


def connected_components(csr: CSRGraph) -> np.ndarray:
    """Component label per vertex (hook-to-minimum + pointer jumping).

    The same parallel union-find style used by the coarsening kernels,
    run host-side until fixpoint.
    """
    n = csr.num_vertices
    parent = np.arange(n, dtype=np.int64)
    degrees = csr.degrees()
    src = np.repeat(np.arange(n), degrees)
    dst = csr.adjncy
    while True:
        roots = parent
        while True:
            jumped = roots[roots]
            if np.array_equal(jumped, roots):
                break
            roots = jumped
        lo = np.minimum(roots[src], roots[dst])
        hi = np.maximum(roots[src], roots[dst])
        hooks = lo < hi
        if not np.any(hooks):
            return roots
        parent = roots.copy()
        parent[hi[hooks]] = lo[hooks]


def component_sizes(csr: CSRGraph) -> np.ndarray:
    """Sizes of all connected components, descending."""
    labels = connected_components(csr)
    sizes = np.bincount(labels, minlength=csr.num_vertices)
    sizes = sizes[sizes > 0]
    return np.sort(sizes)[::-1]


def largest_component_fraction(csr: CSRGraph) -> float:
    """Fraction of vertices inside the largest component."""
    if csr.num_vertices == 0:
        return 0.0
    return float(component_sizes(csr)[0]) / csr.num_vertices


def sampled_clustering_coefficient(
    csr: CSRGraph, samples: int = 500, seed: int = 0
) -> float:
    """Average local clustering coefficient over a vertex sample.

    For each sampled vertex with degree >= 2, the fraction of its
    neighbor pairs that are themselves connected.  High for community
    graphs and triangulations, ~0 for grid meshes and forests.
    """
    n = csr.num_vertices
    rng = make_rng(seed, "clustering")
    eligible = np.flatnonzero(csr.degrees() >= 2)
    if eligible.size == 0:
        return 0.0
    picks = rng.choice(
        eligible, size=min(samples, eligible.size), replace=False
    )
    total = 0.0
    for u in picks:
        nbrs = csr.neighbors(int(u))
        nbr_set = set(int(v) for v in nbrs)
        links = 0
        for v in nbrs:
            links += sum(
                1 for w in csr.neighbors(int(v)) if int(w) in nbr_set
            )
        d = nbrs.size
        total += links / (d * (d - 1))
    return total / picks.size


def edge_span_statistics(csr: CSRGraph) -> tuple[float, float]:
    """(median, 90th-percentile) |u - v| edge span.

    Small spans indicate placement locality (circuit netlists, meshes
    with row-major numbering); large spans indicate unstructured graphs.
    """
    edges, _weights = csr.edge_array()
    if edges.shape[0] == 0:
        return 0.0, 0.0
    spans = np.abs(edges[:, 0] - edges[:, 1])
    return float(np.median(spans)), float(np.percentile(spans, 90))


def classify_structure(csr: CSRGraph) -> str:
    """Heuristic structure class of a graph.

    Returns one of ``"forest-like"``, ``"mesh-like"``, ``"circuit-like"``
    or ``"social-like"`` — the four classes the benchmark suite spans.
    """
    ratio = csr.num_edges / max(csr.num_vertices, 1)
    stats = degree_statistics(csr)
    clustering = sampled_clustering_coefficient(csr, samples=200)
    if ratio < 1.0:
        return "forest-like"
    if stats.coefficient_of_variation > 1.0 or (
        clustering > 0.2 and stats.maximum > 8 * max(stats.mean, 1)
    ):
        return "social-like"
    if ratio >= 1.8 and stats.coefficient_of_variation < 0.35:
        return "mesh-like"
    return "circuit-like"


def graph_summary(csr: CSRGraph) -> dict:
    """One-stop structural summary used by the experiment reports."""
    stats = degree_statistics(csr)
    median_span, p90_span = edge_span_statistics(csr)
    return {
        "vertices": csr.num_vertices,
        "edges": csr.num_edges,
        "edge_vertex_ratio": round(
            csr.num_edges / max(csr.num_vertices, 1), 3
        ),
        "degree_min": stats.minimum,
        "degree_max": stats.maximum,
        "degree_mean": round(stats.mean, 2),
        "degree_cv": round(stats.coefficient_of_variation, 3),
        "clustering": round(sampled_clustering_coefficient(csr), 3),
        "largest_component": round(largest_component_fraction(csr), 3),
        "median_edge_span": median_span,
        "p90_edge_span": p90_span,
        "structure_class": classify_structure(csr),
    }


def format_summary(summary: dict) -> str:
    """Aligned text rendering of :func:`graph_summary` output."""
    width = max(len(key) for key in summary)
    return "\n".join(
        f"{key:<{width}} : {value}" for key, value in summary.items()
    )
