"""The paper's bucket-list graph representation (Section V.A, Figure 4).

Neighbors of each vertex are stored in *buckets* of 32 slots — one slot
per warp lane — so a warp can scan a whole bucket with a single coalesced
load and combine per-lane results with ``__ballot_sync``.  Vertex ``u``
initially owns ``ceil(D(u) / 32) + gamma`` contiguous buckets, the
``gamma`` spare buckets absorbing future edge insertions.  All buckets
live in one pre-allocated pool; a tail pointer tracks how many are in
use, so growing a vertex (or inserting a new one) is a pointer bump, and
*no modifier ever rebuilds the structure*.

Deviation from the paper's notation (documented in DESIGN.md): we store
``bucket_start[u]`` and ``bucket_count[u]`` instead of a monotonic
``bucket_ptr`` array, because appending buckets for re-inserted vertices
at the pool tail breaks monotonicity for interior vertices.  The paper's
``bucket_ptr[u + 1] - bucket_ptr[u]`` is exactly ``bucket_count[u]``.

Empty slots hold :data:`EMPTY` (the paper's ∅).  Edge weights are kept in
``slot_wgt``, aligned slot-for-slot with ``bucket_list``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.modifiers import HostGraph
from repro.utils.errors import CapacityError, GraphConsistencyError

#: Sentinel for an empty slot (the paper's ∅).
EMPTY = np.int64(-1)

#: Slots per bucket == CUDA warp size (Section V.A).
SLOTS_PER_BUCKET = 32

#: Vertex status values (Algorithm 2's ``vertex_status`` array).
STATUS_DELETED = np.uint8(0)
STATUS_ACTIVE = np.uint8(1)


class GraphUndoLog:
    """Pre-image log for one transactional batch on a bucket-list graph.

    Every mutation path of :class:`BucketListGraph` (slot writes, bucket
    allocation / relocation, status flips, tail-pointer and vertex-ID
    bumps) records the values it is about to overwrite.  ``rollback``
    replays the entries in reverse, restoring the graph bit-identically
    to its state when the log was opened — the n-Level insight that a
    fine-grained undo log is far cheaper than a rebuild.

    The log never charges the GPU ledger while recording (the pre-images
    ride along with writes the kernels already pay for); rolling back is
    charged by the transaction layer that requested it.
    """

    __slots__ = ("graph", "entries", "slot_writes")

    def __init__(self, graph: "BucketListGraph") -> None:
        self.graph = graph
        #: Reverse-ordered tuples; first element is the entry kind.
        self.entries: list[tuple] = []
        #: Total slots whose pre-image was recorded (rollback cost /
        #: fault-injection probe counter).
        self.slot_writes = 0

    def note_slots(self, idx: "int | np.integer | np.ndarray") -> None:
        """Record ``bucket_list`` / ``slot_wgt`` pre-images for ``idx``
        (a scalar slot position or an int64 array of positions)."""
        g = self.graph
        if isinstance(idx, (int, np.integer)):
            self.entries.append(
                (
                    "slot",
                    int(idx),
                    int(g.bucket_list[idx]),
                    int(g.slot_wgt[idx]),
                )
            )
            self.slot_writes += 1
        else:
            idx = np.asarray(idx, dtype=np.int64)
            if idx.size == 0:
                return
            self.entries.append(
                (
                    "slots",
                    idx.copy(),
                    g.bucket_list[idx].copy(),
                    g.slot_wgt[idx].copy(),
                )
            )
            self.slot_writes += int(idx.size)

    def note_vertex_meta(self, u: int) -> None:
        g = self.graph
        self.entries.append(
            ("meta", int(u), int(g.bucket_start[u]), int(g.bucket_count[u]))
        )

    def note_status(self, u: int) -> None:
        g = self.graph
        self.entries.append(
            ("status", int(u), g.vertex_status[u], int(g.vwgt[u]))
        )

    def note_scalars(self) -> None:
        g = self.graph
        self.entries.append(
            (
                "scalars",
                g.num_vertices,
                g.num_buckets_used,
                g.geometry_generation,
            )
        )

    def rollback(self) -> None:
        """Restore every recorded pre-image, newest first."""
        g = self.graph
        for entry in reversed(self.entries):
            kind = entry[0]
            if kind == "slot":
                _, idx, value, weight = entry
                g.bucket_list[idx] = value
                g.slot_wgt[idx] = weight
            elif kind == "slots":
                _, idx, values, weights = entry
                g.bucket_list[idx] = values
                g.slot_wgt[idx] = weights
            elif kind == "meta":
                _, u, start, count = entry
                g.bucket_start[u] = start
                g.bucket_count[u] = count
            elif kind == "status":
                _, u, status, weight = entry
                g.vertex_status[u] = status
                g.vwgt[u] = weight
            else:  # scalars
                _, num_vertices, num_buckets_used, generation = entry
                g.num_vertices = num_vertices
                g.num_buckets_used = num_buckets_used
                g.geometry_generation = generation
        self.entries.clear()
        # Derived caches may hold geometry from the aborted batch; the
        # generation counter was rolled back, so a *future* bump could
        # collide with a stale stamp.  Drop them — they rebuild lazily.
        g._gather_cache.clear()
        g._slot_owner = None


class BucketListGraph:
    """GPU-resident dynamic undirected graph stored in 32-slot buckets.

    The arrays below are "device memory"; kernels in :mod:`repro.core`
    operate on them through the warp model.  Host-side helper methods
    (``neighbors``, ``degree``, ``to_host_graph`` ...) exist for tests,
    verification and reporting and are never charged to the GPU ledger.

    Attributes:
        bucket_list: ``int64[pool_slots]`` neighbor IDs, EMPTY when free.
        slot_wgt: ``int64[pool_slots]`` edge weights aligned with slots.
        bucket_start: ``int64[capacity]`` first bucket index of each vertex.
        bucket_count: ``int64[capacity]`` buckets owned by each vertex.
        vertex_status: ``uint8[capacity]`` ACTIVE / DELETED flags.
        vwgt: ``int64[capacity]`` vertex weights.
        num_vertices: current vertex-ID high-water mark.
        num_buckets_used: pool tail pointer.
    """

    def __init__(
        self,
        capacity: int,
        pool_buckets: int,
        gamma: int = 1,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if pool_buckets <= 0:
            raise ValueError("pool_buckets must be positive")
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.capacity = capacity
        self.pool_buckets = pool_buckets
        pool_slots = pool_buckets * SLOTS_PER_BUCKET
        self.bucket_list = np.full(pool_slots, EMPTY, dtype=np.int64)
        self.slot_wgt = np.zeros(pool_slots, dtype=np.int64)
        self.bucket_start = np.zeros(capacity, dtype=np.int64)
        self.bucket_count = np.zeros(capacity, dtype=np.int64)
        self.vertex_status = np.full(capacity, STATUS_DELETED, dtype=np.uint8)
        self.vwgt = np.ones(capacity, dtype=np.int64)
        self.num_vertices = 0
        self.num_buckets_used = 0
        # Bucket-geometry generation: bumped whenever any vertex's
        # bucket_start/bucket_count changes (allocation, relocation, new
        # vertex ID).  Host-side gather caches are stamped with it, so a
        # stale cache can never be observed.  Edge inserts/deletes do not
        # bump it — they only rewrite slot *contents*, which the caches
        # never store.
        self.geometry_generation = 0
        self._gather_cache: dict[bytes, tuple[int, np.ndarray, np.ndarray]] = {}
        self._slot_owner: np.ndarray | None = None
        # Active undo log (one transactional batch at a time) and an
        # optional fault-injection probe called after each slot-group
        # pre-image is captured (see repro.utils.faultinject).
        self._undo: GraphUndoLog | None = None
        self._write_probe = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_csr(
        cls,
        csr: CSRGraph,
        gamma: int = 1,
        capacity_factor: float = 1.5,
        pool_slack_buckets: int | None = None,
    ) -> "BucketListGraph":
        """Build the bucket list from a CSR (the initial FGP output graph).

        Args:
            csr: Source graph.
            gamma: Spare buckets per vertex (paper default: 1).
            capacity_factor: Vertex-ID capacity as a multiple of ``n``,
                reserving room for future vertex insertions.
            pool_slack_buckets: Extra buckets kept free at the pool tail
                for vertices inserted later; defaults to one bucket per
                reserved vertex slot.
        """
        n = csr.num_vertices
        capacity = max(n, int(math.ceil(n * capacity_factor)))
        degrees = csr.degrees()
        counts = np.ceil(degrees / SLOTS_PER_BUCKET).astype(np.int64) + gamma
        counts = np.maximum(counts, 1)
        needed = int(counts.sum())
        if pool_slack_buckets is None:
            pool_slack_buckets = max(capacity - n, n // 4) + 64
        graph = cls(capacity, needed + pool_slack_buckets, gamma=gamma)
        graph.num_vertices = n
        graph.bucket_count[:n] = counts
        graph.bucket_start[1:n] = np.cumsum(counts[:-1])
        graph.num_buckets_used = needed
        graph.vertex_status[:n] = STATUS_ACTIVE
        graph.vwgt[:n] = csr.vwgt
        # Scatter neighbors into the head slots of each vertex's buckets.
        slot_base = graph.bucket_start[:n] * SLOTS_PER_BUCKET
        positions = (
            np.repeat(slot_base, degrees)
            + _ramp(degrees)
        )
        graph.bucket_list[positions] = csr.adjncy
        graph.slot_wgt[positions] = csr.adjwgt
        return graph

    @classmethod
    def from_host_graph(
        cls,
        host: HostGraph,
        gamma: int = 1,
        capacity_factor: float = 1.5,
    ) -> "BucketListGraph":
        """Build from a :class:`HostGraph`, preserving vertex IDs.

        Unlike :meth:`from_csr` this keeps deleted IDs as deleted slots,
        which is what a long-running incremental session looks like.
        """
        n = host.num_vertex_slots
        capacity = max(n, int(math.ceil(n * capacity_factor)))
        degrees = np.array([host.degree(u) for u in range(n)], dtype=np.int64)
        counts = np.ceil(degrees / SLOTS_PER_BUCKET).astype(np.int64) + gamma
        counts = np.maximum(counts, 1)
        needed = int(counts.sum())
        graph = cls(capacity, needed + (capacity - n + 1), gamma=gamma)
        graph.num_vertices = n
        graph.bucket_count[:n] = counts
        graph.bucket_start[1:n] = np.cumsum(counts[:-1])
        graph.num_buckets_used = needed
        for u in range(n):
            if host.is_active(u):
                graph.vertex_status[u] = STATUS_ACTIVE
                graph.vwgt[u] = host.vwgt[u]
                base = graph.bucket_start[u] * SLOTS_PER_BUCKET
                for offset, (v, w) in enumerate(host.neighbors(u).items()):
                    graph.bucket_list[base + offset] = v
                    graph.slot_wgt[base + offset] = w
        return graph

    # -- slot geometry -----------------------------------------------------------

    def slot_range(self, u: int) -> tuple[int, int]:
        """Return ``(first_slot, n_slots)`` of vertex ``u``'s buckets."""
        start = int(self.bucket_start[u]) * SLOTS_PER_BUCKET
        n_slots = int(self.bucket_count[u]) * SLOTS_PER_BUCKET
        return start, n_slots

    def slots(self, u: int) -> np.ndarray:
        """View of ``u``'s slot values (including EMPTY slots)."""
        start, n_slots = self.slot_range(u)
        return self.bucket_list[start : start + n_slots]

    def slot_weights(self, u: int) -> np.ndarray:
        start, n_slots = self.slot_range(u)
        return self.slot_wgt[start : start + n_slots]

    #: Max memoized gather entries (FIFO eviction); each entry holds two
    #: int64 arrays roughly the size of the vertex set's slot count.
    GATHER_CACHE_ENTRIES = 8

    def slot_index_arrays(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened slot indices for a set of vertices (memoized).

        Returns ``(slot_indices, owner)`` where ``slot_indices`` is every
        slot position belonging to a vertex in ``vertices`` (in vertex
        order) and ``owner[i]`` is the index *into ``vertices``* that owns
        slot ``slot_indices[i]``.  This is the gather pattern the
        vectorized kernels use to process many warps at once.

        Repeated calls with the same vertex set (refinement rounds, the
        per-iteration cut computation) return a cached pair stamped with
        :attr:`geometry_generation`; any bucket allocation, relocation or
        new vertex ID invalidates the stamp.  Callers must treat the
        returned arrays as read-only.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        key = vertices.tobytes()
        hit = self._gather_cache.get(key)
        if hit is not None and hit[0] == self.geometry_generation:
            return hit[1], hit[2]
        n_slots = self.bucket_count[vertices] * SLOTS_PER_BUCKET
        base = self.bucket_start[vertices] * SLOTS_PER_BUCKET
        slot_indices = np.repeat(base, n_slots) + _ramp(n_slots)
        owner = np.repeat(np.arange(vertices.size), n_slots)
        if len(self._gather_cache) >= self.GATHER_CACHE_ENTRIES:
            self._gather_cache.pop(next(iter(self._gather_cache)))
        self._gather_cache[key] = (
            self.geometry_generation, slot_indices, owner
        )
        return slot_indices, owner

    def slot_owner_array(self) -> np.ndarray:
        """Pool-wide owner map: ``slot_owner[s]`` is the vertex whose
        bucket range contains slot ``s`` (-1 for never-assigned slots).

        Built lazily, then maintained *incrementally*: bucket allocations
        and relocations write their new ranges into the cached array
        instead of rebuilding it, so per-iteration consumers (cut size,
        edge count) never pay the O(pool) rebuild twice.  Slots of
        abandoned (relocated-away) ranges keep their stale owner — they
        are permanently EMPTY, so consumers must mask with
        ``bucket_list != EMPTY``.  Treat as read-only.
        """
        if self._slot_owner is None:
            owner = np.full(
                self.pool_buckets * SLOTS_PER_BUCKET, -1, dtype=np.int64
            )
            n = self.num_vertices
            if n:
                counts = self.bucket_count[:n] * SLOTS_PER_BUCKET
                base = self.bucket_start[:n] * SLOTS_PER_BUCKET
                positions = np.repeat(base, counts) + _ramp(counts)
                owner[positions] = np.repeat(
                    np.arange(n, dtype=np.int64), counts
                )
            self._slot_owner = owner
        return self._slot_owner

    def _touch_geometry(self) -> None:
        """Invalidate gather caches after a bucket-geometry change."""
        self.geometry_generation += 1

    def _note_bucket_assignment(self, u: int) -> None:
        """Record ``u``'s (new) bucket range in the owner cache."""
        if self._slot_owner is not None:
            start, n_slots = self.slot_range(u)
            self._slot_owner[start : start + n_slots] = u

    # -- transactional undo ------------------------------------------------------

    def begin_undo(self) -> GraphUndoLog:
        """Open a pre-image log; every mutation until ``commit_undo`` /
        ``rollback_undo`` records what it overwrites.  Transactions do
        not nest — the graph is a single device structure."""
        if self._undo is not None:
            raise GraphConsistencyError(
                "an undo log is already active on this graph"
            )
        self._undo = GraphUndoLog(self)
        return self._undo

    def commit_undo(self) -> GraphUndoLog:
        """Discard the active log, keeping all mutations."""
        if self._undo is None:
            raise GraphConsistencyError("no active undo log to commit")
        log, self._undo = self._undo, None
        return log

    def rollback_undo(self) -> GraphUndoLog:
        """Replay the active log in reverse, restoring the pre-batch
        state bit-identically, then close it."""
        if self._undo is None:
            raise GraphConsistencyError("no active undo log to roll back")
        log, self._undo = self._undo, None
        log.rollback()
        return log

    def _undo_slots(self, idx: "int | np.integer | np.ndarray") -> None:
        """Hook: record slot pre-images before overwriting ``idx``.

        When a write probe is installed (fault injection), it fires
        *after* the pre-image is captured — a raised error then models a
        mid-kernel abort whose partial writes the log can still undo.
        """
        if self._undo is not None:
            self._undo.note_slots(idx)
            if self._write_probe is not None:
                self._write_probe(self._undo.slot_writes)
        elif self._write_probe is not None:
            size = 1 if isinstance(idx, (int, np.integer)) else len(idx)
            self._write_probe(size)

    def _undo_vertex_meta(self, u: int) -> None:
        if self._undo is not None:
            self._undo.note_vertex_meta(u)

    def _undo_status(self, u: int) -> None:
        if self._undo is not None:
            self._undo.note_status(u)

    def _undo_scalars(self) -> None:
        if self._undo is not None:
            self._undo.note_scalars()

    # -- host-side queries ---------------------------------------------------------

    def is_active(self, u: int) -> bool:
        return bool(self.vertex_status[u] == STATUS_ACTIVE)

    def active_vertices(self) -> np.ndarray:
        return np.flatnonzero(
            self.vertex_status[: self.num_vertices] == STATUS_ACTIVE
        )

    def num_active_vertices(self) -> int:
        return int(
            (self.vertex_status[: self.num_vertices] == STATUS_ACTIVE).sum()
        )

    def degree(self, u: int) -> int:
        return int((self.slots(u) != EMPTY).sum())

    def degrees(self, vertices: np.ndarray | None = None) -> np.ndarray:
        if vertices is None:
            vertices = np.arange(self.num_vertices)
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        slot_idx, owner = self.slot_index_arrays(vertices)
        filled = self.bucket_list[slot_idx] != EMPTY
        return np.bincount(
            owner[filled], minlength=vertices.size
        ).astype(np.int64)

    def neighbors(self, u: int) -> np.ndarray:
        values = self.slots(u)
        return values[values != EMPTY]

    def neighbor_weights(self, u: int) -> np.ndarray:
        values = self.slots(u)
        return self.slot_weights(u)[values != EMPTY]

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.slots(u) == v))

    def edge_weight(self, u: int, v: int) -> int:
        values = self.slots(u)
        hits = np.flatnonzero(values == v)
        if hits.size == 0:
            raise KeyError(f"edge ({u}, {v}) not present")
        return int(self.slot_weights(u)[hits[0]])

    def num_edges(self) -> int:
        # One contiguous scan over the used pool: every filled slot is
        # one arc (deactivation blanks a vertex's slots and modifier
        # expansion removes dangling references, so deleted vertices
        # contribute nothing — the same invariant ``validate`` checks).
        used_slots = self.num_buckets_used * SLOTS_PER_BUCKET
        if used_slots == 0:
            return 0
        return int(
            np.count_nonzero(self.bucket_list[:used_slots] != EMPTY)
        ) // 2

    def total_active_weight(self) -> int:
        active = self.active_vertices()
        return int(self.vwgt[active].sum())

    def nbytes(self) -> int:
        """Device-memory footprint (used for transfer cost accounting)."""
        return (
            self.bucket_list.nbytes
            + self.slot_wgt.nbytes
            + self.bucket_start.nbytes
            + self.bucket_count.nbytes
            + self.vertex_status.nbytes
            + self.vwgt.nbytes
        )

    def fill_ratio(self) -> float:
        """Fraction of in-use pool slots holding a neighbor (diagnostics)."""
        used_slots = self.num_buckets_used * SLOTS_PER_BUCKET
        if used_slots == 0:
            return 0.0
        filled = int((self.bucket_list[:used_slots] != EMPTY).sum())
        return filled / used_slots

    # -- allocation ------------------------------------------------------------------

    def allocate_buckets(self, n_buckets: int) -> int:
        """Bump the pool tail by ``n_buckets``; returns the first bucket.

        Mirrors the paper's "pre-allocate a large block of memory ... and
        use a pointer to track the current number of buckets".
        """
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        if self.num_buckets_used + n_buckets > self.pool_buckets:
            raise CapacityError(
                f"bucket pool exhausted: need {n_buckets} more buckets, "
                f"{self.pool_buckets - self.num_buckets_used} free; "
                f"increase gamma or the pool slack"
            )
        self._undo_scalars()
        start = self.num_buckets_used
        self.num_buckets_used += n_buckets
        first_slot = start * SLOTS_PER_BUCKET
        last_slot = self.num_buckets_used * SLOTS_PER_BUCKET
        self._undo_slots(np.arange(first_slot, last_slot, dtype=np.int64))
        self.bucket_list[first_slot:last_slot] = EMPTY
        self.slot_wgt[first_slot:last_slot] = 0
        self._touch_geometry()
        return start

    def assign_new_buckets(self, u: int, n_buckets: int = 1) -> None:
        """Allocate ``n_buckets`` fresh buckets and hand them to ``u``.

        The Algorithm 2 path for brand-new vertex IDs ("assign u a single
        bucket and add the bucket to the end of the bucket-list"), kept
        here so the geometry caches see the assignment.
        """
        bucket = self.allocate_buckets(n_buckets)
        self._undo_vertex_meta(u)
        self.bucket_start[u] = bucket
        self.bucket_count[u] = n_buckets
        self._note_bucket_assignment(u)

    def new_vertex_id(self) -> int:
        """Reserve the next vertex ID from the capacity region."""
        if self.num_vertices >= self.capacity:
            raise CapacityError(
                f"vertex capacity {self.capacity} exhausted; rebuild with a "
                f"larger capacity_factor"
            )
        self._undo_scalars()
        u = self.num_vertices
        self.num_vertices += 1
        return u

    def relocate_with_extra_buckets(self, u: int, extra: int = 1) -> int:
        """Move ``u``'s buckets to the pool tail with ``extra`` more buckets.

        This is the overflow path when every slot of ``u`` is full and an
        edge insertion arrives: instead of failing (the strict reading of
        Algorithm 1), the vertex's slots are copied into a fresh, larger
        allocation.  Returns the number of slots copied so callers can
        charge the move to the ledger.  The old buckets are abandoned in
        place (the pool is append-only, like the paper's).
        """
        old_start, old_slots = self.slot_range(u)
        old_count = int(self.bucket_count[u])
        new_count = old_count + extra
        new_bucket = self.allocate_buckets(new_count)
        new_start = new_bucket * SLOTS_PER_BUCKET
        # The new region's pre-image is covered by allocate_buckets; log
        # the old region (about to be blanked) and u's geometry.
        self._undo_slots(
            np.arange(old_start, old_start + old_slots, dtype=np.int64)
        )
        self._undo_vertex_meta(u)
        self.bucket_list[new_start : new_start + old_slots] = self.bucket_list[
            old_start : old_start + old_slots
        ]
        self.slot_wgt[new_start : new_start + old_slots] = self.slot_wgt[
            old_start : old_start + old_slots
        ]
        # Abandon (and blank) the old region so stale values can never be
        # observed by a later scan of a vertex that reuses the range.
        self.bucket_list[old_start : old_start + old_slots] = EMPTY
        self.slot_wgt[old_start : old_start + old_slots] = 0
        self.bucket_start[u] = new_bucket
        self.bucket_count[u] = new_count
        self._note_bucket_assignment(u)
        return old_slots

    # -- export / verification ----------------------------------------------------------

    def to_host_graph(self) -> HostGraph:
        """Materialize the active subgraph as a :class:`HostGraph`."""
        host = HostGraph(self.num_vertices)
        for u in range(self.num_vertices):
            host.active[u] = self.is_active(u)
            host.vwgt[u] = int(self.vwgt[u])
        for u in range(self.num_vertices):
            if not self.is_active(u):
                continue
            values = self.slots(u)
            weights = self.slot_weights(u)
            mask = values != EMPTY
            for v, w in zip(values[mask], weights[mask]):
                host.adj[u][int(v)] = int(w)
        return host

    def to_csr(self) -> tuple[CSRGraph, np.ndarray]:
        """Compact the active subgraph to CSR (returns ``(csr, id_map)``)."""
        return self.to_host_graph().to_csr()

    def validate(self) -> None:
        """Check every structural invariant; raises on violation.

        Invariants: deleted vertices have no filled slots pointing *to*
        them and none of their own; adjacency is symmetric with equal
        weights; no self-loops; no duplicate neighbors; bucket ranges
        stay within the pool and do not overlap.
        """
        n = self.num_vertices
        # Bucket ranges within pool and non-overlapping.
        intervals = []
        for u in range(n):
            start = int(self.bucket_start[u])
            count = int(self.bucket_count[u])
            if count <= 0:
                raise GraphConsistencyError(f"vertex {u} owns no buckets")
            if start < 0 or start + count > self.num_buckets_used:
                raise GraphConsistencyError(
                    f"vertex {u} bucket range [{start}, {start + count}) "
                    f"outside used pool [0, {self.num_buckets_used})"
                )
            intervals.append((start, start + count, u))
        intervals.sort()
        for (s1, e1, u1), (s2, e2, u2) in zip(intervals, intervals[1:]):
            if s2 < e1:
                raise GraphConsistencyError(
                    f"buckets of vertices {u1} and {u2} overlap"
                )
        # Per-vertex slot content checks.
        adjacency: dict[tuple[int, int], int] = {}
        for u in range(n):
            values = self.slots(u)
            weights = self.slot_weights(u)
            mask = values != EMPTY
            nbrs = values[mask]
            if not self.is_active(u):
                if nbrs.size:
                    raise GraphConsistencyError(
                        f"deleted vertex {u} still has neighbors"
                    )
                continue
            if np.any(nbrs == u):
                raise GraphConsistencyError(f"vertex {u} has a self-loop")
            if np.unique(nbrs).size != nbrs.size:
                raise GraphConsistencyError(
                    f"vertex {u} has duplicate neighbor slots"
                )
            if nbrs.size and (nbrs.min() < 0 or nbrs.max() >= n):
                raise GraphConsistencyError(
                    f"vertex {u} references an out-of-range neighbor"
                )
            for v, w in zip(nbrs, weights[mask]):
                if not self.is_active(int(v)):
                    raise GraphConsistencyError(
                        f"vertex {u} references deleted vertex {int(v)}"
                    )
                adjacency[(u, int(v))] = int(w)
        for (u, v), w in adjacency.items():
            if adjacency.get((v, u)) != w:
                raise GraphConsistencyError(
                    f"asymmetric edge ({u}, {v}): {w} vs "
                    f"{adjacency.get((v, u))}"
                )


def _ramp(lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(L)`` for each L in ``lengths``.

    >>> _ramp(np.array([2, 0, 3]))
    array([0, 1, 0, 1, 2])
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
