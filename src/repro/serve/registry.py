"""Session registry: tenant-scoped session lifecycle over shared devices.

The registry owns every hosted :class:`~repro.stream.session.
StreamSession` and the mapping onto the worker pool of simulated
devices.  It is deliberately synchronous — a pure state machine the
asyncio server drives — so the whole lifecycle is unit-testable without
sockets or an event loop.

Lifecycle::

    create ──> live ──submit/flush/checkpoint──> live
                │  ▲
          evict │  │ attach (StreamSession.recover, transparent)
                ▼  │
              evicted (journal only, no device state)

Every session is journaled under ``data_dir/<tenant>/<session>/``, so
**evict** is cheap: :meth:`StreamSession.suspend` checkpoints (including
the logged-but-unflushed queue suffix) and drops the in-memory engine
state; a later **attach** — or any op routed at an evicted session —
recovers it bit-identically via :meth:`StreamSession.recover`.  Idle
eviction runs the same path from a deterministic op-count clock: a
session untouched for ``idle_evict_after_ops`` registry operations is
suspended on the next sweep.

Device sharing: each :class:`DeviceWorker` models one simulated GPU.
Sessions keep private :class:`~repro.gpusim.context.GpuContext`\\ s
(device *state* is per-session — exactly what makes tenant partitions
bit-identical to standalone runs), while the worker serializes
execution and owns the cycle accounting: every operation's ledger
delta is charged to ``(worker, tenant)``, and the per-tenant charges
sum exactly to the worker total — the attribution invariant
``tools/serve_gate.py`` enforces.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.generators import (
    circuit_graph,
    community_graph,
    mesh_graph_2d,
    random_graph,
)
from repro.partition.config import PartitionConfig
from repro.stream.journal import StreamJournal
from repro.stream.scheduler import SchedulerConfig, ledger_cycles
from repro.stream.session import StreamSession
from repro.utils.errors import ServeError
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_SESSION_EXISTS,
    E_UNKNOWN_SESSION,
    E_WORKER_FAILED,
)
from repro.serve.wal import ServeWAL

#: Graph generators a ``create`` request may name.  Closed set: the
#: wire protocol must not become an arbitrary-code front door.
GRAPH_GENERATORS = {
    "circuit": circuit_graph,
    "community": community_graph,
    "mesh2d": mesh_graph_2d,
    "random": random_graph,
}


def build_graph(spec: dict):
    """Construct the CSR graph a ``create`` request describes.

    ``spec`` is ``{"generator": <name>, "args": {...}}`` with the
    generator drawn from :data:`GRAPH_GENERATORS`.  Specs are
    deterministic by construction (every generator is seeded), which is
    what lets the gate rebuild the identical graph for its standalone
    reference runs.
    """
    if not isinstance(spec, dict):
        raise ServeError(
            "graph spec must be an object", code=E_BAD_REQUEST
        )
    name = spec.get("generator")
    factory = GRAPH_GENERATORS.get(name)
    if factory is None:
        raise ServeError(
            f"unknown graph generator {name!r} "
            f"(expected one of {sorted(GRAPH_GENERATORS)})",
            code=E_BAD_REQUEST,
        )
    args = spec.get("args", {})
    if not isinstance(args, dict):
        raise ServeError(
            "graph spec args must be an object", code=E_BAD_REQUEST
        )
    try:
        return factory(**args)
    except (TypeError, ValueError) as err:
        raise ServeError(
            f"graph generator {name!r} rejected args: {err}",
            code=E_BAD_REQUEST,
        ) from err


def partition_sha256(partition: np.ndarray) -> str:
    """SHA-256 of the raw partition label array (bit-identity witness)."""
    return hashlib.sha256(
        np.ascontiguousarray(partition).tobytes()
    ).hexdigest()


class DeviceWorker:
    """One simulated device of the shared pool.

    ``lock`` serializes execution (one kernel stream per device) for
    the asyncio server; the cycle counters are the device's aggregate
    clock and its per-tenant attribution.
    """

    def __init__(self, index: int):
        self.index = index
        self.lock = asyncio.Lock()
        self.total_cycles = 0.0
        self.cycles_by_tenant: Dict[str, float] = {}
        #: Fail-stop liveness: a dead worker never runs again; its
        #: in-memory session state is lost and must be rebuilt from
        #: journals on a survivor.  The cycle counters survive — the
        #: work *was* done and attributed before the failure.
        self.alive = True
        self.fault: Optional[str] = None

    def fail(self, reason: str) -> None:
        """Mark the worker dead (idempotent; keeps the first reason)."""
        if self.alive:
            self.alive = False
            self.fault = reason

    def charge(self, tenant: str, delta: float) -> None:
        if delta < 0:
            raise ValueError("cycle charge must be non-negative")
        self.total_cycles += delta
        self.cycles_by_tenant[tenant] = (
            self.cycles_by_tenant.get(tenant, 0.0) + delta
        )

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "alive": self.alive,
            "fault": self.fault,
            "total_cycles": self.total_cycles,
            "cycles_by_tenant": {
                tenant: self.cycles_by_tenant[tenant]
                for tenant in sorted(self.cycles_by_tenant)
            },
        }


@dataclass
class SessionEntry:
    """Registry record for one hosted session."""

    tenant: str
    name: str
    journal_dir: Path
    worker: DeviceWorker
    session: Optional[StreamSession] = None
    #: Registry op-counter value of the last operation that touched
    #: this session (the idle clock; no wall time).
    last_active_op: int = 0
    evictions: int = 0
    #: Ledger cycle reading already charged to the worker, so each op
    #: charges only its delta.
    charged_cycles: float = 0.0
    #: Cumulative cycles charged across every engine incarnation (the
    #: per-incarnation ledger resets on attach/recover).  This is the
    #: figure the serve WAL settles durably at each checkpoint.
    lifetime_cycles: float = 0.0
    #: Times this entry was rebuilt from its journal after state loss
    #: (server restart or worker death) — *not* counting plain
    #: evict/attach round trips.
    recoveries: int = 0
    #: Telemetry caches refreshed at every settle, so per-tenant
    #: resilience metrics stay observable while the session is evicted.
    quarantined: int = 0
    dead_lettered: int = 0
    #: Trace id of the ``create`` request that made this session
    #: (``repro.obs.distrib``).  Persisted in the serve WAL manifest,
    #: so recovery and failover replay spans re-attach to the trace
    #: that originated the session — across process restarts.
    origin_trace: Optional[str] = None

    @property
    def live(self) -> bool:
        return self.session is not None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.tenant, self.name)


class SessionRegistry:
    """All hosted sessions, keyed ``(tenant, session_name)``."""

    def __init__(
        self,
        data_dir: "str | Path",
        workers: int = 1,
        idle_evict_after_ops: int = 0,
    ):
        if workers < 1:
            raise ValueError("need at least one device worker")
        if idle_evict_after_ops < 0:
            raise ValueError("idle_evict_after_ops must be >= 0")
        self.data_dir = Path(data_dir)
        self.workers = [DeviceWorker(i) for i in range(workers)]
        self.idle_evict_after_ops = idle_evict_after_ops
        self.wal = ServeWAL(self.data_dir)
        self._entries: Dict[Tuple[str, str], SessionEntry] = {}
        self._op_counter = 0
        self._created = 0

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def op_counter(self) -> int:
        return self._op_counter

    def entries_for(self, tenant: str) -> List[SessionEntry]:
        return [
            self._entries[key]
            for key in sorted(self._entries)
            if key[0] == tenant
        ]

    def live_session_count(self, tenant: str) -> int:
        return sum(1 for e in self.entries_for(tenant) if e.live)

    def queued_modifiers(self, tenant: Optional[str] = None) -> int:
        """Pending ingest-queue depth, per tenant or globally.

        Evicted sessions count zero: their backlog is journaled, not
        occupying a device.
        """
        total = 0
        for key in sorted(self._entries):
            entry = self._entries[key]
            if tenant is not None and entry.tenant != tenant:
                continue
            if entry.live:
                total += entry.session.queue.depth
        return total

    def get(self, tenant: str, name: str) -> SessionEntry:
        entry = self._entries.get((tenant, name))
        if entry is None:
            raise ServeError(
                f"tenant {tenant!r} has no session {name!r}",
                code=E_UNKNOWN_SESSION,
            )
        return entry

    # -- lifecycle -----------------------------------------------------------------

    def touch(self, entry: SessionEntry) -> None:
        """Advance the op clock and stamp ``entry`` as just-used."""
        self._op_counter += 1
        entry.last_active_op = self._op_counter

    def create(
        self,
        tenant: str,
        name: str,
        graph_spec: dict,
        k: int,
        seed: int = 0,
        target_batch_size: Optional[int] = None,
        queue_capacity: int = 4096,
        policy: str = "reject",
        origin_trace: Optional[str] = None,
    ) -> SessionEntry:
        """Create, start, and journal a new session.

        The server defaults the backpressure policy to ``"reject"``:
        a remote producer gets the typed ``backpressure`` response and
        retries, instead of the server silently flushing on its behalf
        (the library's single-process ``"block"`` default).
        """
        key = (tenant, name)
        if key in self._entries:
            raise ServeError(
                f"tenant {tenant!r} already has a session {name!r}",
                code=E_SESSION_EXISTS,
            )
        params = {
            "graph": graph_spec,
            "k": k,
            "seed": seed,
            "target_batch_size": target_batch_size,
            "queue_capacity": queue_capacity,
            "policy": policy,
        }
        csr = build_graph(graph_spec)  # validate before journaling
        journal_dir = self.data_dir / tenant / name
        # WAL before state: the manifest line must be durable before
        # the session exists, so a crash at any later point still
        # recovers the session.
        self.wal.append_create(tenant, name, params, trace=origin_trace)
        session = self._construct_session(params, journal_dir, csr=csr)
        worker = self._assign_worker()
        self._created += 1
        entry = SessionEntry(
            tenant=tenant,
            name=name,
            journal_dir=journal_dir,
            worker=worker,
            session=session,
            origin_trace=origin_trace,
        )
        self._bind(entry)
        # start() writes the initial checkpoint, which (via the bound
        # hook) settles the initial partitioning cost durably.
        session.start()
        self._entries[key] = entry
        self.touch(entry)
        return entry

    def _construct_session(
        self, params: dict, journal_dir: Path, csr=None
    ) -> StreamSession:
        """Build (but do not start) a session from manifest params."""
        if csr is None:
            csr = build_graph(params.get("graph", {}))
        target_batch_size = params.get("target_batch_size")
        scheduler = (
            SchedulerConfig(target_batch_size=target_batch_size)
            if target_batch_size is not None
            else None
        )
        return StreamSession(
            csr,
            PartitionConfig(
                k=int(params.get("k", 2)),
                seed=int(params.get("seed", 0)),
            ),
            journal_dir=journal_dir,
            queue_capacity=int(params.get("queue_capacity", 4096)),
            policy=params.get("policy", "reject"),
            scheduler=scheduler,
        )

    def _assign_worker(self) -> DeviceWorker:
        """Round-robin over *alive* workers, anchored at the creation
        counter — with a fully healthy pool this reproduces the
        original assignment bit-identically during recovery."""
        count = len(self.workers)
        start = self._created % count
        for offset in range(count):
            worker = self.workers[(start + offset) % count]
            if worker.alive:
                return worker
        raise ServeError(
            "no alive device workers", code=E_WORKER_FAILED
        )

    def _bind(self, entry: SessionEntry) -> None:
        """Hook the entry's live session so every durable checkpoint
        also settles its lifetime cycles into the serve WAL.

        The hook fires *inside* ``StreamSession.checkpoint`` — the only
        point where the cycle figure and the checkpoint cursor are
        guaranteed to correspond (a ``checkpoint_every`` checkpoint can
        fire mid-drain, with more flushes landing after it in the same
        serve op).
        """

        def settle_durably() -> None:
            self.wal.append_settle(
                entry.tenant, entry.name, self._lifetime_now(entry)
            )

        entry.session.on_checkpoint = settle_durably

    def _lifetime_now(self, entry: SessionEntry) -> float:
        """Lifetime cycles including the not-yet-settled ledger delta."""
        total = entry.lifetime_cycles
        if entry.live:
            now = ledger_cycles(entry.session.partitioner.ctx.ledger)
            total += max(0.0, now - entry.charged_cycles)
        return total

    def attach(self, tenant: str, name: str) -> SessionEntry:
        """Return the entry with a live session, recovering if evicted."""
        entry = self.get(tenant, name)
        if not entry.live:
            self._revive(entry)
        self.touch(entry)
        return entry

    def _revive(self, entry: SessionEntry) -> None:
        """Rebuild the entry's engine state from its journal."""
        entry.session = StreamSession.recover(entry.journal_dir)
        # A fresh engine means a fresh ledger: the recovery replay's
        # cycles are this entry's first post-attach charge.
        entry.charged_cycles = 0.0
        self._bind(entry)

    def evict(self, tenant: str, name: str) -> SessionEntry:
        """Checkpoint-and-drop a live session (no-op when evicted)."""
        entry = self.get(tenant, name)
        if entry.live:
            self.settle_cycles(entry)
            entry.session.suspend()
            entry.session = None
            entry.evictions += 1
        self.touch(entry)
        return entry

    def sweep_idle(self) -> List[SessionEntry]:
        """Evict sessions idle past the op-count threshold."""
        if self.idle_evict_after_ops <= 0:
            return []
        horizon = self._op_counter - self.idle_evict_after_ops
        evicted = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            if entry.live and entry.last_active_op <= horizon:
                self.settle_cycles(entry)
                entry.session.suspend()
                entry.session = None
                entry.evictions += 1
                evicted.append(entry)
        return evicted

    def close(self) -> None:
        """Suspend every live session (server shutdown)."""
        for key in sorted(self._entries):
            entry = self._entries[key]
            if entry.live:
                self.settle_cycles(entry)
                entry.session.suspend()
                entry.session = None
                entry.evictions += 1
        self.wal.compact()
        self.wal.close()

    # -- crash recovery & failover --------------------------------------------------

    def recover_entries(self) -> List[SessionEntry]:
        """Re-materialize every manifest session after a process crash.

        Sessions come back in manifest (creation) order so the
        round-robin worker assignment matches the crashed process.
        Durably settled cycles are restored into worker/tenant
        attribution first; the deterministic journal replay then
        charges exactly the cycles the settlement does not cover, so
        recovered totals equal the uncrashed run's.

        A manifest entry whose journal never reached its first
        checkpoint (crash between WAL append and ``start()``) is
        re-created from its recorded parameters — the state its
        never-acked ``create`` would have produced.
        """
        state = self.wal.load()
        recovered: List[SessionEntry] = []
        for tenant, name, params in state.creates:
            key = (tenant, name)
            if key in self._entries:
                continue
            journal_dir = self.data_dir / tenant / name
            worker = self._assign_worker()
            self._created += 1
            entry = SessionEntry(
                tenant=tenant,
                name=name,
                journal_dir=journal_dir,
                worker=worker,
                origin_trace=state.origin_traces.get(key),
            )
            settled = state.settled_cycles.get(key, 0.0)
            if settled > 0.0:
                entry.lifetime_cycles = settled
                worker.charge(tenant, settled)
            if StreamJournal(journal_dir).exists():
                self._revive(entry)
                entry.recoveries += 1
            else:
                entry.session = self._construct_session(
                    params, journal_dir
                )
                self._bind(entry)
                entry.session.start()
            self.settle_cycles(entry)
            self._entries[key] = entry
            self.touch(entry)
            recovered.append(entry)
        return recovered

    def entries_on_worker(
        self, worker: DeviceWorker
    ) -> List[SessionEntry]:
        return [
            self._entries[key]
            for key in sorted(self._entries)
            if self._entries[key].worker is worker
        ]

    def drop_lost(self, entry: SessionEntry) -> None:
        """Discard an entry's in-memory state after its worker died.

        Fail-stop: no suspend, no checkpoint — the device that would
        run them is gone.  Only the journal's file handle is released;
        everything durable (last checkpoint + WAL suffix) stays, and
        :meth:`restore` rebuilds the exact pre-failure state from it.
        """
        if entry.live:
            if entry.session.journal is not None:
                entry.session.journal.close()
            entry.session = None

    def restore(
        self, entry: SessionEntry, worker: DeviceWorker
    ) -> SessionEntry:
        """Rebuild a lost entry onto ``worker`` from its journal."""
        if not worker.alive:
            raise ServeError(
                f"cannot restore onto dead worker {worker.index}",
                code=E_WORKER_FAILED,
            )
        entry.worker = worker
        self._revive(entry)
        entry.recoveries += 1
        self.settle_cycles(entry)
        self.touch(entry)
        return entry

    # -- device-cycle attribution ---------------------------------------------------

    def settle_cycles(self, entry: SessionEntry) -> float:
        """Charge the entry's un-attributed ledger cycles to its worker.

        Returns the delta.  Called after every operation that may have
        run engine work, and before eviction drops the ledger.
        """
        if not entry.live:
            return 0.0
        entry.quarantined = entry.session.telemetry.quarantined
        entry.dead_lettered = entry.session.telemetry.dead_lettered
        now = ledger_cycles(entry.session.partitioner.ctx.ledger)
        delta = now - entry.charged_cycles
        if delta <= 0.0:
            return 0.0
        entry.charged_cycles = now
        entry.lifetime_cycles += delta
        entry.worker.charge(entry.tenant, delta)
        return delta

    def info(self, entry: SessionEntry) -> dict:
        """Wire-friendly summary of one entry."""
        out = {
            "tenant": entry.tenant,
            "session": entry.name,
            "live": entry.live,
            "worker": entry.worker.index,
            "worker_alive": entry.worker.alive,
            "evictions": entry.evictions,
            "recoveries": entry.recoveries,
            "last_active_op": entry.last_active_op,
        }
        if entry.live:
            out.update(
                {
                    "queue_depth": entry.session.queue.depth,
                    "applied_seq": entry.session.applied_seq,
                    # Exactly-once resume: a client whose submit's fate
                    # is ambiguous (timeout) reads next_seq to learn
                    # how much of its batch landed before resubmitting.
                    "next_seq": entry.session.queue.next_seq,
                    "cut": entry.session.cut_size(),
                }
            )
        return out
