"""The multi-tenant partition server (asyncio front-end).

``PartitionServer`` hosts many tenants, each owning journaled
:class:`~repro.stream.session.StreamSession`\\ s multiplexed over a
shared pool of simulated devices (:class:`~repro.serve.registry.
DeviceWorker`).  Two listeners:

* a TCP listener speaking the framed JSON protocol of
  :mod:`repro.serve.protocol` (one request/response per frame,
  pipelined per connection);
* an HTTP listener with ``GET /metrics`` (Prometheus text format
  0.0.4, every per-tenant series carrying a ``tenant`` label) and
  ``GET /healthz``.

Request path, in order — each stage rejects with a *typed* code before
any later stage runs, so a rejected request never touches engine state:

1. **parse** — malformed frames and unknown ops (``bad-request`` /
   ``unknown-op``);
2. **shed** — global backlog hysteresis (``shed-overload``), submits
   only: drains always pass;
3. **admit** — per-tenant quotas (``quota-sessions`` /
   ``quota-queue`` / ``quota-cycles``);
4. **execute** — under the session's device-worker lock; the ledger
   cycle delta is charged to ``(worker, tenant)``.

Engine work runs synchronously on the event loop: the simulated device
executes one kernel stream at a time anyway, so a worker's lock — not a
thread pool — is the faithful model of the shared device, and keeping
the engine loop-confined means no cross-thread ledger races.

The server never calls wall-clock time: idle eviction uses the
registry's op counter, budget windows use worker cycle clocks, and the
scheduler deadline stays disabled unless a session opts in — which is
what makes hosted runs bit-identical to standalone ones.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, Optional

from repro.obs.dashboard import render_dashboard
from repro.obs.distrib import (
    FlightRecorder,
    TraceRecorder,
    make_trace_id,
    parse_wire_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    merge_into,
    to_prometheus_labeled,
)
from repro.obs.tracer import Tracer, span
from repro.serve.protocol import (
    E_BACKPRESSURE,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_SHED_OVERLOAD,
    E_UNKNOWN_OP,
    E_UNKNOWN_TENANT,
    encode_frame,
    error_response,
    ok_response,
    read_frame_async,
    write_frame_async,
)
from repro.serve.quotas import (
    SERVE_LATENCY_OPS,
    TenantAccount,
    TenantQuota,
)
from repro.serve.registry import (
    SessionEntry,
    SessionRegistry,
    partition_sha256,
)
from repro.serve.shedding import LoadShedder, ShedPolicy
from repro.serve.supervision import WorkerSupervisor
from repro.stream.journal import decode_modifier
from repro.utils.errors import (
    BackpressureError,
    ReproError,
    ServeError,
    WorkerFault,
)
from repro.utils.faultinject import ServeFaultPlan

#: Protocol/server version reported by the ``hello`` op.
SERVE_PROTOCOL_VERSION = 1


@dataclass
class _RequestTrace:
    """Per-request distributed-trace bookkeeping.

    Lives in the task-local :data:`_REQ_TRACE` contextvar — never on
    the server object — because concurrent connections interleave at
    every ``await`` and a shared attribute would attribute one
    request's cycles to another's span.
    """

    trace_id: str
    op: str
    tenant: str
    attempt: int = 0
    #: The client span id carried on the wire (this op span's parent).
    parent: Optional[int] = None
    #: This request's op span id (None when only the flight ring is on).
    span_id: Optional[int] = None
    depth: int = 0
    start: float = 0.0
    #: Settled ledger cycles accumulated while handling this request.
    cycles: float = 0.0
    worker: Optional[int] = None

    def context(self, worker: Optional[int] = None) -> dict:
        """The ``trace`` dict stamped on every span of this request."""
        out: dict = {
            "id": self.trace_id,
            "op": self.op,
            "attempt": self.attempt,
        }
        if self.tenant:
            out["tenant"] = self.tenant
        index = worker if worker is not None else self.worker
        if index is not None:
            out["worker"] = index
        return out


#: The in-flight request's trace context (asyncio-task-local).
_REQ_TRACE: "contextvars.ContextVar[Optional[_RequestTrace]]" = (
    contextvars.ContextVar("repro_serve_request_trace", default=None)
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`PartitionServer` needs to boot.

    Attributes:
        host: Bind address for both listeners.
        port / http_port: TCP ports (0 = ephemeral; read the bound
            ports off ``server.tcp_port`` / ``server.http_port``).
        data_dir: Root for per-session journals
            (``<data_dir>/<tenant>/<session>/``); None uses a
            process-lifetime temporary directory.
        workers: Simulated devices in the shared pool.
        default_quota: Quota for tenants not named in ``quotas``.
        quotas: Per-tenant quota overrides.
        shed: Global load-shedding policy.
        idle_evict_after_ops: Evict sessions untouched for this many
            registry operations (0 disables idle eviction).
        auto_register_tenants: Unknown tenants get an account with
            ``default_quota`` on first use; when False they are
            rejected with ``unknown-tenant``.
        recover: Re-materialize every session recorded in
            ``data_dir``'s serve WAL before the listeners open (the
            disaster-recovery path; requires a persistent
            ``data_dir``).
        enable_chaos: Accept the ``kill-worker`` chaos op and honor an
            injected ``fault_plan``.  Off by default — a production
            server must not expose a remote kill switch.
        fault_plan: Armed :class:`~repro.utils.faultinject.
            ServeFaultPlan` whose faults fire at the execute/response
            stages (ignored unless ``enable_chaos``).
        trace_recorder: Shared :class:`~repro.obs.distrib.
            TraceRecorder` joining server/worker/engine spans to the
            client's; None (the default) disables tracing — every
            trace branch then costs one attribute read.
        flight_capacity: Ring size of the crash flight recorder; 0
            (the default) disables it.  When on, the ring is dumped to
            ``data_dir/flightrec-*.jsonl`` on chaos faults, worker
            death, and unclean shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: int = 0
    data_dir: Optional[str] = None
    workers: int = 1
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Optional[Dict[str, TenantQuota]] = None
    shed: ShedPolicy = field(default_factory=ShedPolicy)
    idle_evict_after_ops: int = 0
    auto_register_tenants: bool = True
    recover: bool = False
    enable_chaos: bool = False
    fault_plan: Optional[ServeFaultPlan] = None
    trace_recorder: Optional[TraceRecorder] = None
    flight_capacity: int = 0


class PartitionServer:
    """Multi-tenant streaming partition service over shared devices."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        if self.config.data_dir is not None:
            self._tmpdir: Optional[TemporaryDirectory] = None
            data_dir = Path(self.config.data_dir)
        else:
            self._tmpdir = TemporaryDirectory(prefix="repro-serve-")
            data_dir = Path(self._tmpdir.name)
        self.registry = SessionRegistry(
            data_dir,
            workers=self.config.workers,
            idle_evict_after_ops=self.config.idle_evict_after_ops,
        )
        self.tenants: Dict[str, TenantAccount] = {}
        for name in sorted(self.config.quotas or {}):
            self.tenants[name] = TenantAccount(
                name, self.config.quotas[name]
            )
        self.metrics = MetricsRegistry()
        self.shedder = LoadShedder(self.config.shed, self.metrics)
        self._connections = self.metrics.counter(
            "serve_connections_total", "TCP protocol connections accepted"
        )
        self._requests = self.metrics.counter(
            "serve_requests_total", "protocol requests handled"
        )
        self._rejected = self.metrics.counter(
            "serve_rejected_total", "requests rejected with a typed error"
        )
        self._evictions = self.metrics.counter(
            "serve_evictions_total", "session evictions (explicit + idle)"
        )
        self._scrapes = self.metrics.counter(
            "serve_http_scrapes_total", "GET /metrics requests served"
        )
        self._sessions_gauge = self.metrics.gauge(
            "serve_sessions_live", "live sessions across all tenants"
        )
        self.supervisor = WorkerSupervisor(
            self.registry,
            self.metrics,
            shedder=self.shedder,
            on_recovery=self._on_recovery,
            on_worker_dead=self._on_worker_dead,
        )
        self.fault_plan = (
            self.config.fault_plan if self.config.enable_chaos else None
        )
        self.recorder = self.config.trace_recorder
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(
                capacity=self.config.flight_capacity, session="serve"
            )
            if self.config.flight_capacity > 0
            else None
        )
        self._flight_dumps = self.metrics.counter(
            "serve_flight_dumps_total",
            "flight-recorder dumps written on faults/crashes",
        )
        #: Server-minted trace ids for untraced requests (a counter,
        #: never wall clock, so seeded runs stay bit-identical).
        self._trace_counter = 0
        #: Set by :meth:`_crash`: the process "died" — shutdown must
        #: skip every graceful-close step so journals and the serve WAL
        #: are left exactly as a real crash would.
        self.crashed = False
        self._op_in_flight: Optional[str] = None
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------------------

    @property
    def tcp_port(self) -> int:
        if self._tcp_server is None:
            raise ServeError("server is not started")
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> int:
        if self._http_server is None:
            raise ServeError("server is not started")
        return self._http_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        cfg = self.config
        if cfg.recover:
            self.recover_sessions()
        self._tcp_server = await asyncio.start_server(
            self._handle_protocol, host=cfg.host, port=cfg.port
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, host=cfg.host, port=cfg.http_port
        )

    def recover_sessions(self) -> list:
        """Re-materialize every WAL-recorded session (crash recovery).

        Runs before the listeners open, so the first request a client
        sends after restart already sees its sessions.  Each session
        rebuilt from a journal counts as a per-tenant recovery, with the
        replay's ledger cycles attributed as recovery cost.
        """
        recovered = self.registry.recover_entries()
        for entry in recovered:
            account = self.tenant(entry.tenant)
            if entry.recoveries > 0:
                # charged_cycles on the fresh post-recover ledger is
                # exactly the journal replay's cost.
                account.record_recovery(entry.charged_cycles)
            account.charge_cycles(entry.charged_cycles)
            self._record_replay(
                "serve.recover.replay", entry, entry.charged_cycles
            )
        self._publish_usage()
        return recovered

    def _on_recovery(
        self, entry: SessionEntry, replay_cycles: float
    ) -> None:
        """Supervisor callback: attribute a failover to its tenant."""
        account = self.tenant(entry.tenant)
        account.record_recovery(replay_cycles)
        account.charge_cycles(replay_cycles)
        self._record_replay(
            "serve.failover.replay", entry, replay_cycles
        )

    def _record_replay(
        self, name: str, entry: SessionEntry, replay_cycles: float
    ) -> None:
        """Trace + flight-record one journal replay (boot recovery or
        failover), re-attached under the session's *originating* trace
        so a trace query for the create shows its afterlife too."""
        trace_id = entry.origin_trace or make_trace_id(
            entry.tenant, entry.name, 0
        )
        recorder = self.recorder
        if recorder is not None:
            recorder.record_span(
                name,
                trace={
                    "id": trace_id,
                    "tenant": entry.tenant,
                    "op": "replay",
                    "worker": entry.worker.index,
                },
                start=recorder.now(),
                duration=0.0,
                device_cycles=replay_cycles,
            )
        if self.flight is not None:
            self.flight.record(
                "recovery",
                name=name,
                tenant=entry.tenant,
                session=entry.name,
                trace=trace_id,
                replay_cycles=replay_cycles,
            )

    def _on_worker_dead(self, worker) -> None:
        """Supervisor callback: a dead worker is about to be drained —
        dump the flight ring so the black box survives the failover."""
        if self.flight is None:
            return
        self.flight.record(
            "worker_dead", worker=worker.index, fault=worker.fault
        )
        self._dump_flight(f"worker-{worker.index}-dead")

    def _dump_flight(self, reason: str) -> Optional[Path]:
        """Write the flight ring next to the WAL (None when off)."""
        flight = self.flight
        if flight is None:
            return None
        path = flight.dump(self.registry.data_dir, reason)
        self._flight_dumps.inc()
        return path

    def _crash(self) -> None:
        """Simulate a process kill: listeners vanish, nothing is
        flushed, suspended, compacted, or closed gracefully."""
        if self.flight is not None:
            self.flight.record("crash", reason="crash_after_wal")
            self._dump_flight("crash")
        self.crashed = True
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        self._tcp_server = None
        self._http_server = None
        asyncio.get_running_loop().stop()

    async def stop(self) -> None:
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._tcp_server = None
        self._http_server = None
        self.registry.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- tenant accounts -----------------------------------------------------------

    def tenant(self, name: str) -> TenantAccount:
        account = self.tenants.get(name)
        if account is None:
            if not self.config.auto_register_tenants:
                raise ServeError(
                    f"unknown tenant {name!r}", code=E_UNKNOWN_TENANT
                )
            account = TenantAccount(name, self.config.default_quota)
            self.tenants[name] = account
        return account

    def _publish_usage(self) -> None:
        live_total = 0
        for name in sorted(self.tenants):
            account = self.tenants[name]
            entries = self.registry.entries_for(name)
            live = self.registry.live_session_count(name)
            account.publish_usage(
                live, self.registry.queued_modifiers(name)
            )
            account.publish_resilience(
                sum(e.quarantined for e in entries),
                sum(e.dead_lettered for e in entries),
            )
            live_total += live
        self._sessions_gauge.set(live_total)

    # -- protocol listener ---------------------------------------------------------

    async def _handle_protocol(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.inc()
        try:
            while True:
                try:
                    request = await read_frame_async(reader)
                except ServeError as err:
                    await write_frame_async(
                        writer, error_response(err.code, str(err))
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                if await self._send_response(writer, request, response):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished; nothing to answer
        finally:
            writer.close()

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        request: dict,
        response: dict,
    ) -> bool:
        """Write one response frame, honoring any armed response-stage
        fault.  Returns True when the connection must close.

        Every fault here fires *after* the op executed and journaled —
        the state is durable, only the ack is lost — which is exactly
        the ambiguity window retrying clients must survive.
        """
        plan = self.fault_plan
        fault = (
            plan.take("response", request.get("op"))
            if plan is not None
            else None
        )
        if fault is None:
            await write_frame_async(writer, response)
            return False
        if self.flight is not None:
            self.flight.record(
                "fault",
                stage="response",
                fault=fault.kind,
                op=request.get("op"),
            )
            if fault.kind != "crash_after_wal":
                # crash_after_wal dumps inside _crash, with the crash
                # event ringed after the fault event.
                self._dump_flight(f"fault-{fault.kind}")
        if fault.kind == "delay_response":
            await asyncio.sleep(fault.delay)
            await write_frame_async(writer, response)
            return False
        if fault.kind == "drop_connection":
            return True
        if fault.kind == "torn_response":
            frame = encode_frame(response)
            writer.write(frame[: plan.torn_length(fault, len(frame))])
            await writer.drain()
            return True
        # crash_after_wal: the whole process dies between the durable
        # write and the ack.
        self._crash()
        return True

    async def _dispatch(self, request: dict) -> dict:
        self._requests.inc()
        op = request.get("op")
        handler = _OPS.get(op)
        if handler is None:
            self._rejected.inc()
            if self.flight is not None:
                self.flight.record(
                    "reject", op=str(op), code=E_UNKNOWN_OP
                )
            return error_response(
                E_UNKNOWN_OP, f"unknown op {op!r}"
            )
        self._op_in_flight = op if isinstance(op, str) else None
        started = time.perf_counter()
        try:
            tctx = self._trace_begin(request, op)
        except ValueError as err:
            self._rejected.inc()
            self._op_in_flight = None
            return error_response(
                E_BAD_REQUEST, f"malformed trace context: {err}"
            )
        token = _REQ_TRACE.set(tctx)
        try:
            response = await handler(self, request)
        except ServeError as err:
            self._rejected.inc()
            tenant = request.get("tenant")
            if isinstance(tenant, str) and tenant in self.tenants:
                self.tenants[tenant].record_reject()
            response = error_response(err.code, str(err))
        except BackpressureError as err:
            self._rejected.inc()
            response = error_response(E_BACKPRESSURE, str(err))
        except ReproError as err:
            self._rejected.inc()
            response = error_response(
                E_INTERNAL, f"{type(err).__name__}: {err}"
            )
        finally:
            _REQ_TRACE.reset(token)
            self._op_in_flight = None
        self._finish_request(
            tctx, op, request, response, time.perf_counter() - started
        )
        # Supervision before the response leaves: a worker that died
        # during this op has its sessions restored on survivors *now*,
        # so the client's retry of the failed (retryable) request finds
        # the session already failed over.
        try:
            self.supervisor.sweep()
        except ServeError:
            # Every worker is dead: nothing to drain onto.  The pool
            # stays degraded (healthz 503) and execution ops keep
            # failing typed until a restart recovers from journals.
            pass
        evicted = self.registry.sweep_idle()
        if evicted:
            self._evictions.inc(len(evicted))
        self._publish_usage()
        return response

    # -- request tracing -----------------------------------------------------------

    def _trace_begin(
        self, request: dict, op
    ) -> Optional[_RequestTrace]:
        """Open the request's trace context (None when tracing and the
        flight ring are both off — the zero-cost path).

        A malformed wire ``trace`` raises ``ValueError``, which dispatch
        maps to a typed ``bad-request``: a corrupt trace header must
        never be silently treated as an untraced request.
        """
        recorder = self.recorder
        flight = self.flight
        if recorder is None and flight is None:
            return None
        wire = parse_wire_trace(request)
        tenant = request.get("tenant")
        tenant = tenant if isinstance(tenant, str) else ""
        if wire is not None:
            trace_id = wire["id"]
            parent = wire["parent"]
            attempt = wire["attempt"]
        else:
            # Untraced client: mint a server-side id so the request's
            # spans still group (a counter, never clock or RNG).
            trace_id = make_trace_id(
                tenant or "-", str(op), self._trace_counter
            )
            self._trace_counter += 1
            parent = None
            attempt = 0
        tctx = _RequestTrace(
            trace_id=trace_id,
            op=str(op),
            tenant=tenant,
            attempt=attempt,
            parent=parent,
        )
        if recorder is not None:
            tctx.span_id = recorder.next_span_id()
            tctx.depth = 1 if parent is not None else 0
            tctx.start = recorder.now()
        if flight is not None:
            flight.record(
                "request",
                op=str(op),
                tenant=tenant,
                trace=trace_id,
                attempt=attempt,
            )
        return tctx

    def _finish_request(
        self,
        tctx: Optional[_RequestTrace],
        op,
        request: dict,
        response: dict,
        elapsed: float,
    ) -> None:
        """Close out one dispatched request: latency histogram, op
        span (with its settled cycle attribution), flight records."""
        if isinstance(op, str) and op in SERVE_LATENCY_OPS:
            tenant = request.get("tenant")
            account = (
                self.tenants.get(tenant)
                if isinstance(tenant, str)
                else None
            )
            if account is not None:
                account.observe_op_latency(op, elapsed)
        if tctx is None:
            return
        recorder = self.recorder
        event = None
        if recorder is not None:
            event = recorder.record_span(
                f"serve.{tctx.op}",
                trace=tctx.context(),
                span_id=tctx.span_id,
                parent=tctx.parent,
                depth=tctx.depth,
                start=tctx.start,
                duration=recorder.now() - tctx.start,
                device_cycles=tctx.cycles,
            )
        flight = self.flight
        if flight is not None:
            if event is not None:
                flight.note_span(event)
            flight.record(
                "response",
                op=tctx.op,
                ok=bool(response.get("ok")),
                code=response.get("code"),
                trace=tctx.trace_id,
            )

    def _charge(
        self, entry: SessionEntry, account: TenantAccount
    ) -> float:
        """Settle the entry's ledger delta onto worker + tenant,
        mirroring it into the in-flight request's trace context —
        the same float, so op-span attribution is bit-exact against
        ``serve_tenant_device_cycles_total``."""
        delta = self.registry.settle_cycles(entry)
        account.charge_cycles(delta)
        tctx = _REQ_TRACE.get()
        if tctx is not None:
            tctx.cycles += delta
            tctx.worker = entry.worker.index
        return delta

    def _run_traced(
        self,
        entry: SessionEntry,
        tctx: _RequestTrace,
        recorder: TraceRecorder,
        fn,
    ):
        """Run ``fn()`` with an engine tracer active, then graft its
        spans and kernel aggregates under the request's op span.

        The module-global tracer is activated only around this fully
        *synchronous* call — never across an ``await`` — so concurrent
        requests interleaving on the event loop can never cross their
        tracers.
        """
        ledger = (
            entry.session.partitioner.ctx.ledger if entry.live else None
        )
        tracer = Tracer(ledger=ledger, session=tctx.trace_id)
        offset = recorder.now()
        try:
            with tracer.activate():
                with span("serve.worker.execute"):
                    return fn()
        finally:
            # Fold even on failure: a faulted execute keeps its partial
            # engine spans, which is what the post-mortem wants.
            recorder.fold(
                tracer.events,
                trace=tctx.context(worker=entry.worker.index),
                parent=tctx.span_id,
                base_depth=tctx.depth + 1,
                start_offset=offset,
            )

    # -- op helpers ----------------------------------------------------------------

    @staticmethod
    def _require_str(request: dict, key: str) -> str:
        value = request.get(key)
        if not isinstance(value, str) or not value:
            raise ServeError(
                f"request is missing string field {key!r}",
                code=E_BAD_REQUEST,
            )
        return value

    def _entry_for(self, request: dict) -> SessionEntry:
        """Resolve (tenant, session), transparently re-attaching."""
        tenant = self._require_str(request, "tenant")
        name = self._require_str(request, "session")
        self.tenant(tenant)  # registers or rejects
        return self.registry.attach(tenant, name)

    async def _run_on_worker(
        self, entry: SessionEntry, account: TenantAccount, fn
    ):
        """Execute ``fn()`` under the device-worker lock, then settle
        the ledger delta onto both the worker (attribution) and the
        tenant account (metrics + window budget).

        Worker faults surface here: an injected ``worker_abort`` kills
        the worker *before* the op touches session state, and any
        non-library exception from the engine is treated as a device
        loss (fail-stop) — both raise the retryable
        :class:`~repro.utils.errors.WorkerFault`, and the dispatch
        loop's supervisor sweep restores the lost sessions before the
        error response is sent.
        """
        async with entry.worker.lock:
            if not entry.worker.alive:
                raise WorkerFault(
                    f"device worker {entry.worker.index} is dead "
                    f"({entry.worker.fault})"
                )
            plan = self.fault_plan
            fault = (
                plan.take("execute", self._op_in_flight)
                if plan is not None
                else None
            )
            if fault is not None:
                entry.worker.fail(f"injected {fault.kind}")
                if self.flight is not None:
                    self.flight.record(
                        "fault",
                        stage="execute",
                        fault=fault.kind,
                        op=self._op_in_flight,
                        worker=entry.worker.index,
                    )
                    self._dump_flight(f"fault-{fault.kind}")
                raise WorkerFault(
                    f"device worker {entry.worker.index} aborted "
                    "(injected fault)"
                )
            try:
                recorder = self.recorder
                tctx = _REQ_TRACE.get()
                if recorder is not None and tctx is not None:
                    return self._run_traced(entry, tctx, recorder, fn)
                return fn()
            except ReproError:
                raise
            except Exception as err:
                entry.worker.fail(f"{type(err).__name__}: {err}")
                raise WorkerFault(
                    f"device worker {entry.worker.index} faulted: "
                    f"{type(err).__name__}: {err}"
                ) from err
            finally:
                self._charge(entry, account)

    async def _settle(
        self, entry: SessionEntry, account: TenantAccount
    ) -> None:
        await self._run_on_worker(entry, account, lambda: None)

    # -- ops -----------------------------------------------------------------------

    async def _op_hello(self, request: dict) -> dict:
        return ok_response(
            server="repro-serve",
            protocol=SERVE_PROTOCOL_VERSION,
            workers=len(self.registry.workers),
        )

    async def _op_create(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        session_name = self._require_str(request, "session")
        account = self.tenant(tenant_name)
        account.record_request()
        code = account.admit_session(
            self.registry.live_session_count(tenant_name)
        )
        if code is not None:
            account.record_reject()
            self._rejected.inc()
            return error_response(
                code,
                f"tenant {tenant_name!r} is at its session quota "
                f"({account.quota.max_sessions})",
            )
        graph_spec = request.get("graph")
        k = request.get("k")
        if not isinstance(k, int) or k < 2:
            raise ServeError(
                "create needs an integer k >= 2", code=E_BAD_REQUEST
            )
        target = request.get("target_batch_size")
        if target is not None and (
            not isinstance(target, int) or target < 1
        ):
            raise ServeError(
                "target_batch_size must be a positive integer",
                code=E_BAD_REQUEST,
            )
        tctx = _REQ_TRACE.get()

        def construct():
            return self.registry.create(
                tenant_name,
                session_name,
                graph_spec,
                k=k,
                seed=int(request.get("seed", 0)),
                target_batch_size=target,
                queue_capacity=int(request.get("queue_capacity", 4096)),
                policy=str(request.get("policy", "reject")),
                origin_trace=(
                    tctx.trace_id if tctx is not None else None
                ),
            )

        recorder = self.recorder
        if recorder is not None and tctx is not None:
            # Construction runs before the session has a worker, so it
            # is traced here (synchronously, on the loop thread) rather
            # than in _run_on_worker; its cycles settle via _settle.
            tracer = Tracer(session=tctx.trace_id)
            offset = recorder.now()
            try:
                with tracer.activate():
                    with span("serve.registry.create"):
                        entry = construct()
            finally:
                recorder.fold(
                    tracer.events,
                    trace=tctx.context(),
                    parent=tctx.span_id,
                    base_depth=tctx.depth + 1,
                    start_offset=offset,
                )
        else:
            entry = construct()
        await self._settle(entry, account)
        return ok_response(
            cut=entry.session.cut_size(),
            worker=entry.worker.index,
        )

    async def _op_attach(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        entry = self._entry_for(request)
        await self._settle(entry, account)
        return ok_response(**self.registry.info(entry))

    async def _op_submit(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        raw = request.get("modifiers")
        if not isinstance(raw, list) or not raw:
            raise ServeError(
                "submit needs a non-empty modifiers list",
                code=E_BAD_REQUEST,
            )
        try:
            modifiers = [decode_modifier(record) for record in raw]
        except (ReproError, TypeError, KeyError) as err:
            raise ServeError(
                f"undecodable modifier: {err}", code=E_BAD_REQUEST
            ) from err
        # Stage 2: global shedding — before the session is even
        # attached, so an evicted session is not re-hydrated just to
        # have its submit shed.
        if self.shedder.should_shed_submit(
            self.registry.queued_modifiers()
        ):
            account.record_shed()
            account.record_reject()
            self._rejected.inc()
            if self.flight is not None:
                self.flight.record(
                    "reject",
                    op="submit",
                    tenant=tenant_name,
                    code=E_SHED_OVERLOAD,
                )
            return error_response(
                E_SHED_OVERLOAD,
                "server is shedding submits under backlog pressure "
                "(back off and resubmit)",
            )
        entry = self._entry_for(request)
        # Stage 3: tenant quotas.
        code = account.admit_submit(
            self.registry.queued_modifiers(tenant_name),
            len(modifiers),
            entry.worker.total_cycles,
        )
        if code is not None:
            account.record_reject()
            self._rejected.inc()
            if self.flight is not None:
                self.flight.record(
                    "reject",
                    op="submit",
                    tenant=tenant_name,
                    code=code,
                )
            return error_response(
                code,
                f"tenant {tenant_name!r} quota {code} rejected a "
                f"{len(modifiers)}-modifier submit",
            )

        def work():
            return [entry.session.submit(m) for m in modifiers]

        seqs = await self._run_on_worker(entry, account, work)
        return ok_response(
            accepted=len(seqs),
            first_seq=seqs[0],
            last_seq=seqs[-1],
            queue_depth=entry.session.queue.depth,
            applied_seq=entry.session.applied_seq,
        )

    async def _op_flush(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        entry = self._entry_for(request)
        drain = bool(request.get("drain", True))

        def work():
            if drain:
                return entry.session.drain()
            report = entry.session.flush()
            return [report] if report is not None else []

        reports = await self._run_on_worker(entry, account, work)
        return ok_response(
            flushed_windows=len(reports),
            applied=sum(r.applied_count for r in reports),
            cut=entry.session.cut_size(),
            queue_depth=entry.session.queue.depth,
            applied_seq=entry.session.applied_seq,
        )

    async def _op_checkpoint(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        entry = self._entry_for(request)

        def work():
            entry.session.checkpoint()
            return None

        await self._run_on_worker(entry, account, work)
        return ok_response(
            checkpoints=entry.session.telemetry.checkpoints_written
        )

    async def _op_evict(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        name = self._require_str(request, "session")
        entry = self.registry.get(tenant_name, name)
        was_live = entry.live
        async with entry.worker.lock:
            self._charge(entry, account)
            self.registry.evict(tenant_name, name)
        if was_live:
            self._evictions.inc()
        return ok_response(evicted=was_live)

    async def _op_digest(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        entry = self._entry_for(request)
        digest = await self._run_on_worker(
            entry,
            account,
            lambda: partition_sha256(entry.session.partition),
        )
        return ok_response(
            sha256=digest,
            cut=entry.session.cut_size(),
            applied_seq=entry.session.applied_seq,
        )

    async def _op_metrics(self, request: dict) -> dict:
        tenant_name = self._require_str(request, "tenant")
        account = self.tenant(tenant_name)
        account.record_request()
        return ok_response(
            metrics=self._tenant_registry(tenant_name).as_dict()
        )

    async def _op_stats(self, request: dict) -> dict:
        return ok_response(
            sessions=len(self.registry),
            op_counter=self.registry.op_counter,
            tenants=sorted(self.tenants),
            shedding=self.shedder.shedding,
            backlog=self.registry.queued_modifiers(),
            workers=[w.as_dict() for w in self.registry.workers],
            supervisor=self.supervisor.status(),
            server_metrics=self.metrics.as_dict(),
        )

    async def _op_kill_worker(self, request: dict) -> dict:
        """Chaos op: declare a device worker dead and fail over.

        Gated behind ``enable_chaos`` — a production server must not
        expose a remote kill switch.  Refuses to kill the last alive
        worker: with no survivor to drain onto, failover is impossible
        and only a process restart could recover.
        """
        if not self.config.enable_chaos:
            raise ServeError(
                "kill-worker requires enable_chaos",
                code=E_UNKNOWN_OP,
            )
        index = request.get("worker")
        if not isinstance(index, int) or not (
            0 <= index < len(self.registry.workers)
        ):
            raise ServeError(
                "kill-worker needs a valid integer worker index",
                code=E_BAD_REQUEST,
            )
        alive = self.supervisor.alive_workers
        if len(alive) <= 1 and self.registry.workers[index].alive:
            raise ServeError(
                "refusing to kill the last alive worker",
                code=E_BAD_REQUEST,
            )
        restored = self.supervisor.fail_worker(
            index, str(request.get("reason", "chaos kill-worker"))
        )
        return ok_response(
            killed=index,
            restored=[
                {"tenant": e.tenant, "session": e.name}
                for e in restored
            ],
            degraded=self.supervisor.degraded,
        )

    # -- metrics aggregation --------------------------------------------------------

    def _tenant_registry(self, tenant_name: str) -> MetricsRegistry:
        """One merged registry per tenant: account counters plus the
        sum of the tenant's live sessions' ``obs`` registries."""
        merged = MetricsRegistry()
        account = self.tenants.get(tenant_name)
        if account is not None:
            merge_into(merged, account.registry)
        for entry in self.registry.entries_for(tenant_name):
            if entry.live:
                entry.session.telemetry.publish_to(entry.session.obs)
                merge_into(merged, entry.session.obs)
        return merged

    def prometheus(self) -> str:
        """The full scrape: labeled per-tenant series + server series."""
        self._publish_usage()
        labeled = to_prometheus_labeled(
            {
                name: self._tenant_registry(name)
                for name in sorted(self.tenants)
            },
            label="tenant",
        )
        return labeled + self.metrics.to_prometheus()

    # -- HTTP listener ---------------------------------------------------------------

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we only route on path.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path.split("?")[0] == "/metrics":
                self._scrapes.inc()
                body = self.prometheus().encode("utf-8")
                content_type = (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                status = "200 OK"
            elif path.split("?")[0] == "/debug/dashboard":
                body = render_dashboard(
                    self.prometheus(),
                    title="repro-serve live dashboard",
                ).encode("utf-8")
                content_type = "text/html; charset=utf-8"
                status = "200 OK"
            elif path.split("?")[0] == "/healthz":
                if self.supervisor.degraded:
                    body = (
                        json.dumps(
                            self.supervisor.status(), sort_keys=True
                        ).encode("utf-8")
                        + b"\n"
                    )
                    content_type = "application/json; charset=utf-8"
                    status = "503 Service Unavailable"
                else:
                    body = b"ok\n"
                    content_type = "text/plain; charset=utf-8"
                    status = "200 OK"
            else:
                body = b"not found\n"
                content_type = "text/plain; charset=utf-8"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # scraper vanished mid-response
        finally:
            writer.close()


#: Dispatch table: wire op name -> handler coroutine.
_OPS = {
    "hello": PartitionServer._op_hello,
    "create": PartitionServer._op_create,
    "attach": PartitionServer._op_attach,
    "submit": PartitionServer._op_submit,
    "flush": PartitionServer._op_flush,
    "checkpoint": PartitionServer._op_checkpoint,
    "evict": PartitionServer._op_evict,
    "digest": PartitionServer._op_digest,
    "metrics": PartitionServer._op_metrics,
    "stats": PartitionServer._op_stats,
    "kill-worker": PartitionServer._op_kill_worker,
}


class ServerThread:
    """Run a :class:`PartitionServer` on a background event loop.

    The in-process harness the gate, tests, benchmarks, and examples
    share: boot, read the bound ports, drive it from blocking client
    code, stop.  Usable as a context manager.
    """

    def __init__(self, config: ServerConfig | None = None):
        self.server = PartitionServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self.tcp_port = 0
        self.http_port = 0

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._boot_error is not None:
            raise ServeError(
                f"server failed to boot: {self._boot_error}"
            ) from self._boot_error
        if not self._started.is_set():
            raise ServeError("server did not boot within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
            self.tcp_port = self.server.tcp_port
            self.http_port = self.server.http_port
        except OSError as err:  # bind failure
            self._boot_error = err
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            if self.server.crashed:
                # Simulated kill: no graceful close — abandon every
                # in-flight task so journals stay exactly as the
                # "dying" process left them.  The abandoned tasks'
                # done-callbacks would otherwise spam CancelledError
                # tracebacks through the loop's exception handler.
                self._loop.set_exception_handler(
                    lambda loop, context: None
                )
                pending = [
                    t
                    for t in asyncio.all_tasks(self._loop)
                    if not t.done()
                ]
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(
                            *pending, return_exceptions=True
                        )
                    )
            else:
                self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    @property
    def crashed(self) -> bool:
        return self.server.crashed

    def join_crashed(self, timeout: float = 30.0) -> None:
        """Wait for an injected ``crash_after_wal`` to take the server
        down (the loop stops itself; no stop signal is sent)."""
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
