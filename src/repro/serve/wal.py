"""Durable serve-layer manifest: the registry's write-ahead log.

The per-session modifier WAL already exists — every hosted
:class:`~repro.stream.session.StreamSession` journals submits before
ack and checkpoints under ``data_dir/<tenant>/<session>/``.  What a
server crash loses is the layer *above* the sessions: which sessions
exist at all (their construction parameters), and how many device
cycles each had already been charged.  :class:`ServeWAL` journals
exactly that into ``data_dir/serve-manifest.log`` as JSON lines:

.. code-block:: text

    {"r":"c","t":"acme","n":"s0","p":{"graph":{...},"k":4,...}}
    {"r":"s","t":"acme","n":"s0","c":1234.5}

* ``"c"`` (*create*) is appended — write, flush, fsync — **before**
  the session object is constructed.  Recovery re-creates sessions in
  manifest order, which reproduces the registry's round-robin worker
  assignment (``created_count % pool_size``) bit-identically when the
  pool size is unchanged.
* ``"s"`` (*settle*) records the session's cumulative lifetime device
  cycles at the moment its engine checkpoint was written.  Recovery
  restores that figure into worker/tenant attribution, and the
  deterministic replay of post-checkpoint flush windows re-charges the
  remainder — so recovered cycle totals equal the uncrashed run's.

Durability idiom matches :mod:`repro.stream.journal`: appends are
fsynced, a crash-torn final line is truncated before the next append
(:func:`repro.stream.journal.trim_torn_tail`), and compaction rewrites
the file via temp file → fsync → ``os.replace`` → directory fsync.

Crash consistency of ``create``: the manifest line lands before the
session's first checkpoint.  A crash in between leaves a create record
whose journal directory has no checkpoint; recovery re-creates the
session from its (deterministic, seeded) parameters — the state the
acked create would have produced.  Since the client never saw the ack,
"session exists, freshly created" is a legal post-crash outcome.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.tracer import span
from repro.stream.journal import trim_torn_tail
from repro.utils.errors import JournalError

MANIFEST_NAME = "serve-manifest.log"


@dataclass
class ManifestState:
    """Everything :meth:`ServeWAL.load` recovers."""

    #: ``(tenant, name, params)`` in creation order (first record wins
    #: for a duplicated key — later ones would be compaction artifacts).
    creates: List[Tuple[str, str, dict]] = field(default_factory=list)
    #: Latest settled lifetime cycles per ``(tenant, name)``.
    settled_cycles: Dict[Tuple[str, str], float] = field(
        default_factory=dict
    )
    #: Originating trace id per ``(tenant, name)`` — the distributed
    #: trace of the ``create`` request, when the client sent one.  Kept
    #: out of ``creates`` so its tuples stay ``(tenant, name, params)``.
    origin_traces: Dict[Tuple[str, str], str] = field(
        default_factory=dict
    )


class ServeWAL:
    """Append-only session manifest for one server data directory."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log: Optional[TextIO] = None

    @property
    def path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def exists(self) -> bool:
        return self.path.exists()

    # -- appending -----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        """Durable append: the record survives a crash after return."""
        with span("serve.wal.append"):
            if self._log is None:
                trim_torn_tail(self.path)
                self._log = self.path.open("a", encoding="utf-8")
            self._log.write(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            self._log.flush()
            os.fsync(self._log.fileno())

    def append_create(
        self,
        tenant: str,
        name: str,
        params: dict,
        trace: Optional[str] = None,
    ) -> None:
        """Journal a session's existence before constructing it.

        ``params`` must be the complete, JSON-able construction
        signature (graph spec, k, seed, scheduler/queue settings) —
        recovery rebuilds the session from nothing but this record and
        the session's own journal directory.  ``trace`` optionally
        records the originating distributed-trace id (``"tr"`` key), so
        recovery replay spans can re-attach to the create's trace.
        """
        record = {"r": "c", "t": tenant, "n": name, "p": params}
        if trace is not None:
            record["tr"] = trace
        self._append(record)

    def append_settle(
        self, tenant: str, name: str, cycles: float
    ) -> None:
        """Journal a session's cumulative lifetime device cycles.

        Written whenever the session's engine checkpoint is (evict,
        idle sweep, explicit checkpoint, shutdown) so the durable
        figure and the checkpoint cursor always correspond: replaying
        the post-checkpoint suffix re-derives exactly the cycles this
        record does not cover.
        """
        self._append(
            {"r": "s", "t": tenant, "n": name, "c": float(cycles)}
        )

    # -- recovery ------------------------------------------------------------------

    def load(self) -> ManifestState:
        """Parse the manifest, discarding a crash-torn tail."""
        state = ManifestState()
        if not self.path.exists():
            return state
        seen: set = set()
        trim_torn_tail(self.path)
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("r")
                if kind == "c":
                    key = (record["t"], record["n"])
                    if key in seen:
                        continue
                    seen.add(key)
                    params = record.get("p", {})
                    if not isinstance(params, dict):
                        raise JournalError(
                            f"manifest create record for {key} has "
                            f"non-object params"
                        )
                    state.creates.append((key[0], key[1], params))
                    trace = record.get("tr")
                    if isinstance(trace, str) and trace:
                        state.origin_traces[key] = trace
                elif kind == "s":
                    key = (record["t"], record["n"])
                    state.settled_cycles[key] = float(record["c"])
                else:
                    raise JournalError(
                        f"unknown manifest record kind {kind!r}"
                    )
        return state

    # -- compaction ----------------------------------------------------------------

    def compact(self) -> None:
        """Rewrite the manifest to one create + one settle per session.

        Temp file → fsync → ``os.replace`` → directory fsync, so a
        crash at any point leaves a complete manifest on disk.
        """
        state = self.load()
        if self._log is not None:
            self._log.close()
            self._log = None
        lines: List[str] = []
        for tenant, name, params in state.creates:
            create: dict = {
                "r": "c",
                "t": tenant,
                "n": name,
                "p": params,
            }
            trace = state.origin_traces.get((tenant, name))
            if trace is not None:
                create["tr"] = trace
            lines.append(
                json.dumps(create, separators=(",", ":"))
            )
            cycles = state.settled_cycles.get((tenant, name))
            if cycles is not None:
                lines.append(
                    json.dumps(
                        {"r": "s", "t": tenant, "n": name, "c": cycles},
                        separators=(",", ":"),
                    )
                )
        tmp = self.directory / (MANIFEST_NAME + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None
