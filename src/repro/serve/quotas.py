"""Per-tenant quotas and admission control.

Every tenant the server hosts gets a :class:`TenantAccount`: its quota,
its metrics registry (one scrape label per tenant), and the live usage
the admission checks read.  Admission runs *before* any engine work and
returns a typed error code from :mod:`repro.serve.protocol`, so a
rejected request costs no simulated device cycles and never touches
session state.

Three budgets, all reusing machinery the stream layer already has:

* **sessions** — at most ``max_sessions`` concurrently *live* (not
  evicted) sessions.  Evicted sessions don't count: their state lives
  in the journal, not on a device.
* **queued modifiers** — the sum of the tenant's session ingest-queue
  depths stays under ``max_queued_modifiers``; past it, submits are
  rejected with ``quota-queue`` (the multi-session analogue of one
  session's ``"reject"`` backpressure policy).
* **device cycles per window** — each request's simulated-device cost
  (the session ledger's cycle delta) is charged to the tenant; once a
  window's budget is spent, work-adding requests get ``quota-cycles``
  until the window rolls.  Windows are anchored to the *worker's*
  aggregate cycle clock, so the accounting is deterministic for a given
  request order — no wall time anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import (
    E_QUOTA_CYCLES,
    E_QUOTA_QUEUE,
    E_QUOTA_SESSIONS,
)

#: Ops whose per-tenant serve latency is histogrammed — the closed set
#: of engine-touching wire ops (``hello``/``stats`` are free).
SERVE_LATENCY_OPS = (
    "attach",
    "checkpoint",
    "create",
    "evict",
    "flush",
    "submit",
)

#: Latency bucket upper bounds (seconds).  Chosen around the serve
#: SLO: the dashboard draws its threshold line at
#: :data:`SERVE_LATENCY_SLO_SECONDS`, which is also a bucket bound so
#: "within SLO" is exactly a cumulative bucket read.
SERVE_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    1.0,
    float("inf"),
)

#: Default per-op latency objective the dashboard visualizes.
SERVE_LATENCY_SLO_SECONDS = 0.025


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    Attributes:
        max_sessions: Concurrent live sessions (evicted ones are free).
        max_queued_modifiers: Total pending modifiers across the
            tenant's session ingest queues.
        cycle_budget_per_window: Simulated device cycles the tenant may
            consume per accounting window; None disables the budget.
        window_cycles: Window length on the worker's aggregate cycle
            clock.
    """

    max_sessions: int = 8
    max_queued_modifiers: int = 4096
    cycle_budget_per_window: Optional[float] = None
    window_cycles: float = 1e9

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_queued_modifiers < 1:
            raise ValueError("max_queued_modifiers must be >= 1")
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if (
            self.cycle_budget_per_window is not None
            and self.cycle_budget_per_window <= 0
        ):
            raise ValueError(
                "cycle_budget_per_window must be positive (or None)"
            )


class TenantAccount:
    """One tenant's quota, usage, and metrics registry."""

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.registry = MetricsRegistry()
        self.cycles_total = 0.0
        self._window_index = 0
        self._window_cycles_used = 0.0
        self._requests = self.registry.counter(
            "serve_tenant_requests_total",
            "requests handled for this tenant",
        )
        self._rejected = self.registry.counter(
            "serve_tenant_rejected_total",
            "requests rejected by admission control",
        )
        self._shed = self.registry.counter(
            "serve_tenant_shed_total",
            "requests shed under load pressure",
        )
        self._cycles = self.registry.counter(
            "serve_tenant_device_cycles_total",
            "simulated device cycles charged to this tenant",
        )
        self._sessions_gauge = self.registry.gauge(
            "serve_tenant_sessions_live",
            "live (non-evicted) sessions owned by this tenant",
        )
        self._queued_gauge = self.registry.gauge(
            "serve_tenant_queued_modifiers",
            "pending modifiers across this tenant's ingest queues",
        )
        self._recoveries = self.registry.counter(
            "serve_tenant_recoveries_total",
            "tenant sessions rebuilt from their journal after state "
            "loss (server restart or worker failover)",
        )
        self._recovery_cycles = self.registry.counter(
            "serve_tenant_recovery_replay_cycles_total",
            "simulated device cycles spent replaying this tenant's "
            "journals during recovery",
        )
        self._quarantined_gauge = self.registry.gauge(
            "serve_tenant_quarantined_modifiers",
            "poison modifiers currently quarantined across this "
            "tenant's sessions",
        )
        self._dead_letter_gauge = self.registry.gauge(
            "serve_tenant_dead_letters",
            "permanently rejected modifiers recorded in this tenant's "
            "journals",
        )
        #: Per-op serve latency histograms.  They live in the tenant's
        #: own registry, so the /metrics scrape renders them through
        #: ``to_prometheus_labeled`` with the tenant label attached —
        #: the ``unlabeled-tenant-metric`` lint contract.
        self._op_latency = {}
        for op in SERVE_LATENCY_OPS:
            self._op_latency[op] = self.registry.histogram(
                f"serve_tenant_op_latency_seconds_{op}",
                f"request latency of {op} ops for this tenant "
                "(host seconds, cumulative buckets)",
                buckets=SERVE_LATENCY_BUCKETS,
            )

    # -- bookkeeping ---------------------------------------------------------------

    def record_request(self) -> None:
        self._requests.inc()

    def record_reject(self) -> None:
        self._rejected.inc()

    def record_shed(self) -> None:
        self._shed.inc()

    def observe_op_latency(self, op: str, seconds: float) -> None:
        """Histogram one request's host latency (no-op for ops outside
        :data:`SERVE_LATENCY_OPS`)."""
        histogram = self._op_latency.get(op)
        if histogram is not None:
            histogram.observe(seconds)

    def publish_usage(self, live_sessions: int, queued: int) -> None:
        self._sessions_gauge.set(live_sessions)
        self._queued_gauge.set(queued)

    def record_recovery(self, replay_cycles: float) -> None:
        """Count one journal-rebuild of a tenant session and the
        simulated cycles its replay consumed."""
        self._recoveries.inc()
        if replay_cycles > 0:
            self._recovery_cycles.inc(replay_cycles)

    def publish_resilience(
        self, quarantined: int, dead_letters: int
    ) -> None:
        """Refresh the tenant's quarantine/dead-letter exposure.

        Fed from the registry's per-entry telemetry caches so the
        figures stay current even while every session is evicted."""
        self._quarantined_gauge.set(quarantined)
        self._dead_letter_gauge.set(dead_letters)

    def charge_cycles(self, delta: float) -> None:
        """Attribute ``delta`` simulated device cycles to this tenant."""
        if delta < 0:
            raise ValueError("cycle charge must be non-negative")
        self.cycles_total += delta
        self._window_cycles_used += delta
        self._cycles.inc(delta)

    def roll_window(self, worker_cycles: float) -> None:
        """Reset the window budget when the worker clock crosses a
        window boundary.  Called before each admission check."""
        index = int(worker_cycles // self.quota.window_cycles)
        if index > self._window_index:
            self._window_index = index
            self._window_cycles_used = 0.0

    @property
    def window_cycles_used(self) -> float:
        return self._window_cycles_used

    # -- admission -----------------------------------------------------------------

    def admit_session(self, live_sessions: int) -> Optional[str]:
        """Code rejecting a new session, or None to admit."""
        if live_sessions >= self.quota.max_sessions:
            return E_QUOTA_SESSIONS
        return None

    def admit_submit(
        self, queued: int, incoming: int, worker_cycles: float
    ) -> Optional[str]:
        """Code rejecting an ``incoming``-modifier submit, or None.

        ``queued`` is the tenant's current total ingest-queue depth;
        ``worker_cycles`` the assigned worker's aggregate clock (rolls
        the budget window).
        """
        if queued + incoming > self.quota.max_queued_modifiers:
            return E_QUOTA_QUEUE
        budget = self.quota.cycle_budget_per_window
        if budget is not None:
            self.roll_window(worker_cycles)
            if self._window_cycles_used >= budget:
                return E_QUOTA_CYCLES
        return None
