"""Blocking client for the partition server.

:class:`ServeClient` is intentionally boring: one stdlib TCP socket,
one request/response frame at a time, typed errors surfaced as
:class:`~repro.utils.errors.ServeError` with the server's error code
attached.  It exists so examples, gates, and benchmarks can drive a
:class:`~repro.serve.server.PartitionServer` without touching asyncio —
including from the same process, against a
:class:`~repro.serve.server.ServerThread`.

Failure handling, in three tiers:

* **Typed rejections** (:data:`~repro.serve.protocol.RETRYABLE_CODES`)
  — quota windows, load shedding, ingest backpressure — clear on their
  own.  :meth:`ServeClient.submit_with_retry` backs off (bounded
  exponential delay with *seeded* jitter, so two identical runs retry
  identically), asks the server to flush the session (draining is what
  actually lowers backlog in the simulated-time world), and resubmits
  the same slice.
* **Timeouts** — every request runs under a per-call deadline; when it
  elapses the socket is poisoned (a late response would desynchronize
  the framing), so the client closes it and raises the typed
  :class:`~repro.utils.errors.ServeTimeout`.
* **Ambiguous failures** (:data:`~repro.serve.protocol.
  AMBIGUOUS_CODES`: timeouts, connections lost mid-request, worker
  faults) — the request may have executed before the response was
  lost.  The retry loop reconnects, re-attaches, and compares the
  session's ``next_seq`` against the last acknowledged sequence to
  learn exactly how much of the in-flight slice landed, then resubmits
  only the remainder — exactly-once submission over an at-least-once
  transport.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Callable, List, Optional, Sequence

from repro.graph.modifiers import Modifier
from repro.obs.distrib import TraceRecorder, make_trace_id, wire_trace
from repro.serve.protocol import (
    AMBIGUOUS_CODES,
    E_INTERNAL,
    RETRYABLE_CODES,
    encode_frame,
    raise_for_response,
    read_frame,
)
from repro.stream.journal import encode_modifier
from repro.utils.errors import ServeError, ServeTimeout


class ServeClient:
    """Synchronous framed-JSON client bound to one tenant.

    Usable as a context manager; the connection closes on exit.

    Args:
        host / port / tenant: Where and who.
        timeout: Default per-request deadline in seconds (None
            disables it); individual calls may override via their
            ``timeout=`` keyword.
        retry_seed: Seeds the backoff jitter, making retry schedules
            reproducible run-to-run.
        backoff_base / backoff_max: Exponential backoff envelope for
            :meth:`submit_with_retry` (seconds).
        sleep: Injectable sleep for tests (defaults to
            :func:`time.sleep`).
        trace_recorder: Optional :class:`~repro.obs.distrib.
            TraceRecorder`.  When set, every request is stamped with a
            deterministic ``trace`` context (id = per-client op
            counter, never a clock) carried in the wire frame, and the
            client records one ``client.<op>`` root span per call —
            retry attempts of one logical submit share a trace id and
            are distinguished by their ``attempt`` number.  Share the
            recorder with an in-process server (``ServerConfig.
            trace_recorder``) and the server's op/worker/engine spans
            join the same trace under the client root.  None (the
            default) keeps the request path trace-free at the cost of
            one attribute read per call.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout: Optional[float] = 30.0,
        retry_seed: int = 0,
        backoff_base: float = 0.002,
        backoff_max: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        trace_recorder: Optional[TraceRecorder] = None,
    ):
        if backoff_base <= 0 or backoff_max <= 0:
            raise ValueError("backoff envelope must be positive")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = random.Random(retry_seed)
        self._sleep = sleep
        self._trace_recorder = trace_recorder
        #: Per-client request counter: the deterministic trace-id
        #: source (two seeded runs number their requests identically).
        self._trace_counter = 0
        self._sock: Optional[socket.socket] = None
        self.reconnect()

    def reconnect(self) -> None:
        """(Re)open the TCP connection, dropping any poisoned socket."""
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------------

    def call(
        self,
        op: str,
        timeout: Optional[float] = None,
        trace_ctx: Optional[dict] = None,
        **fields,
    ) -> dict:
        """One request/response; raises typed :class:`ServeError` on a
        failure response, :class:`ServeTimeout` when the per-call
        deadline (``timeout`` here, else the constructor default)
        elapses.  Timeouts and mid-request disconnects poison the
        socket — the next call must :meth:`reconnect` first (the retry
        loop does this automatically).

        ``trace_ctx`` (``{"id": ..., "attempt": ...}``) pins this call
        to an existing trace — the retry loop uses it so every attempt
        of one logical submit, plus its resync attaches, shares one
        trace id.  Without it a traced call mints a fresh id from the
        client's request counter.
        """
        if self._sock is None:
            raise ServeError("client is closed")
        request = {"op": op, "tenant": self.tenant}
        request.update(fields)
        recorder = self._trace_recorder
        if recorder is None:
            return self._roundtrip(op, request, timeout)
        if trace_ctx is None:
            trace_id = make_trace_id(
                self.tenant, op, self._trace_counter
            )
            self._trace_counter += 1
            attempt = 0
        else:
            trace_id = trace_ctx["id"]
            attempt = int(trace_ctx.get("attempt", 0))
        span_id = recorder.next_span_id()
        request["trace"] = wire_trace(
            trace_id, parent_span=span_id, attempt=attempt
        )
        start = recorder.now()
        try:
            return self._roundtrip(op, request, timeout)
        finally:
            # Recorded even when the call fails: a timed-out or
            # rejected attempt is exactly what the trace must show.
            recorder.record_span(
                f"client.{op}",
                trace={
                    "id": trace_id,
                    "tenant": self.tenant,
                    "op": op,
                    "attempt": attempt,
                },
                span_id=span_id,
                parent=None,
                depth=0,
                start=start,
                duration=recorder.now() - start,
            )

    def _roundtrip(
        self, op: str, request: dict, timeout: Optional[float]
    ) -> dict:
        """Encode, send, and await one framed request/response."""
        # Encode before touching the socket: an unencodable request
        # (e.g. over MAX_FRAME) is a caller bug, not a transport fault,
        # and must not poison the connection or read as retryable.
        frame = encode_frame(request)
        deadline = self.timeout if timeout is None else timeout
        self._sock.settimeout(deadline)
        try:
            self._sock.sendall(frame)
            response = read_frame(self._sock)
        except socket.timeout:
            self.close()
            raise ServeTimeout(
                f"no response to {op!r} within {deadline}s "
                "(request fate unknown)"
            ) from None
        except (ConnectionResetError, BrokenPipeError) as err:
            self.close()
            raise ServeError(
                f"connection lost during {op!r}: {err}",
                code=E_INTERNAL,
                retryable=True,
            ) from err
        except ServeError as err:
            # Frame-level failure (torn frame, mid-frame EOF): the
            # request was delivered but its answer is unreadable —
            # ambiguous and retryable, on a fresh connection (the
            # stream position of this one is unknowable).
            self.close()
            raise ServeError(
                f"response to {op!r} lost mid-frame: {err}",
                code=E_INTERNAL,
                retryable=True,
            ) from err
        if response is None:
            self.close()
            raise ServeError(
                f"server closed the connection after {op!r} "
                "(response lost)",
                code=E_INTERNAL,
                retryable=True,
            )
        return raise_for_response(response)

    # -- convenience wrappers ------------------------------------------------------

    def hello(self) -> dict:
        return self.call("hello")

    def create(
        self,
        session: str,
        graph: dict,
        k: int,
        seed: int = 0,
        target_batch_size: Optional[int] = None,
        **extra,
    ) -> dict:
        fields = dict(
            session=session, graph=graph, k=k, seed=seed, **extra
        )
        if target_batch_size is not None:
            fields["target_batch_size"] = target_batch_size
        return self.call("create", **fields)

    def attach(
        self, session: str, trace_ctx: Optional[dict] = None
    ) -> dict:
        return self.call("attach", session=session, trace_ctx=trace_ctx)

    def submit(
        self,
        session: str,
        modifiers: Sequence[Modifier],
        timeout: Optional[float] = None,
        trace_ctx: Optional[dict] = None,
    ) -> dict:
        return self.call(
            "submit",
            session=session,
            timeout=timeout,
            trace_ctx=trace_ctx,
            modifiers=[encode_modifier(m) for m in modifiers],
        )

    def flush(
        self,
        session: str,
        drain: bool = True,
        trace_ctx: Optional[dict] = None,
    ) -> dict:
        return self.call(
            "flush", session=session, drain=drain, trace_ctx=trace_ctx
        )

    def checkpoint(self, session: str) -> dict:
        return self.call("checkpoint", session=session)

    def evict(self, session: str) -> dict:
        return self.call("evict", session=session)

    def digest(self, session: str) -> dict:
        return self.call("digest", session=session)

    def metrics(self) -> dict:
        return self.call("metrics")

    def stats(self) -> dict:
        return self.call("stats")

    def kill_worker(self, index: int, reason: str = "chaos") -> dict:
        """Chaos op (server must run with ``enable_chaos``)."""
        return self.call("kill-worker", worker=index, reason=reason)

    # -- retry loop ----------------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        """Sleep the bounded-exponential, seeded-jitter delay for
        ``attempt`` (0-based).  Jitter draws from the client's seeded
        RNG, so a rerun with the same seed backs off identically."""
        ceiling = min(
            self.backoff_max, self.backoff_base * (2**attempt)
        )
        self._sleep(ceiling * (0.5 + 0.5 * self._rng.random()))

    def submit_with_retry(
        self,
        session: str,
        modifiers: Sequence[Modifier],
        max_attempts: int = 16,
        chunk: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        """Submit exactly-once through retryable failures.

        Submits ``modifiers`` (in ``chunk``-sized slices when given)
        with ``max_attempts`` bounded attempts per slice and jittered
        exponential backoff between attempts.  Three recovery paths:

        * pre-engine rejections (shed / quota / backpressure): flush
          the session — the act that drains backlog in simulated
          time — and resubmit the same slice;
        * ambiguous failures (timeout, lost connection, worker fault):
          reconnect, re-attach, and resync on the session's
          ``next_seq`` so only the unlanded suffix is resubmitted —
          never a duplicate, never a gap;
        * non-retryable errors propagate immediately.

        A resynced slice that turns out to have fully landed yields a
        synthesized response with ``"resynced": True`` so accepted
        counts still sum to ``len(modifiers)``.

        With a trace recorder attached, each slice gets one trace id;
        every attempt (and each attempt's resync attach or recovery
        flush) carries that id with an increasing ``attempt`` number,
        so the exported trace links the whole retry history of one
        logical submit.
        """
        responses: List[dict] = []
        pending = list(modifiers)
        if not pending:
            return responses
        size = len(pending) if chunk is None else chunk
        if size < 1:
            raise ValueError("chunk must be >= 1")
        # Sequence baseline for ambiguity resolution: everything below
        # next_seq at this instant is previous traffic, not ours.
        next_seq = self.attach(session).get("next_seq")
        while pending:
            batch, rest = pending[:size], pending[size:]
            slice_trace: Optional[dict] = None
            if self._trace_recorder is not None:
                slice_trace = {
                    "id": make_trace_id(
                        self.tenant, "submit", self._trace_counter
                    )
                }
                self._trace_counter += 1
            for attempt in range(max_attempts):
                # Only supply trace_ctx when tracing is on: untraced
                # calls keep the pre-tracing signature.
                traced = (
                    {}
                    if slice_trace is None
                    else {
                        "trace_ctx": {
                            "id": slice_trace["id"],
                            "attempt": attempt,
                        }
                    }
                )
                trace_ctx = traced.get("trace_ctx")
                try:
                    response = self.submit(
                        session, batch, timeout=timeout, **traced
                    )
                    responses.append(response)
                    next_seq = response["last_seq"] + 1
                    break
                except ServeError as err:
                    retryable = (
                        err.retryable or err.code in RETRYABLE_CODES
                    )
                    if not retryable or attempt == max_attempts - 1:
                        raise
                    self._backoff(attempt)
                    if self._sock is None:
                        self.reconnect()
                    if err.code in AMBIGUOUS_CODES:
                        batch, next_seq, landed = self._resync(
                            session, batch, next_seq, trace_ctx
                        )
                        if landed is not None:
                            responses.append(landed)
                        if not batch:
                            break
                    elif not isinstance(err, ServeTimeout):
                        # Typed pre-engine reject: drain, then retry.
                        self.flush(session, drain=True, **traced)
            pending = rest
        return responses

    def _resync(
        self,
        session: str,
        batch: List[Modifier],
        expected_next: Optional[int],
        trace_ctx: Optional[dict] = None,
    ):
        """Resolve an ambiguous failure: how much of ``batch`` landed?

        Re-attaches (which also rides out a failover — the restored
        session answers) and compares the server's ``next_seq`` to the
        last acknowledged one.  Returns the unlanded suffix, the new
        baseline, and a synthesized response covering the landed prefix
        (None when nothing landed).
        """
        if trace_ctx is None:
            info = self.attach(session)
        else:
            info = self.attach(session, trace_ctx=trace_ctx)
        observed = info.get("next_seq")
        if expected_next is None or observed is None:
            return batch, observed, None
        landed = min(max(observed - expected_next, 0), len(batch))
        if landed == 0:
            return batch, observed, None
        synthesized = {
            "ok": True,
            "accepted": landed,
            "first_seq": expected_next,
            "last_seq": expected_next + landed - 1,
            "resynced": True,
        }
        return batch[landed:], observed, synthesized
