"""Blocking client for the partition server.

:class:`ServeClient` is intentionally boring: one stdlib TCP socket,
one request/response frame at a time, typed errors surfaced as
:class:`~repro.utils.errors.ServeError` with the server's error code
attached.  It exists so examples, gates, and benchmarks can drive a
:class:`~repro.serve.server.PartitionServer` without touching asyncio —
including from the same process, against a
:class:`~repro.serve.server.ServerThread`.

Retry contract: any response whose code is in
:data:`~repro.serve.protocol.RETRYABLE_CODES` (quota windows, load
shedding, ingest backpressure) clears on its own once the server drains
backlog.  :meth:`ServeClient.submit_with_retry` encodes the productive
back-off for the simulated-time world: on a retryable reject it asks
the server to *flush* the session (draining is what actually lowers
the backlog — sleeping wouldn't, since the server never looks at wall
time) and resubmits the same modifiers.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence

from repro.graph.modifiers import Modifier
from repro.serve.protocol import (
    RETRYABLE_CODES,
    raise_for_response,
    read_frame,
    write_frame,
)
from repro.stream.journal import encode_modifier
from repro.utils.errors import ServeError


class ServeClient:
    """Synchronous framed-JSON client bound to one tenant.

    Usable as a context manager; the connection closes on exit.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout: float = 30.0,
    ):
        self.tenant = tenant
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------------

    def call(self, op: str, **fields) -> dict:
        """One request/response; raises typed :class:`ServeError` on
        a failure response."""
        if self._sock is None:
            raise ServeError("client is closed")
        request = {"op": op, "tenant": self.tenant}
        request.update(fields)
        write_frame(self._sock, request)
        response = read_frame(self._sock)
        if response is None:
            raise ServeError("server closed the connection")
        return raise_for_response(response)

    # -- convenience wrappers ------------------------------------------------------

    def hello(self) -> dict:
        return self.call("hello")

    def create(
        self,
        session: str,
        graph: dict,
        k: int,
        seed: int = 0,
        target_batch_size: Optional[int] = None,
        **extra,
    ) -> dict:
        fields = dict(
            session=session, graph=graph, k=k, seed=seed, **extra
        )
        if target_batch_size is not None:
            fields["target_batch_size"] = target_batch_size
        return self.call("create", **fields)

    def attach(self, session: str) -> dict:
        return self.call("attach", session=session)

    def submit(
        self, session: str, modifiers: Sequence[Modifier]
    ) -> dict:
        return self.call(
            "submit",
            session=session,
            modifiers=[encode_modifier(m) for m in modifiers],
        )

    def flush(self, session: str, drain: bool = True) -> dict:
        return self.call("flush", session=session, drain=drain)

    def checkpoint(self, session: str) -> dict:
        return self.call("checkpoint", session=session)

    def evict(self, session: str) -> dict:
        return self.call("evict", session=session)

    def digest(self, session: str) -> dict:
        return self.call("digest", session=session)

    def metrics(self) -> dict:
        return self.call("metrics")

    def stats(self) -> dict:
        return self.call("stats")

    # -- retry loop ----------------------------------------------------------------

    def submit_with_retry(
        self,
        session: str,
        modifiers: Sequence[Modifier],
        max_attempts: int = 16,
        chunk: Optional[int] = None,
    ) -> List[dict]:
        """Submit, flushing-and-retrying through retryable rejects.

        Submits ``modifiers`` (in ``chunk``-sized slices when given);
        on a retryable code the session is flushed — the act that
        drains backlog in simulated time — and the *same slice* is
        resubmitted, so a shed or quota reject never drops or reorders
        work.  Non-retryable errors propagate immediately.
        """
        responses: List[dict] = []
        pending = list(modifiers)
        if not pending:
            return responses
        size = len(pending) if chunk is None else chunk
        if size < 1:
            raise ValueError("chunk must be >= 1")
        while pending:
            batch, rest = pending[:size], pending[size:]
            for attempt in range(max_attempts):
                try:
                    responses.append(self.submit(session, batch))
                    break
                except ServeError as err:
                    if (
                        err.code not in RETRYABLE_CODES
                        or attempt == max_attempts - 1
                    ):
                        raise
                    self.flush(session, drain=True)
            pending = rest
        return responses
