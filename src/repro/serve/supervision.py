"""Worker supervision: detect dead device workers and fail over.

The pool's failure model is *fail-stop* (the standard model for device
loss): a :class:`~repro.serve.registry.DeviceWorker` that faults never
executes again, and every session resident on it loses its in-memory
engine state.  Nothing durable is lost — each session's journal holds
its last checkpoint plus the WAL'd modifier suffix — so failover is
recovery: rebuild each lost session on a surviving worker via
:meth:`SessionRegistry.restore` and keep serving.

Supervisor state machine (per worker)::

            fault observed / injected
    ALIVE ──────────────────────────────> DEAD (unswept)
                                            │ sweep() / fail_worker()
                                            ▼
                                       DEAD (drained)
      sessions dropped + restored on survivors, watermarks tightened

A worker is marked dead either explicitly (:meth:`fail_worker`, the
chaos path) or by observation: the server wraps unexpected execution
errors as :class:`~repro.utils.errors.WorkerFault` and records the
fault on the worker; the next :meth:`sweep` — which the server runs
after every dispatch — notices and drains it.  Sweeping is idempotent
and deterministic: entries are drained in sorted key order and placed
round-robin over the sorted survivors.

Degradation is graceful, never corrupting: while any worker is dead
the supervisor reports *degraded* (surfaced as HTTP 503 on
``/healthz``) and scales the :class:`~repro.serve.shedding.LoadShedder`
watermarks by the alive fraction, so admission tightens to what the
shrunken pool can actually carry.

Everything the supervisor does is observable: ``serve_worker_*``
gauges/counters for pool health and ``serve_recovery_*`` counters for
failover volume and replay cost land in the server's metrics registry;
per-tenant recovery counts flow through the ``on_recovery`` callback
(the server wires it to each :class:`~repro.serve.quotas.
TenantAccount`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.registry import (
    DeviceWorker,
    SessionEntry,
    SessionRegistry,
)
from repro.serve.shedding import LoadShedder
from repro.utils.errors import ServeError
from repro.serve.protocol import E_WORKER_FAILED


class WorkerSupervisor:
    """Health authority for the device-worker pool."""

    def __init__(
        self,
        registry: SessionRegistry,
        metrics: MetricsRegistry,
        shedder: Optional[LoadShedder] = None,
        on_recovery: Optional[
            Callable[[SessionEntry, float], None]
        ] = None,
        on_worker_dead: Optional[
            Callable[[DeviceWorker], None]
        ] = None,
    ):
        self.registry = registry
        self.shedder = shedder
        self.on_recovery = on_recovery
        #: Fired once per dead worker, before its sessions drain — the
        #: server's flight recorder dumps its ring here so the black
        #: box captures the pool state *at* the failure, not after the
        #: failover already rewrote it.
        self.on_worker_dead = on_worker_dead
        #: Workers marked dead whose sessions were already drained.
        self._drained: set = set()
        self._alive_gauge = metrics.gauge(
            "serve_workers_alive", "device workers still executing"
        )
        self._dead_gauge = metrics.gauge(
            "serve_workers_dead", "device workers lost to faults"
        )
        self._failures = metrics.counter(
            "serve_worker_failures_total",
            "device workers declared dead",
        )
        self._failovers = metrics.counter(
            "serve_recovery_sessions_total",
            "sessions restored onto survivors after a worker death",
        )
        self._replay_cycles = metrics.counter(
            "serve_recovery_replay_cycles_total",
            "simulated device cycles spent replaying journals during "
            "failover",
        )
        self._publish_pool()

    # -- queries -------------------------------------------------------------------

    @property
    def alive_workers(self) -> List[DeviceWorker]:
        return [w for w in self.registry.workers if w.alive]

    @property
    def dead_workers(self) -> List[DeviceWorker]:
        return [w for w in self.registry.workers if not w.alive]

    @property
    def degraded(self) -> bool:
        """True while any worker is dead (the pool is browned out)."""
        return bool(self.dead_workers)

    def status(self) -> dict:
        """Wire-friendly pool health (the ``/healthz`` payload)."""
        return {
            "degraded": self.degraded,
            "workers_alive": len(self.alive_workers),
            "workers_dead": len(self.dead_workers),
            "dead": [
                {"index": w.index, "fault": w.fault}
                for w in self.dead_workers
            ],
        }

    # -- failure handling ----------------------------------------------------------

    def fail_worker(
        self, index: int, reason: str
    ) -> List[SessionEntry]:
        """Declare worker ``index`` dead and fail its sessions over.

        Idempotent; returns the entries restored by this call.
        """
        if not 0 <= index < len(self.registry.workers):
            raise ServeError(
                f"no device worker {index}", code=E_WORKER_FAILED
            )
        worker = self.registry.workers[index]
        if worker.alive:
            worker.fail(reason)
            self._failures.inc()
        return self.sweep()

    def sweep(self) -> List[SessionEntry]:
        """Drain every dead-but-undrained worker; returns restored
        entries.  Safe to call after every dispatch — it is a no-op
        while the pool is healthy."""
        restored: List[SessionEntry] = []
        for worker in self.registry.workers:
            if worker.alive or worker.index in self._drained:
                continue
            if self.on_worker_dead is not None:
                self.on_worker_dead(worker)
            restored.extend(self._drain(worker))
            self._drained.add(worker.index)
        if restored or self._publish_pool():
            self._tighten()
        return restored

    def _drain(self, worker: DeviceWorker) -> List[SessionEntry]:
        """Move every session off a dead worker, journal-first."""
        survivors = self.alive_workers
        if not survivors:
            raise ServeError(
                "every device worker is dead; cannot fail over",
                code=E_WORKER_FAILED,
            )
        restored: List[SessionEntry] = []
        entries = self.registry.entries_on_worker(worker)
        for position, entry in enumerate(entries):
            target = survivors[position % len(survivors)]
            if not entry.live:
                # Evicted sessions hold no device state to lose: just
                # re-point at a survivor; attach revives them lazily.
                entry.worker = target
                continue
            # Fail-stop: in-memory state is gone, drop without
            # checkpointing, then rebuild from the journal.
            self.registry.drop_lost(entry)
            self.registry.restore(entry, target)
            replay = entry.charged_cycles  # fresh ledger == replay cost
            self._failovers.inc()
            if replay > 0:
                self._replay_cycles.inc(replay)
            if self.on_recovery is not None:
                self.on_recovery(entry, replay)
            restored.append(entry)
        return restored

    # -- degradation ---------------------------------------------------------------

    def _publish_pool(self) -> bool:
        alive = len(self.alive_workers)
        dead = len(self.dead_workers)
        self._alive_gauge.set(alive)
        self._dead_gauge.set(dead)
        return dead > 0

    def _tighten(self) -> None:
        if self.shedder is None:
            return
        total = len(self.registry.workers)
        alive = len(self.alive_workers)
        if alive:
            self.shedder.set_capacity_fraction(alive / total)
