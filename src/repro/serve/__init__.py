"""repro.serve: multi-tenant partition serving over shared devices.

The serving layer hosts many tenants' journaled
:class:`~repro.stream.session.StreamSession`\\ s behind one asyncio
server (framed JSON over TCP, Prometheus over HTTP), multiplexed over a
shared pool of simulated devices with per-tenant admission control,
global load shedding, and per-tenant metric labels.  See
``ARCHITECTURE.md`` §12 for the design and ``tools/serve_gate.py`` for
the bit-identity + attribution invariants the layer must keep.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME,
    RETRYABLE_CODES,
    error_response,
    ok_response,
    raise_for_response,
)
from repro.serve.quotas import TenantAccount, TenantQuota
from repro.serve.registry import (
    GRAPH_GENERATORS,
    DeviceWorker,
    SessionEntry,
    SessionRegistry,
    build_graph,
    partition_sha256,
)
from repro.serve.server import (
    PartitionServer,
    ServerConfig,
    ServerThread,
)
from repro.serve.shedding import LoadShedder, ShedPolicy

__all__ = [
    "ERROR_CODES",
    "GRAPH_GENERATORS",
    "MAX_FRAME",
    "RETRYABLE_CODES",
    "DeviceWorker",
    "LoadShedder",
    "PartitionServer",
    "ServeClient",
    "ServerConfig",
    "ServerThread",
    "SessionEntry",
    "SessionRegistry",
    "ShedPolicy",
    "TenantAccount",
    "TenantQuota",
    "build_graph",
    "error_response",
    "ok_response",
    "partition_sha256",
    "raise_for_response",
]
