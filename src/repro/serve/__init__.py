"""repro.serve: multi-tenant partition serving over shared devices.

The serving layer hosts many tenants' journaled
:class:`~repro.stream.session.StreamSession`\\ s behind one asyncio
server (framed JSON over TCP, Prometheus over HTTP), multiplexed over a
shared pool of simulated devices with per-tenant admission control,
global load shedding, and per-tenant metric labels.  The layer is
crash-recoverable: a per-tenant serve WAL re-materializes every session
after a process kill, and a worker supervisor fails sessions over to
surviving devices when one dies.  See ``ARCHITECTURE.md`` §12 for the
serving design and §14 for durability & failover;
``tools/serve_gate.py`` and ``tools/serve_chaos_gate.py`` hold the
bit-identity, attribution, and crash-convergence invariants the layer
must keep.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    AMBIGUOUS_CODES,
    ERROR_CODES,
    MAX_FRAME,
    RETRYABLE_CODES,
    error_response,
    ok_response,
    raise_for_response,
)
from repro.serve.quotas import TenantAccount, TenantQuota
from repro.serve.registry import (
    GRAPH_GENERATORS,
    DeviceWorker,
    SessionEntry,
    SessionRegistry,
    build_graph,
    partition_sha256,
)
from repro.serve.server import (
    PartitionServer,
    ServerConfig,
    ServerThread,
)
from repro.serve.shedding import LoadShedder, ShedPolicy
from repro.serve.supervision import WorkerSupervisor
from repro.serve.wal import ManifestState, ServeWAL

__all__ = [
    "AMBIGUOUS_CODES",
    "ERROR_CODES",
    "GRAPH_GENERATORS",
    "MAX_FRAME",
    "RETRYABLE_CODES",
    "DeviceWorker",
    "LoadShedder",
    "ManifestState",
    "PartitionServer",
    "ServeClient",
    "ServeWAL",
    "ServerConfig",
    "ServerThread",
    "SessionEntry",
    "SessionRegistry",
    "ShedPolicy",
    "TenantAccount",
    "TenantQuota",
    "WorkerSupervisor",
    "build_graph",
    "error_response",
    "ok_response",
    "partition_sha256",
    "raise_for_response",
]
