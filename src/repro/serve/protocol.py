"""Framed JSON wire protocol for the partition server.

A frame is a 4-byte big-endian unsigned length prefix followed by that
many bytes of UTF-8 JSON.  Requests are objects with an ``"op"`` field
plus op-specific fields (``"tenant"``, ``"session"``, ``"modifiers"``,
...); responses are objects with ``"ok": true`` plus result fields, or
``"ok": false`` plus a typed ``"error"``:

.. code-block:: text

    +----------------+----------------------------------------+
    | length (u32be) | UTF-8 JSON payload (length bytes)      |
    +----------------+----------------------------------------+

    -> {"op": "submit", "tenant": "a", "session": "s0",
        "modifiers": [{"t": "ei", "u": 3, "v": 77, "w": 1}]}
    <- {"ok": true, "accepted": 1, "queue_depth": 1}
    <- {"ok": false,
        "error": {"code": "shed-overload", "retryable": true,
                  "message": "..."}}

Modifiers ride the journal's compact encoding
(:func:`repro.stream.journal.encode_modifier`), so the wire and the
recovery log agree on one serialization.

Any request may carry an optional ``"trace"`` object —
``{"id": "<tenant>/<op>#<n>", "attempt": 0, "parent": 7}`` — minted
by a tracing client (:func:`repro.obs.distrib.wire_trace`).  A server
booted with a trace recorder joins its op/worker/engine spans to that
id, so one trace shows client→server→kernel causality across retries
and failover; servers without a recorder ignore the field, and a
malformed context is rejected with ``bad-request`` rather than
silently dropped (:func:`repro.obs.distrib.parse_wire_trace`).

Error codes are a *closed* set (:data:`ERROR_CODES`): clients dispatch
on the code, never the message, and the quota/shed codes carry
``"retryable": true`` so a generic retry loop needs no server-specific
knowledge.  Frames are capped at :data:`MAX_FRAME` bytes in both
directions — a malformed length prefix must not make either side try
to allocate gigabytes.

Both a blocking (stdlib socket, for :class:`repro.serve.client.
ServeClient`) and an asyncio flavor of the frame codec live here so
the two sides cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from repro.utils.errors import ServeError

#: Hard cap on one frame's JSON payload, either direction.
MAX_FRAME = 4 * 1024 * 1024

#: Length prefix: unsigned 32-bit big-endian.
_LEN = struct.Struct(">I")

# -- typed error codes ----------------------------------------------------------

#: Request malformed (missing/ill-typed fields, unknown modifier kind).
E_BAD_REQUEST = "bad-request"
#: The ``op`` field names no known operation.
E_UNKNOWN_OP = "unknown-op"
#: The tenant is not registered and auto-registration is disabled.
E_UNKNOWN_TENANT = "unknown-tenant"
#: No session with that name exists for the tenant.
E_UNKNOWN_SESSION = "unknown-session"
#: ``create`` named a session that already exists.
E_SESSION_EXISTS = "session-exists"
#: Tenant is at its ``max_sessions`` quota.
E_QUOTA_SESSIONS = "quota-sessions"
#: Tenant is at its ``max_queued_modifiers`` quota.
E_QUOTA_QUEUE = "quota-queue"
#: Tenant exhausted its device-cycle budget for the current window.
E_QUOTA_CYCLES = "quota-cycles"
#: The server shed the request under load pressure.
E_SHED_OVERLOAD = "shed-overload"
#: The session's bounded ingest queue rejected the modifier.
E_BACKPRESSURE = "backpressure"
#: The assigned device worker died; the supervisor is failing over.
E_WORKER_FAILED = "worker-failed"
#: Client-side only: the per-request deadline elapsed.  The server
#: never sends this code — :class:`~repro.utils.errors.ServeTimeout`
#: carries it so retry loops can dispatch on one closed set.
E_TIMEOUT = "timeout"
#: Unexpected server-side failure (the message carries the cause).
E_INTERNAL = "internal"

#: Every code a response may carry.
ERROR_CODES = frozenset(
    {
        E_BAD_REQUEST,
        E_UNKNOWN_OP,
        E_UNKNOWN_TENANT,
        E_UNKNOWN_SESSION,
        E_SESSION_EXISTS,
        E_QUOTA_SESSIONS,
        E_QUOTA_QUEUE,
        E_QUOTA_CYCLES,
        E_SHED_OVERLOAD,
        E_BACKPRESSURE,
        E_WORKER_FAILED,
        E_TIMEOUT,
        E_INTERNAL,
    }
)

#: Codes that clear on their own; clients back off and resubmit.
#: ``worker-failed`` clears once the supervisor finishes failover;
#: ``timeout`` is ambiguous (the request may have executed), so retry
#: loops must re-synchronize on the session's ``next_seq`` first.
RETRYABLE_CODES = frozenset(
    {
        E_QUOTA_QUEUE,
        E_QUOTA_CYCLES,
        E_SHED_OVERLOAD,
        E_BACKPRESSURE,
        E_WORKER_FAILED,
        E_TIMEOUT,
    }
)

#: Codes whose *fate is ambiguous*: part of the request may have
#: executed even though no success response arrived — a timeout may
#: race the response, a connection may drop after the durable write,
#: and a worker can die mid-batch with a journaled prefix that
#: failover replays.  Retry loops re-synchronize on the session's
#: ``next_seq`` (reported by ``attach``) before resubmitting, so a
#: resubmit never double-applies.  Everything else in
#: :data:`RETRYABLE_CODES` is a typed pre-engine rejection, so a plain
#: resubmit is safe.
AMBIGUOUS_CODES = frozenset({E_TIMEOUT, E_INTERNAL, E_WORKER_FAILED})


def ok_response(**fields) -> dict:
    """A success response payload."""
    out = {"ok": True}
    out.update(fields)
    return out


def error_response(code: str, message: str, **fields) -> dict:
    """A typed failure response payload.

    ``code`` must come from :data:`ERROR_CODES`; the retry hint is
    derived from :data:`RETRYABLE_CODES` so the two can never disagree.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown serve error code {code!r}")
    error = {
        "code": code,
        "message": message,
        "retryable": code in RETRYABLE_CODES,
    }
    error.update(fields)
    return {"ok": False, "error": error}


def raise_for_response(response: dict) -> dict:
    """Return ``response`` if ok, else raise the typed :class:`ServeError`."""
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise ServeError(
        error.get("message", "request failed"),
        code=error.get("code", E_INTERNAL),
        retryable=bool(error.get("retryable", False)),
    )


# -- frame codec ----------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One request/response as length-prefixed JSON bytes."""
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ServeError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}",
            code=E_BAD_REQUEST,
        )
    return _LEN.pack(len(body)) + body


def _decode_length(prefix: bytes) -> int:
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ServeError(
            f"peer announced a {length}-byte frame "
            f"(MAX_FRAME={MAX_FRAME})",
            code=E_BAD_REQUEST,
        )
    return length


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ServeError(
            f"frame payload is not valid JSON: {err}",
            code=E_BAD_REQUEST,
        ) from err
    if not isinstance(payload, dict):
        raise ServeError(
            "frame payload must be a JSON object",
            code=E_BAD_REQUEST,
        )
    return payload


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Blocking read of exactly ``n`` bytes; None on clean EOF at a
    frame boundary, :class:`ServeError` on a mid-frame disconnect."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ServeError(
                f"connection closed mid-frame ({got}/{n} bytes)",
                code=E_INTERNAL,
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[dict]:
    """Blocking frame read; None on clean EOF."""
    prefix = recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    body = recv_exact(sock, _decode_length(prefix))
    if body is None:
        raise ServeError(
            "connection closed between length prefix and payload",
            code=E_INTERNAL,
        )
    return _decode_body(body)


def write_frame(sock: socket.socket, payload: dict) -> None:
    """Blocking frame write."""
    sock.sendall(encode_frame(payload))


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Optional[dict]:
    """Async frame read; None on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ServeError(
            "connection closed mid-length-prefix", code=E_INTERNAL
        ) from err
    length = _decode_length(prefix)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise ServeError(
            f"connection closed mid-frame "
            f"({len(err.partial)}/{length} bytes)",
            code=E_INTERNAL,
        ) from err
    return _decode_body(body)


async def write_frame_async(
    writer: asyncio.StreamWriter, payload: dict
) -> None:
    """Async frame write (drains the transport)."""
    writer.write(encode_frame(payload))
    await writer.drain()
