"""``repro-serve``: run the multi-tenant partition server.

Boots a :class:`~repro.serve.server.PartitionServer` on the current
thread's event loop and prints the bound ports, one JSON object on the
first stdout line so wrappers can parse it::

    $ repro-serve --port 0 --http-port 0 --workers 2
    {"host": "127.0.0.1", "http_port": 43211, "tcp_port": 38655}

Scrape ``http://<host>:<http_port>/metrics`` for the live Prometheus
text, or open ``http://<host>:<http_port>/debug/dashboard`` for the
self-contained per-tenant HTML dashboard rendered from the same
scrape; speak the framed JSON protocol (see
:mod:`repro.serve.protocol`) to the TCP port, e.g. via
:class:`repro.serve.client.ServeClient`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

from repro.serve.quotas import TenantQuota
from repro.serve.server import PartitionServer, ServerConfig
from repro.serve.shedding import ShedPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "multi-tenant streaming partition server "
            "(framed JSON over TCP + Prometheus /metrics over HTTP)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7421,
        help="TCP protocol port (0 = ephemeral)",
    )
    parser.add_argument(
        "--http-port", type=int, default=7422,
        help="HTTP /metrics + /healthz port (0 = ephemeral)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="journal root (default: a temporary directory)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="simulated devices in the shared pool",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=8,
        help="per-tenant live-session quota",
    )
    parser.add_argument(
        "--max-queued", type=int, default=4096,
        help="per-tenant queued-modifier quota",
    )
    parser.add_argument(
        "--cycle-budget", type=float, default=None,
        help="per-tenant device-cycle budget per window (default: off)",
    )
    parser.add_argument(
        "--window-cycles", type=float, default=1e9,
        help="cycle-budget window length on the worker clock",
    )
    parser.add_argument(
        "--shed-high", type=int, default=16384,
        help="global backlog (queued modifiers) that starts shedding",
    )
    parser.add_argument(
        "--shed-low", type=int, default=None,
        help="backlog at which shedding stops (default: high/2)",
    )
    parser.add_argument(
        "--idle-evict-after-ops", type=int, default=0,
        help=(
            "checkpoint-and-evict sessions idle for this many registry "
            "operations (0 = never)"
        ),
    )
    parser.add_argument(
        "--recover", action="store_true",
        help=(
            "re-materialize every session recorded in --data-dir's "
            "serve WAL before accepting requests (disaster recovery)"
        ),
    )
    parser.add_argument(
        "--enable-chaos", action="store_true",
        help=(
            "accept the kill-worker chaos op (testing only; never "
            "expose on a production server)"
        ),
    )
    parser.add_argument(
        "--flight-capacity", type=int, default=0,
        help=(
            "crash flight-recorder ring size; dumps to "
            "<data-dir>/flightrec-*.jsonl on faults, worker death, "
            "and crashes (0 = off)"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    if args.recover and args.data_dir is None:
        raise SystemExit(
            "repro-serve: --recover needs --data-dir (a temporary "
            "directory has no WAL to recover from)"
        )
    return ServerConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        data_dir=args.data_dir,
        workers=args.workers,
        default_quota=TenantQuota(
            max_sessions=args.max_sessions,
            max_queued_modifiers=args.max_queued,
            cycle_budget_per_window=args.cycle_budget,
            window_cycles=args.window_cycles,
        ),
        shed=ShedPolicy(
            high_watermark=args.shed_high,
            low_watermark=args.shed_low,
        ),
        idle_evict_after_ops=args.idle_evict_after_ops,
        recover=args.recover,
        enable_chaos=args.enable_chaos,
        flight_capacity=args.flight_capacity,
    )


async def _serve(config: ServerConfig) -> None:
    server = PartitionServer(config)
    await server.start()
    print(
        json.dumps(
            {
                "host": config.host,
                "http_port": server.http_port,
                "tcp_port": server.tcp_port,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:
        raise
    finally:
        await server.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(config_from_args(args)))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
