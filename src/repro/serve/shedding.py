"""Load shedding: protect the shared devices when demand outruns them.

Quotas are per-tenant fairness; shedding is *global* survival.  The
pressure signal is the total backlog across every live session's ingest
queue — the work the simulated devices have accepted but not yet
executed.  When the backlog crosses the policy's high watermark the
server stops accepting work-*adding* requests (``submit``) with the
typed ``shed-overload`` rejection, while work-*draining* requests
(``flush``, ``checkpoint``, ``evict``) always pass — shedding that
blocked drains could never recover.

Hysteresis: shedding starts at ``high_watermark`` and stops only once
the backlog falls to ``low_watermark``, so the server doesn't flap
accept/reject on every request at the boundary.  Both thresholds are
counts of queued modifiers, making the whole mechanism deterministic
for a given request order.

Shed responses are retryable by contract
(:data:`repro.serve.protocol.RETRYABLE_CODES`): a client that backs
off and resubmits converges to the same partition it would have gotten
without the shed, because rejection happens before any engine state is
touched — `tools/serve_gate.py` proves this bit-identically.

Brownout: when device workers die, the surviving pool's capacity
shrinks; :meth:`LoadShedder.set_capacity_fraction` scales the
effective watermarks by the alive fraction so shedding tightens
proportionally (graceful degradation) instead of letting the smaller
pool drown under the same backlog the full pool could carry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class ShedPolicy:
    """Backlog thresholds, in queued modifiers across all sessions.

    Attributes:
        high_watermark: Backlog at (or above) which submits are shed.
        low_watermark: Backlog at which shedding stops; defaults to
            half the high watermark when None.
        rate_window: Number of recent submit decisions over which the
            ``serve_shed_rate`` gauge is computed.
    """

    high_watermark: int = 16384
    low_watermark: "int | None" = None
    rate_window: int = 128

    def __post_init__(self) -> None:
        if self.high_watermark < 1:
            raise ValueError("high_watermark must be >= 1")
        low = self.resolved_low_watermark
        if not (0 <= low <= self.high_watermark):
            raise ValueError(
                "low_watermark must be in [0, high_watermark]"
            )
        if self.rate_window < 1:
            raise ValueError("rate_window must be >= 1")

    @property
    def resolved_low_watermark(self) -> int:
        if self.low_watermark is not None:
            return self.low_watermark
        return self.high_watermark // 2


class LoadShedder:
    """Hysteresis gate over the global backlog, with a shed-rate metric."""

    def __init__(
        self, policy: ShedPolicy, registry: MetricsRegistry
    ):
        self.policy = policy
        self._shedding = False
        self._capacity_fraction = 1.0
        self._decisions: deque = deque(maxlen=policy.rate_window)
        self._shed_counter = registry.counter(
            "serve_shed_total",
            "submit requests shed under backlog pressure",
        )
        self._shedding_gauge = registry.gauge(
            "serve_shedding",
            "1 while the server is in the shedding state",
        )
        self._rate_gauge = registry.gauge(
            "serve_shed_rate",
            "shed fraction of recent submit decisions",
        )
        self._backlog_gauge = registry.gauge(
            "serve_backlog_modifiers",
            "queued modifiers across all live sessions",
        )
        self._capacity_gauge = registry.gauge(
            "serve_capacity_fraction",
            "alive fraction of the device pool scaling the watermarks",
        )
        self._capacity_gauge.set(1.0)

    @property
    def shedding(self) -> bool:
        return self._shedding

    @property
    def capacity_fraction(self) -> float:
        return self._capacity_fraction

    def set_capacity_fraction(self, fraction: float) -> None:
        """Scale the effective watermarks to the alive device fraction.

        Called by the worker supervisor on every failure/failover, so a
        brownout tightens admission *before* the shrunken pool is
        already saturated.  ``fraction`` is clamped to (0, 1]; the
        effective watermarks never drop below 1.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("capacity fraction must be in (0, 1]")
        self._capacity_fraction = fraction
        self._capacity_gauge.set(fraction)

    @property
    def effective_high_watermark(self) -> int:
        return max(
            1,
            int(self.policy.high_watermark * self._capacity_fraction),
        )

    @property
    def effective_low_watermark(self) -> int:
        return min(
            int(
                self.policy.resolved_low_watermark
                * self._capacity_fraction
            ),
            self.effective_high_watermark,
        )

    def observe_backlog(self, backlog: int) -> None:
        """Update the hysteresis state from the current global backlog."""
        self._backlog_gauge.set(backlog)
        if self._shedding:
            if backlog <= self.effective_low_watermark:
                self._shedding = False
        elif backlog >= self.effective_high_watermark:
            self._shedding = True
        self._shedding_gauge.set(int(self._shedding))

    def should_shed_submit(self, backlog: int) -> bool:
        """Decide one submit; updates state, counters, and the rate."""
        self.observe_backlog(backlog)
        shed = self._shedding
        self._decisions.append(shed)
        if shed:
            self._shed_counter.inc()
        self._rate_gauge.set(
            sum(1 for d in self._decisions if d) / len(self._decisions)
        )
        return shed
