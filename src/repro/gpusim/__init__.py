"""Warp-level GPU execution model (substrate for the CUDA kernels).

This package replaces the CUDA runtime the paper builds on.  It provides

* :class:`~repro.gpusim.context.GpuContext` -- the simulated device,
* :class:`~repro.gpusim.warp.Warp` -- 32-lane warps with
  ``ballot_sync``/``ffs``/``popc``/``any_sync``/``shfl_sync``,
* :mod:`~repro.gpusim.atomics` -- global atomics that return old values,
* :mod:`~repro.gpusim.kernel` -- warp-grid launches with parallel cost
  repricing,
* :mod:`~repro.gpusim.primitives` -- scan / segmented scan / radix sort /
  compaction (the CUB-equivalents),
* :mod:`~repro.gpusim.cost` -- the analytic cost model that converts
  operation counts into estimated A6000 seconds.
"""

from repro.gpusim.context import FULL_MASK, WARP_SIZE, GpuContext
from repro.gpusim.cost import CostLedger, CostModel, Counters
from repro.gpusim.device import A6000, TINY_GPU, DeviceSpec, scale_device
from repro.gpusim.warp import Warp, ffs, popc

__all__ = [
    "GpuContext",
    "Warp",
    "WARP_SIZE",
    "FULL_MASK",
    "ffs",
    "popc",
    "CostLedger",
    "CostModel",
    "Counters",
    "DeviceSpec",
    "A6000",
    "TINY_GPU",
    "scale_device",
]
