"""The simulated GPU context: device + cost ledger + launch bookkeeping.

A :class:`GpuContext` is the handle every kernel in this library runs
against.  It owns the :class:`~repro.gpusim.cost.CostLedger` and knows how
many warps the device can execute concurrently, which the launch framework
uses to serialize oversubscribed grids in the cost model (a grid of 10,000
warps on a device with 336 resident warps takes ~30 "waves").
"""

from __future__ import annotations

import math

from repro.gpusim.cost import CostLedger
from repro.gpusim.device import A6000, DeviceSpec

#: Number of threads in a warp; fixed by the CUDA architecture and by the
#: paper's bucket size (Section V.A).
WARP_SIZE = 32

#: All-lanes-active mask, the ``FULL`` constant of the paper's pseudocode.
FULL_MASK = 0xFFFFFFFF


class GpuContext:
    """Simulated GPU device state shared by all kernels.

    Attributes:
        device: Performance specification used for cost estimates.
        ledger: Operation counters grouped into named sections.
        allocations: Named device-memory allocations (bytes).
        peak_allocated_bytes: High-water mark of device memory in use.
        shadow: Warp-access sanitizer hook
            (:class:`repro.analysis.shadow.ShadowTracker`), or ``None``.
            Always ``None`` outside a
            :class:`~repro.analysis.shadow.ShadowSession`; the launch
            framework and the atomics check it with a single attribute
            read, so disabled runs pay nothing and charge no ledger
            entries either way.
    """

    def __init__(self, device: DeviceSpec = A6000):
        self.device = device
        self.ledger = CostLedger(device)
        self.allocations: dict[str, int] = {}
        self.peak_allocated_bytes = 0
        # Typed loosely to keep gpusim free of an analysis-layer import;
        # repro.analysis.shadow.ShadowSession is the only writer.
        self.shadow: "object | None" = None

    # -- device memory accounting ---------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Device memory currently registered as allocated."""
        return sum(self.allocations.values())

    def allocate(self, name: str, nbytes: int) -> None:
        """Register a named device allocation, checking capacity.

        The paper's structures pre-allocate large blocks up front
        (Section V.A); modeling the allocations lets experiments report
        footprints and catch configurations that would not fit on the
        target device.  Raises :class:`~repro.utils.errors.CapacityError`
        when the device memory would be exceeded.
        """
        from repro.utils.errors import CapacityError

        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        capacity = int(self.device.memory_gbytes * 1e9)
        if self.allocated_bytes + nbytes > capacity:
            raise CapacityError(
                f"device memory exhausted: {name!r} needs {nbytes} B, "
                f"{capacity - self.allocated_bytes} B free of {capacity} B"
            )
        self.allocations[name] = nbytes
        self.peak_allocated_bytes = max(
            self.peak_allocated_bytes, self.allocated_bytes
        )

    def free(self, name: str) -> None:
        """Release a named allocation."""
        if name not in self.allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self.allocations[name]

    def reallocate(self, name: str, nbytes: int) -> None:
        """Resize an allocation (free + allocate, capacity-checked)."""
        if name in self.allocations:
            self.free(name)
        self.allocate(name, nbytes)

    @property
    def resident_warps(self) -> int:
        """Warps the device executes concurrently (one wave)."""
        return self.device.sm_count * self.device.warps_per_sm

    def waves(self, n_warps: int) -> int:
        """Number of execution waves needed for a grid of ``n_warps``."""
        if n_warps <= 0:
            return 0
        return math.ceil(n_warps / self.resident_warps)

    def charge_wavefront(
        self,
        n_warps: int,
        instructions_per_warp: int,
        transactions_per_warp: int = 0,
    ) -> None:
        """Charge a grid where every warp does the same amount of work.

        The compute cost serializes over waves: only ``resident_warps``
        warps make progress at a time, so the effective instruction count
        is ``waves * instructions_per_warp * resident_warps`` capped by the
        actual totals.  Memory transactions are bandwidth-bound and simply
        sum.
        """
        if n_warps <= 0:
            return
        # Instruction charges are in device-throughput units: the cost
        # model divides by the whole-device instruction rate, so a fully
        # parallel grid charges its total instruction count.  A grid that
        # cannot fill the device is latency-bound instead: a single warp
        # occupies one SM, so its critical path counts `sm_count` times
        # relative to device throughput.
        total = n_warps * instructions_per_warp
        latency_bound = instructions_per_warp * self.device.sm_count
        self.ledger.charge_instructions(max(total, latency_bound))
        self.ledger.charge_transactions(n_warps * transactions_per_warp)

    def charge_irregular_warps(
        self,
        instructions_per_warp: "list[int] | object",
        transactions_per_warp: "list[int] | object | None" = None,
    ) -> None:
        """Charge a grid whose warps do differing amounts of work.

        With dynamic assignment (the paper's centralized-buffer strategy),
        warps are load balanced: the grid is throughput-bound at the sum
        of per-warp instruction counts, but never cheaper than its
        critical path (the longest warp running alone on one SM, which
        counts ``sm_count``-fold against device throughput).
        """
        import numpy as np

        instrs = np.asarray(instructions_per_warp, dtype=np.int64)
        if instrs.size == 0:
            return
        total = int(instrs.sum())
        longest = int(instrs.max())
        latency_bound = longest * self.device.sm_count
        self.ledger.charge_instructions(max(total, latency_bound))
        if transactions_per_warp is not None:
            trans = np.asarray(transactions_per_warp, dtype=np.int64)
            self.ledger.charge_transactions(int(trans.sum()))
