"""Analytic cost model for the GPU execution model.

The CUDA implementation in the paper reports wall-clock seconds on an
A6000.  This reproduction cannot time real kernels, so every simulated
operation is *counted* and converted to estimated seconds using the device
rates in :mod:`repro.gpusim.device`:

* ``kernel_launches``   -- fixed per-launch host overhead,
* ``warp_instructions`` -- warp-wide ALU/control instructions,
* ``transactions``      -- 128-byte global-memory transactions,
* ``atomic_ops``        -- global atomics (``atomicAdd`` etc.),
* ``h2d_bytes``/``d2h_bytes`` -- PCIe transfers,
* ``host_ops``          -- scalar CPU work (e.g. CSR rebuilds).

Kernels overlap compute and memory, so per-kernel time is the *maximum*
of the compute and memory components rather than their sum.  Counters are
grouped into named sections (``"modification"``, ``"partitioning"``) so
the harness can reproduce the paper's Table I runtime breakdown.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.gpusim.device import A6000, DeviceSpec


@dataclass
class Counters:
    """Raw operation counts accumulated by the simulator."""

    kernel_launches: int = 0
    warp_instructions: int = 0
    transactions: int = 0
    atomic_ops: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    host_ops: int = 0
    #: Sum over kernels of max(compute_time, memory_time); filled by
    #: :meth:`CostLedger.end_kernel` so overlapped kernels are priced
    #: correctly.  Expressed in seconds.
    overlapped_kernel_seconds: float = 0.0

    def __iadd__(self, other: "Counters") -> "Counters":
        self.kernel_launches += other.kernel_launches
        self.warp_instructions += other.warp_instructions
        self.transactions += other.transactions
        self.atomic_ops += other.atomic_ops
        self.h2d_bytes += other.h2d_bytes
        self.d2h_bytes += other.d2h_bytes
        self.host_ops += other.host_ops
        self.overlapped_kernel_seconds += other.overlapped_kernel_seconds
        return self

    def copy(self) -> "Counters":
        return Counters(
            kernel_launches=self.kernel_launches,
            warp_instructions=self.warp_instructions,
            transactions=self.transactions,
            atomic_ops=self.atomic_ops,
            h2d_bytes=self.h2d_bytes,
            d2h_bytes=self.d2h_bytes,
            host_ops=self.host_ops,
            overlapped_kernel_seconds=self.overlapped_kernel_seconds,
        )

    def diff(self, baseline: "Counters") -> "Counters":
        """Return the counts accumulated since ``baseline`` was copied."""
        return Counters(
            kernel_launches=self.kernel_launches - baseline.kernel_launches,
            warp_instructions=(
                self.warp_instructions - baseline.warp_instructions
            ),
            transactions=self.transactions - baseline.transactions,
            atomic_ops=self.atomic_ops - baseline.atomic_ops,
            h2d_bytes=self.h2d_bytes - baseline.h2d_bytes,
            d2h_bytes=self.d2h_bytes - baseline.d2h_bytes,
            host_ops=self.host_ops - baseline.host_ops,
            overlapped_kernel_seconds=(
                self.overlapped_kernel_seconds
                - baseline.overlapped_kernel_seconds
            ),
        )


class CostModel:
    """Converts :class:`Counters` into estimated seconds for a device."""

    def __init__(self, device: DeviceSpec = A6000):
        self.device = device

    def kernel_seconds(self, warp_instructions: int, transactions: int) -> float:
        """Time of one kernel: max of compute and memory components."""
        compute = warp_instructions / self.device.warp_instruction_rate
        memory = transactions / self.device.transaction_rate
        return max(compute, memory)

    def seconds(self, counters: Counters) -> float:
        """Estimated wall-clock seconds for ``counters``.

        Uses the pre-overlapped per-kernel seconds when available and
        falls back to pricing the raw instruction/transaction totals for
        counts recorded outside a kernel scope.
        """
        device = self.device
        launch = counters.kernel_launches * device.kernel_launch_overhead_s
        kernels = counters.overlapped_kernel_seconds
        atomics = counters.atomic_ops / (device.atomic_throughput_gops * 1e9)
        pcie = (counters.h2d_bytes + counters.d2h_bytes) / (
            device.pcie_bytes_per_second
        )
        host = counters.host_ops / device.host_ops_per_second
        return launch + kernels + atomics + pcie + host

    def breakdown(self, counters: Counters) -> Dict[str, float]:
        """Per-component seconds, useful for reports and debugging."""
        device = self.device
        return {
            "launch": counters.kernel_launches
            * device.kernel_launch_overhead_s,
            "kernel": counters.overlapped_kernel_seconds,
            "atomics": counters.atomic_ops
            / (device.atomic_throughput_gops * 1e9),
            "pcie": (counters.h2d_bytes + counters.d2h_bytes)
            / device.pcie_bytes_per_second,
            "host": counters.host_ops / device.host_ops_per_second,
        }


@dataclass
class _KernelScope:
    """Instruction/transaction counts of the currently open kernel."""

    warp_instructions: int = 0
    transactions: int = 0
    name: str = "kernel"


@dataclass(frozen=True)
class KernelRecord:
    """One traced kernel execution (profiling support)."""

    name: str
    section: str
    warp_instructions: int
    transactions: int
    seconds: float


class CostLedger:
    """Accumulates counters into named sections.

    A ledger has one *current section* at a time; every charge lands both
    in the current section and in the global total.  Sections let the
    experiment harness split runtime into the paper's "modification" and
    "partitioning" columns.
    """

    DEFAULT_SECTION = "unattributed"

    def __init__(self, device: DeviceSpec = A6000):
        self.model = CostModel(device)
        self.total = Counters()
        self.sections: Dict[str, Counters] = {}
        self._section_stack: list[str] = [self.DEFAULT_SECTION]
        self._kernel_stack: list[_KernelScope] = []
        self.trace_enabled = False
        self.kernel_trace: list[KernelRecord] = []
        #: Observability hook (:class:`repro.obs.tracer.Tracer` installs
        #: itself here while active).  Checked with a single attribute
        #: read in :meth:`end_kernel`, so un-traced runs pay nothing —
        #: the same contract as ``GpuContext.shadow``.  Called as
        #: ``hook(name, section, warp_instructions, transactions,
        #: seconds)`` after each kernel scope closes; the hook must not
        #: charge the ledger.
        self.obs_hook: "object | None" = None

    # -- section management -------------------------------------------------

    @property
    def current_section(self) -> str:
        return self._section_stack[-1]

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the ``with`` block to ``name``."""
        self._section_stack.append(name)
        try:
            yield
        finally:
            self._section_stack.pop()

    def _bucket(self) -> Counters:
        name = self.current_section
        bucket = self.sections.get(name)
        if bucket is None:
            bucket = Counters()
            self.sections[name] = bucket
        return bucket

    # -- kernel scoping ------------------------------------------------------

    def begin_kernel(self, name: str = "kernel") -> None:
        """Open a kernel scope; instruction/transaction charges inside it
        are overlapped (max of compute and memory) when the scope closes."""
        self.total.kernel_launches += 1
        self._bucket().kernel_launches += 1
        self._kernel_stack.append(_KernelScope(name=name))

    def end_kernel(self) -> None:
        scope = self._kernel_stack.pop()
        seconds = self.model.kernel_seconds(
            scope.warp_instructions, scope.transactions
        )
        self.total.overlapped_kernel_seconds += seconds
        self._bucket().overlapped_kernel_seconds += seconds
        if self.trace_enabled:
            self.kernel_trace.append(
                KernelRecord(
                    name=scope.name,
                    section=self.current_section,
                    warp_instructions=scope.warp_instructions,
                    transactions=scope.transactions,
                    seconds=seconds
                    + self.model.device.kernel_launch_overhead_s,
                )
            )
        if self.obs_hook is not None:
            self.obs_hook(
                scope.name,
                self.current_section,
                scope.warp_instructions,
                scope.transactions,
                seconds + self.model.device.kernel_launch_overhead_s,
            )

    @contextmanager
    def kernel(self, name: str = "kernel") -> Iterator[None]:
        """Context-manager form of ``begin_kernel``/``end_kernel``."""
        self.begin_kernel(name)
        try:
            yield
        finally:
            self.end_kernel()

    # -- kernel tracing --------------------------------------------------------

    def enable_trace(self) -> None:
        """Record a :class:`KernelRecord` per kernel from now on."""
        self.trace_enabled = True

    def disable_trace(self) -> None:
        self.trace_enabled = False

    def top_kernels(self, limit: int = 10) -> list[tuple[str, float, int]]:
        """Aggregate traced kernels: ``(name, total_seconds, launches)``
        sorted by time, heaviest first."""
        totals: Dict[str, list[float]] = {}
        for record in self.kernel_trace:
            entry = totals.setdefault(record.name, [0.0, 0])
            entry[0] += record.seconds
            entry[1] += 1
        ranked = sorted(
            ((name, sec, int(cnt)) for name, (sec, cnt) in totals.items()),
            key=lambda row: -row[1],
        )
        return ranked[:limit]

    def format_trace(self, limit: int = 10) -> str:
        """Human-readable profile of the heaviest kernels."""
        rows = self.top_kernels(limit)
        if not rows:
            return "no kernels traced (call enable_trace() first)"
        width = max(len(name) for name, _sec, _cnt in rows)
        lines = [
            f"{'kernel':<{width}} {'launches':>9} {'seconds':>12}",
        ]
        for name, seconds, launches in rows:
            lines.append(
                f"{name:<{width}} {launches:>9} {seconds:>12.3e}"
            )
        return "\n".join(lines)

    # -- charging ------------------------------------------------------------

    def charge_instructions(self, n: int) -> None:
        """Charge ``n`` warp-wide instructions."""
        if n <= 0:
            return
        self.total.warp_instructions += n
        self._bucket().warp_instructions += n
        if self._kernel_stack:
            self._kernel_stack[-1].warp_instructions += n

    def adjust_instructions(self, delta: int) -> None:
        """Add ``delta`` (possibly negative) warp instructions.

        Used by the launch framework to replace a serially-accumulated
        per-warp sum with the parallel-execution cost.
        """
        if delta == 0:
            return
        self.total.warp_instructions += delta
        self._bucket().warp_instructions += delta
        if self._kernel_stack:
            self._kernel_stack[-1].warp_instructions += delta

    def charge_transactions(self, n: int) -> None:
        """Charge ``n`` 128-byte global-memory transactions."""
        if n <= 0:
            return
        self.total.transactions += n
        self._bucket().transactions += n
        if self._kernel_stack:
            self._kernel_stack[-1].transactions += n

    def charge_atomics(self, n: int) -> None:
        if n <= 0:
            return
        self.total.atomic_ops += n
        self._bucket().atomic_ops += n

    def charge_h2d(self, nbytes: int) -> None:
        """Charge a host-to-device PCIe transfer of ``nbytes``."""
        if nbytes <= 0:
            return
        self.total.h2d_bytes += nbytes
        self._bucket().h2d_bytes += nbytes

    def charge_d2h(self, nbytes: int) -> None:
        """Charge a device-to-host PCIe transfer of ``nbytes``."""
        if nbytes <= 0:
            return
        self.total.d2h_bytes += nbytes
        self._bucket().d2h_bytes += nbytes

    def charge_host_ops(self, n: int) -> None:
        """Charge ``n`` scalar CPU operations (e.g. a CSR rebuild loop)."""
        if n <= 0:
            return
        self.total.host_ops += n
        self._bucket().host_ops += n

    # -- reporting -----------------------------------------------------------

    def seconds(self, section: str | None = None) -> float:
        """Estimated seconds for one section, or for the whole run."""
        if section is None:
            return self.model.seconds(self.total)
        counters = self.sections.get(section)
        if counters is None:
            return 0.0
        return self.model.seconds(counters)

    def snapshot(self) -> Counters:
        """Copy of the running totals (for before/after differencing)."""
        return self.total.copy()

    def reset(self) -> None:
        self.total = Counters()
        self.sections = {}
        self._section_stack = [self.DEFAULT_SECTION]
        self._kernel_stack = []
        self.kernel_trace = []
