"""Device-wide parallel primitives: scan, segmented scan, sort, compaction.

These are the building blocks a CUDA implementation would take from CUB or
Thrust.  The results are computed with NumPy; the cost charged to the
ledger models the standard GPU algorithms:

* scans        -- work-efficient Blelloch scan, ~2 passes over the data,
* segmented scan -- scan with head flags, same asymptotics,
* radix sort   -- 4 passes of 8-bit digits, each pass a histogram + scan
                  + scatter,
* compaction   -- predicate scan + scatter.

Each primitive is one kernel (or a small fixed number of kernels) from the
launch-overhead point of view.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.context import GpuContext


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def _charge_scan(
    ctx: GpuContext, n: int, passes: int = 2, name: str = "scan"
) -> None:
    n_warps = math.ceil(max(n, 1) / 32)
    with ctx.ledger.kernel(name):
        ctx.charge_wavefront(
            n_warps,
            instructions_per_warp=passes * _log2_ceil(n),
            transactions_per_warp=passes,
        )


def charge_segmented_scan(ctx: GpuContext, n: int) -> None:
    """Charge the modeled cost of a segmented scan of ``n`` values —
    and nothing else.

    For callers that compute the scan's *result* through a pluggable
    compute backend (:mod:`repro.core.backend`) but must charge exactly
    what :func:`segmented_inclusive_scan` would, so a backend swap can
    never move a deterministic ledger counter.
    """
    _charge_scan(ctx, n, passes=3, name="segmented-scan")


def inclusive_scan(ctx: GpuContext, values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum of ``values``."""
    values = np.asarray(values)
    _charge_scan(ctx, values.size)
    return np.cumsum(values)


def exclusive_scan(ctx: GpuContext, values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum; element 0 of the result is 0."""
    values = np.asarray(values)
    _charge_scan(ctx, values.size)
    out = np.zeros_like(values)
    if values.size > 1:
        out[1:] = np.cumsum(values[:-1])
    return out


def segmented_inclusive_scan(
    ctx: GpuContext, values: np.ndarray, segment_ids: np.ndarray
) -> np.ndarray:
    """Inclusive scan that restarts at every segment boundary.

    ``segment_ids`` must be non-decreasing (the layout the refinement
    kernel builds for ``delta_p_wgt``: one contiguous segment per
    partition, Figure 5 of the paper).
    """
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids)
    if values.shape != segment_ids.shape:
        raise ValueError("values and segment_ids must have the same shape")
    if values.size and np.any(np.diff(segment_ids) < 0):
        raise ValueError("segment_ids must be sorted (contiguous segments)")
    _charge_scan(ctx, values.size, passes=3, name="segmented-scan")
    if values.size == 0:
        return values.copy()
    totals = np.cumsum(values)
    # Subtract, within each segment, the running total at the previous
    # segment's end; boundaries are where the segment id changes.
    boundary = np.flatnonzero(np.diff(segment_ids)) + 1
    offsets = np.zeros(values.size, dtype=totals.dtype)
    if boundary.size:
        seg_end_totals = totals[boundary - 1]
        idx = np.zeros(values.size, dtype=np.int64)
        idx[boundary] = 1
        seg_index = np.cumsum(idx)  # 0 for first segment, 1 for second, ...
        lookup = np.concatenate(([0], seg_end_totals))
        offsets = lookup[seg_index]
    return totals - offsets


def sort_by_key(
    ctx: GpuContext,
    keys: np.ndarray,
    values: np.ndarray | None = None,
    descending: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Stable radix sort of ``keys`` (optionally permuting ``values``).

    Charged as a 4-pass LSD radix sort over 32-bit keys; each pass reads
    and writes every element once plus a digit-histogram scan.
    """
    keys = np.asarray(keys)
    n = keys.size
    n_warps = math.ceil(max(n, 1) / 32)
    for _pass in range(4):
        with ctx.ledger.kernel("radix-pass"):
            ctx.charge_wavefront(
                n_warps, instructions_per_warp=8, transactions_per_warp=3
            )
        _charge_scan(ctx, 256)
    order = np.argsort(-keys if descending else keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = None if values is None else np.asarray(values)[order]
    return sorted_keys, sorted_values


def compact(
    ctx: GpuContext, values: np.ndarray, predicate: np.ndarray
) -> np.ndarray:
    """Stream compaction: keep ``values[i]`` where ``predicate[i]``.

    Used to gather scattered affected vertices into the centralized
    ``vertex_in_pseudo`` buffer in the vectorized path.
    """
    values = np.asarray(values)
    predicate = np.asarray(predicate, dtype=bool)
    if values.shape[0] != predicate.shape[0]:
        raise ValueError("values and predicate must have the same length")
    _charge_scan(ctx, values.shape[0], name="compact-scan")
    n_warps = math.ceil(max(values.shape[0], 1) / 32)
    with ctx.ledger.kernel("compact-scatter"):
        ctx.charge_wavefront(
            n_warps, instructions_per_warp=2, transactions_per_warp=2
        )
    return values[predicate]


def reduce_sum(ctx: GpuContext, values: np.ndarray) -> object:
    """Device-wide sum reduction (tree reduction cost)."""
    values = np.asarray(values)
    _charge_scan(ctx, values.size, passes=1)
    return values.sum() if values.size else 0


def reduce_max(ctx: GpuContext, values: np.ndarray) -> object:
    """Device-wide max reduction; raises on empty input."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("reduce_max of empty array")
    _charge_scan(ctx, values.size, passes=1)
    return values.max()
