"""Device specifications for the GPU execution model.

The paper evaluates on an NVIDIA RTX A6000 (84 SMs, 48 GB, PCIe 4.0 x16
host link) attached to a 16-core Intel i7-11700 host.  The cost model in
:mod:`repro.gpusim.cost` converts counted operations into estimated seconds
using the rates defined here.  The constants below are derived from public
A6000 specifications and then *calibrated* so the reproduction's Table I
lands in the same runtime regime as the paper (see EXPERIMENTS.md); the
speedup *shapes* only depend on the operation counts, not on these scales.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Performance parameters of a simulated GPU and its host link.

    Attributes:
        name: Human-readable device name.
        sm_count: Number of streaming multiprocessors.
        warps_per_sm: Resident warps per SM assumed schedulable per cycle.
        clock_ghz: SM clock in GHz.
        instructions_per_cycle: Warp instructions an SM retires per cycle.
        mem_bandwidth_gbps: Device global-memory bandwidth in GB/s.
        pcie_bandwidth_gbps: Host-device transfer bandwidth in GB/s.
        kernel_launch_overhead_s: Fixed host-side cost per kernel launch.
        atomic_throughput_gops: Global atomic operations per second (1e9/s).
        host_ops_per_second: Scalar host (CPU) operations per second, used
            to charge CPU-side work such as CSR rebuilds.
        memory_gbytes: Device global-memory capacity; allocations through
            :meth:`repro.gpusim.context.GpuContext.allocate` are checked
            against it.
    """

    name: str
    sm_count: int
    warps_per_sm: int
    clock_ghz: float
    instructions_per_cycle: float
    mem_bandwidth_gbps: float
    pcie_bandwidth_gbps: float
    kernel_launch_overhead_s: float
    atomic_throughput_gops: float
    host_ops_per_second: float
    memory_gbytes: float = 48.0

    @property
    def warp_instruction_rate(self) -> float:
        """Warp instructions the whole device retires per second."""
        return (
            self.sm_count
            * self.instructions_per_cycle
            * self.clock_ghz
            * 1.0e9
        )

    @property
    def transaction_rate(self) -> float:
        """128-byte global-memory transactions served per second."""
        return self.mem_bandwidth_gbps * 1.0e9 / 128.0

    @property
    def pcie_bytes_per_second(self) -> float:
        """Host-device transfer rate in bytes per second."""
        return self.pcie_bandwidth_gbps * 1.0e9


#: The GPU used in the paper's evaluation (Section VI), with *effective*
#: rates.  ``instructions_per_cycle`` is not the architectural issue rate
#: but the measured-efficiency rate of irregular graph kernels (memory
#: latency stalls, divergence, low occupancy at these problem sizes
#: combine to a few-permille issue efficiency); likewise
#: ``mem_bandwidth_gbps`` is the achieved scattered-access bandwidth, not
#: the pin bandwidth.  The values are calibrated once so that the scaled
#: benchmark suite lands in the same runtime regime as Table I (see
#: EXPERIMENTS.md); all reported *speedups* come from the counted
#: operations, not from these scales.
A6000 = DeviceSpec(
    name="NVIDIA RTX A6000 (effective rates)",
    sm_count=84,
    warps_per_sm=4,
    clock_ghz=1.80,
    instructions_per_cycle=6.6e-4,
    mem_bandwidth_gbps=0.15,
    pcie_bandwidth_gbps=0.24,
    kernel_launch_overhead_s=2.0e-6,
    atomic_throughput_gops=0.05,
    host_ops_per_second=2.0e8,
    memory_gbytes=48.0,
)

def scale_device(
    device: DeviceSpec,
    compute: float = 1.0,
    memory: float = 1.0,
    pcie: float = 1.0,
    launch: float = 1.0,
    name: str | None = None,
) -> DeviceSpec:
    """Derive a what-if device by scaling one or more rates.

    Useful for sensitivity studies: e.g. ``scale_device(A6000,
    memory=2.0)`` models a device with twice the achieved bandwidth.
    Factors above 1.0 make the corresponding resource *faster* (launch
    overhead is a latency, so it is divided).
    """
    if min(compute, memory, pcie, launch) <= 0:
        raise ValueError("scale factors must be positive")
    return DeviceSpec(
        name=name or f"{device.name} (scaled)",
        sm_count=device.sm_count,
        warps_per_sm=device.warps_per_sm,
        clock_ghz=device.clock_ghz * compute,
        instructions_per_cycle=device.instructions_per_cycle,
        mem_bandwidth_gbps=device.mem_bandwidth_gbps * memory,
        pcie_bandwidth_gbps=device.pcie_bandwidth_gbps * pcie,
        kernel_launch_overhead_s=device.kernel_launch_overhead_s / launch,
        atomic_throughput_gops=device.atomic_throughput_gops * compute,
        host_ops_per_second=device.host_ops_per_second,
        memory_gbytes=device.memory_gbytes,
    )


#: A deliberately small device useful for tests that want visible
#: serialization effects without large graphs.
TINY_GPU = DeviceSpec(
    name="tiny-test-gpu",
    sm_count=2,
    warps_per_sm=2,
    clock_ghz=1.0,
    instructions_per_cycle=1.0,
    mem_bandwidth_gbps=32.0,
    pcie_bandwidth_gbps=4.0,
    kernel_launch_overhead_s=1.0e-5,
    atomic_throughput_gops=0.1,
    host_ops_per_second=1.0e7,
    memory_gbytes=0.001,
)
