"""Kernel launch framework for the warp-faithful execution path.

``launch_warps`` runs a Python function once per warp, giving it a
:class:`~repro.gpusim.warp.Warp` bound to the context.  The framework

* charges one kernel launch,
* overlaps compute and memory per kernel (via the ledger's kernel scope),
* converts the *sum* of per-warp instruction counts into the device-serial
  cost ``max(ceil(sum / resident_warps), longest_warp)`` — i.e. warps run
  concurrently across SMs, limited by the slowest warp (critical path) and
  by device occupancy.  This matches how the paper's dynamic warp
  assignment from a centralized buffer balances irregular work.

The vectorized kernels in :mod:`repro.core` do not use this module's
per-warp loop; they charge the identical counts in bulk through
``GpuContext.charge_wavefront`` inside a ``ledger.kernel()`` scope.

Sanitizer integration: when ``ctx.shadow`` holds a
:class:`~repro.analysis.shadow.ShadowTracker`, each launch opens a
tracker scope and announces the executing warp, so accesses to
instrumented arrays are attributed ``(kernel, warp)``.  The ``ordered``
flag is the launch's concurrency contract — see below.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.gpusim.context import GpuContext
from repro.gpusim.warp import Warp


def launch_warps(
    ctx: GpuContext,
    work_items: Sequence[object],
    body: Callable[[Warp, object], None],
    name: str = "warp-grid",
    ordered: bool = False,
) -> None:
    """Launch one warp per element of ``work_items``.

    ``body(warp, item)`` is executed for each item with a fresh warp.
    All per-warp charges made through the warp (or directly through the
    ledger) are collected and re-priced for parallel execution.

    ``ordered`` declares the launch's concurrency contract to the
    warp-access sanitizer: ``False`` (the default) claims the warps are
    order-independent — any cross-warp same-address conflict that is
    not atomic-mediated is then reported as a race.  ``True`` declares
    that correctness *depends* on warps executing in work-item order
    (the simulator guarantees it; a CUDA port must serialize dependent
    items, e.g. by chaining grids or claiming slots with atomics), so
    cross-warp conflicts are exempt and the launch's determinism is
    guarded by its access-trace digest instead.
    """
    ledger = ctx.ledger
    shadow = ctx.shadow
    if shadow is not None:
        shadow.begin_launch(name, ordered)
    try:
        with ledger.kernel(name):
            if not len(work_items):
                return
            per_warp: list[int] = []
            for index, item in enumerate(work_items):
                if shadow is not None:
                    shadow.begin_warp(index)
                before = ledger.total.warp_instructions
                warp = Warp(ctx)
                body(warp, item)
                per_warp.append(ledger.total.warp_instructions - before)
            _reprice_for_parallelism(ctx, per_warp)
    finally:
        if shadow is not None:
            shadow.end_launch()


def launch_threads(
    ctx: GpuContext,
    work_items: Sequence[object],
    body: Callable[[int, object], None],
    instructions_per_thread: int = 1,
    name: str = "thread-grid",
    ordered: bool = False,
) -> None:
    """Launch one *thread* per work item (e.g. Algorithm 3 lines 25-26).

    Threads are grouped into warps of 32 for costing; ``body(i, item)``
    runs sequentially in the simulator.  The sanitizer sees thread ``i``
    as lane ``i % 32`` of warp ``i // 32``, and ``ordered`` has the same
    contract as in :func:`launch_warps`.
    """
    ledger = ctx.ledger
    shadow = ctx.shadow
    if shadow is not None:
        shadow.begin_launch(name, ordered)
    try:
        with ledger.kernel(name):
            n = len(work_items)
            if n == 0:
                return
            for i, item in enumerate(work_items):
                if shadow is not None:
                    shadow.begin_warp(i // 32)
                body(i, item)
            n_warps = math.ceil(n / 32)
            ctx.charge_wavefront(n_warps, instructions_per_thread)
            ledger.charge_transactions(n_warps)
    finally:
        if shadow is not None:
            shadow.end_launch()


def _reprice_for_parallelism(ctx: GpuContext, per_warp: list[int]) -> None:
    """Replace the serially-accumulated instruction sum with parallel cost.

    The warp bodies charged ``sum(per_warp)`` instructions while the
    simulator ran them one after another.  On the device they run
    concurrently: the grid is throughput-bound at the instruction total,
    but never cheaper than its critical path (the longest warp occupying
    one SM, which counts ``sm_count``-fold against device throughput).
    """
    total = sum(per_warp)
    if total == 0:
        return
    longest = max(per_warp)
    parallel_cost = max(total, longest * ctx.device.sm_count)
    ctx.ledger.adjust_instructions(parallel_cost - total)
