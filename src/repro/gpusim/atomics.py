"""Simulated CUDA global-memory atomics.

The simulator executes warps sequentially, so the operations themselves
are trivially race-free; what matters is that they (a) return the *old*
value like the CUDA intrinsics, (b) charge the ledger, because atomic
contention is a real component of kernel cost (e.g. the ``atomicAdd`` on
``vertex_in_pseudo_size`` in Algorithm 3 serializes across warps), and
(c) announce themselves to the warp-access sanitizer: accesses made
inside an ``atomic_*`` count as *mediated*, so concurrent warps updating
one address through atomics are not reported as races, while the same
accesses done with plain loads/stores are.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.gpusim.context import GpuContext


@contextmanager
def _mediated(ctx: GpuContext) -> Iterator[None]:
    """Mark the enclosed read-modify-write as one atomic operation."""
    shadow = ctx.shadow
    if shadow is None:
        yield
        return
    with shadow.atomic_scope():  # type: ignore[attr-defined]
        yield


def atomic_add(
    ctx: GpuContext, array: np.ndarray, index: int, value: object
) -> object:
    """``atomicAdd``: add ``value`` at ``array[index]``, return the old value."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        array[index] = old + value
    return old


def atomic_sub(
    ctx: GpuContext, array: np.ndarray, index: int, value: object
) -> object:
    """``atomicSub``: subtract ``value`` at ``array[index]``, return old."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        array[index] = old - value
    return old


def atomic_max(
    ctx: GpuContext, array: np.ndarray, index: int, value: object
) -> object:
    """``atomicMax``: store max(old, value), return old."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        if value > old:
            array[index] = value
    return old


def atomic_min(
    ctx: GpuContext, array: np.ndarray, index: int, value: object
) -> object:
    """``atomicMin``: store min(old, value), return old."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        if value < old:
            array[index] = value
    return old


def atomic_cas(
    ctx: GpuContext,
    array: np.ndarray,
    index: int,
    compare: object,
    value: object,
) -> object:
    """``atomicCAS``: conditional swap, returns the old value."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        if old == compare:
            array[index] = value
    return old


def atomic_exch(
    ctx: GpuContext, array: np.ndarray, index: int, value: object
) -> object:
    """``atomicExch``: unconditional swap, returns the old value."""
    ctx.ledger.charge_atomics(1)
    with _mediated(ctx):
        old = array[index]
        array[index] = value
    return old
