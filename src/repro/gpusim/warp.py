"""A 32-lane warp and the CUDA warp-level primitives the paper uses.

The pseudocode of Algorithms 1-4 is written per warp: each of the 32
threads holds a scalar, and the warp combines them with ``__ballot_sync``,
``__ffs``, ``__popc`` and ``__any_sync``.  :class:`Warp` models exactly
that: lane-private values are length-32 NumPy arrays, the primitives
combine them the way the hardware does, and every primitive call charges
one warp instruction to the context's ledger.

Semantics follow the CUDA C++ Programming Guide:

* ``ballot_sync(mask, pred)`` returns a 32-bit integer whose bit *i* is
  set iff lane *i* is in ``mask`` and its predicate is true.
* ``ffs(x)`` returns the 1-based position of the least-significant set
  bit of ``x``, or 0 when ``x == 0`` (so the paper's ``__ffs(b) - 1``
  yields -1 when no slot matched).
* ``any_sync``/``all_sync`` reduce predicates across the mask.
* ``popc(x)`` counts set bits.
* ``shfl_sync(mask, value, src_lane)`` broadcasts lane ``src_lane``'s value.

Sanitizer integration: ``load``/``store`` index their target array, so
when the array is a :class:`~repro.analysis.shadow.ShadowArray` the
access is recorded with the executing warp automatically.  Collectives
additionally report their *results* to the tracker — ballot masks decide
leader election, so hashing them makes the per-launch trace digest
sensitive to control-flow nondeterminism, not just memory addresses.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.context import FULL_MASK, WARP_SIZE, GpuContext


def ffs(x: int) -> int:
    """CUDA ``__ffs``: 1-based index of least-significant set bit, 0 if none."""
    if x == 0:
        return 0
    return (x & -x).bit_length()


def popc(x: int) -> int:
    """CUDA ``__popc``: number of set bits in a 32-bit integer."""
    return bin(x & FULL_MASK).count("1")


class Warp:
    """One 32-lane warp bound to a :class:`GpuContext`.

    The warp exposes ``lane_id`` (a vector 0..31) plus the warp-level
    collectives.  Lane-private data is represented as NumPy arrays of
    length 32; inactive lanes simply carry don't-care values, mirroring
    how predicated-off CUDA lanes still occupy their slots.
    """

    def __init__(self, ctx: GpuContext):
        self.ctx = ctx
        self.lane_id = np.arange(WARP_SIZE, dtype=np.int64)

    # -- cost helpers --------------------------------------------------------

    def charge(self, instructions: int = 1, transactions: int = 0) -> None:
        """Charge warp-wide work that is not a collective (loads, ALU)."""
        self.ctx.ledger.charge_instructions(instructions)
        self.ctx.ledger.charge_transactions(transactions)

    def _note_collective(self, kind: str, value: object) -> None:
        """Report a collective's result to the warp-access sanitizer."""
        shadow = self.ctx.shadow
        if shadow is not None:
            shadow.record_collective(kind, value)

    def load(self, array: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Warp-wide gather ``array[indices]`` with memory-transaction cost.

        A coalesced 32-lane access of 4-byte words costs one 128-byte
        transaction; scattered indices cost one transaction per distinct
        128-byte segment touched, which is how the hardware coalescer
        behaves.
        """
        idx = np.asarray(indices, dtype=np.int64)
        segments = np.unique(idx >> 5)
        self.charge(instructions=1, transactions=len(segments))
        return array[idx]

    def store(
        self, array: np.ndarray, indices: np.ndarray, values: object
    ) -> None:
        """Warp-wide scatter with the same coalescing cost as :meth:`load`."""
        idx = np.asarray(indices, dtype=np.int64)
        segments = np.unique(idx >> 5)
        self.charge(instructions=1, transactions=len(segments))
        array[idx] = values

    # -- warp collectives ----------------------------------------------------

    def ballot_sync(self, mask: int, predicate: np.ndarray) -> int:
        """``__ballot_sync``: pack per-lane predicates into a 32-bit mask."""
        self.charge()
        pred = np.asarray(predicate, dtype=bool)
        if pred.shape != (WARP_SIZE,):
            raise ValueError(
                f"ballot_sync expects {WARP_SIZE} lane predicates, "
                f"got shape {pred.shape}"
            )
        bits = 0
        for lane in range(WARP_SIZE):
            if (mask >> lane) & 1 and pred[lane]:
                bits |= 1 << lane
        self._note_collective("ballot", bits)
        return bits

    def any_sync(self, mask: int, predicate: np.ndarray) -> bool:
        """``__any_sync``: true iff any in-mask lane's predicate holds."""
        self.charge()
        pred = np.asarray(predicate, dtype=bool)
        result = False
        for lane in range(WARP_SIZE):
            if (mask >> lane) & 1 and pred[lane]:
                result = True
                break
        self._note_collective("any", result)
        return result

    def all_sync(self, mask: int, predicate: np.ndarray) -> bool:
        """``__all_sync``: true iff every in-mask lane's predicate holds."""
        self.charge()
        pred = np.asarray(predicate, dtype=bool)
        result = True
        for lane in range(WARP_SIZE):
            if (mask >> lane) & 1 and not pred[lane]:
                result = False
                break
        self._note_collective("all", result)
        return result

    def shfl_sync(self, mask: int, values: np.ndarray, src_lane: int) -> object:
        """``__shfl_sync``: broadcast lane ``src_lane``'s value to the warp."""
        self.charge()
        if not 0 <= src_lane < WARP_SIZE:
            raise ValueError(f"src_lane {src_lane} out of range")
        result = np.asarray(values)[src_lane]
        self._note_collective("shfl", result)
        return result

    def reduce_min_sync(self, mask: int, values: np.ndarray) -> object:
        """Warp-wide min reduction (``__reduce_min_sync`` on sm_80+).

        Charged as log2(32) = 5 butterfly steps like a shuffle reduction.
        """
        self.charge(instructions=5)
        vals = np.asarray(values)
        active = [lane for lane in range(WARP_SIZE) if (mask >> lane) & 1]
        result = vals[active].min()
        self._note_collective("reduce_min", result)
        return result

    def reduce_add_sync(self, mask: int, values: np.ndarray) -> object:
        """Warp-wide sum reduction via shuffle butterfly (5 steps)."""
        self.charge(instructions=5)
        vals = np.asarray(values)
        active = [lane for lane in range(WARP_SIZE) if (mask >> lane) & 1]
        result = vals[active].sum()
        self._note_collective("reduce_add", result)
        return result
