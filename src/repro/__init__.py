"""iG-kway reproduction: incremental k-way graph partitioning on a
simulated GPU (Lee et al., DAC 2025).

Quickstart::

    from repro import IGKway, PartitionConfig
    from repro.graph import circuit_graph, ModifierBatch, EdgeInsert

    csr = circuit_graph(10_000, edge_ratio=1.3, seed=1)
    ig = IGKway(csr, PartitionConfig(k=4))
    ig.full_partition()
    ig.apply(ModifierBatch([EdgeInsert(3, 77)]))
    print(ig.cut_size())

Package map:

* :mod:`repro.core`      -- iG-kway and the G-kway† baseline,
* :mod:`repro.partition` -- multilevel G-kway full partitioning,
* :mod:`repro.graph`     -- CSR / bucket-list substrates, generators,
* :mod:`repro.gpusim`    -- the warp-level GPU execution model,
* :mod:`repro.eval`      -- benchmark harness for every paper table/figure.
"""

from repro.core.adaptive import AdaptiveIGKway
from repro.core.baseline import GKwayDagger
from repro.core.igkway import IGKway, IterationReport
from repro.partition.config import PartitionConfig

__version__ = "1.0.0"

__all__ = [
    "IGKway",
    "GKwayDagger",
    "AdaptiveIGKway",
    "IterationReport",
    "PartitionConfig",
    "__version__",
]
