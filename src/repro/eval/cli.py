"""Command-line entry point.

Two families of subcommands:

* Paper artifacts — regenerate any table or figure::

      igkway-eval table1 [--iterations 100] [--runs 1] [--out results/]
      igkway-eval fig1 | fig6 | fig7 | fig8 | all

* User graphs — run the incremental flow on your own METIS / edge-list
  file and export the partition::

      igkway-eval run --graph design.graph --k 8 --iterations 50 \\
          --export partition.csv

``python -m repro.eval.cli ...`` is equivalent to ``igkway-eval ...``.
Text reports go to stdout; with ``--out`` each artifact is also written
to ``<out>/<name>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.eval import figures, tables


def _emit(name: str, text: str, out_dir: Path | None) -> None:
    print(text)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


# ---------------------------------------------------------------------------
# Paper artifacts.
# ---------------------------------------------------------------------------


def run_table1(args: argparse.Namespace, out_dir: Path | None) -> None:
    results = tables.build_table1(
        iterations=args.iterations, seed=args.seed, runs=args.runs
    )
    text = tables.format_table1(results)
    text += "\n\n" + tables.format_paper_comparison(results)
    _emit("table1", text, out_dir)


def run_fig1(args: argparse.Namespace, out_dir: Path | None) -> None:
    data = figures.build_fig1(
        iterations=min(args.iterations, 50), seed=args.seed
    )
    _emit("fig1", figures.format_fig1(data), out_dir)


def run_fig6(args: argparse.Namespace, out_dir: Path | None) -> None:
    data = figures.build_fig6(iterations=args.iterations, seed=args.seed)
    _emit("fig6", figures.format_fig6(data), out_dir)


def run_fig7(args: argparse.Namespace, out_dir: Path | None) -> None:
    data = figures.build_fig7(
        iterations=max(args.iterations // 5, 5), seed=args.seed
    )
    _emit("fig7", figures.format_fig7(data), out_dir)


def run_fig8(args: argparse.Namespace, out_dir: Path | None) -> None:
    data = figures.build_fig8(
        iterations=max(args.iterations // 5, 5), seed=args.seed
    )
    _emit("fig8", figures.format_fig8(data), out_dir)


def run_ablations(args: argparse.Namespace, out_dir: Path | None) -> None:
    from repro.eval import ablation

    studies = ablation.run_all(seed=args.seed)
    _emit("ablations", ablation.format_all(studies), out_dir)


def run_variance(args: argparse.Namespace, out_dir: Path | None) -> None:
    from repro.eval.runner import run_replicates, variance_report

    lines = [
        "Run-to-run variance (paper averages 10 runs; this quantifies "
        "the spread)",
        f"{'graph':<10} {'runs':>5} {'speedup':>20} {'cut impr':>16}",
    ]
    for graph in ("usb", "tv80", "adaptive"):
        replicates = run_replicates(
            graph,
            k=2,
            iterations=max(args.iterations // 5, 5),
            seed=args.seed,
            runs=args.runs if args.runs > 1 else 3,
        )
        stats = variance_report(replicates)
        lines.append(
            f"{graph:<10} {stats['runs']:>5} "
            f"{stats['speedup_mean']:>10.1f} ± "
            f"{stats['speedup_std']:<7.1f} "
            f"{stats['cut_improvement_mean']:>8.2f} ± "
            f"{stats['cut_improvement_std']:<5.2f}"
        )
    _emit("variance", "\n".join(lines), out_dir)


def run_selfcheck(args: argparse.Namespace, out_dir: Path | None) -> None:
    from repro.eval import selfcheck

    results = selfcheck.run_selfcheck(seed=args.seed)
    _emit("selfcheck", selfcheck.format_results(results), out_dir)
    if not all(r.passed for r in results):
        raise SystemExit(1)


_ARTIFACTS = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "ablations": run_ablations,
    "selfcheck": run_selfcheck,
    "variance": run_variance,
}


# ---------------------------------------------------------------------------
# User-graph runner.
# ---------------------------------------------------------------------------


def run_user_graph(args: argparse.Namespace) -> None:
    from repro import AdaptiveIGKway, IGKway, PartitionConfig
    from repro.eval.workloads import TraceConfig, generate_trace
    from repro.graph.io import read_edge_list, read_metis

    path = Path(args.graph)
    if path.suffix in (".edges", ".txt", ".el"):
        csr = read_edge_list(path)
    else:
        csr = read_metis(path)
    print(
        f"Loaded {path.name}: |V| = {csr.num_vertices}, "
        f"|E| = {csr.num_edges}"
    )
    config = PartitionConfig(
        k=args.k, epsilon=args.epsilon, seed=args.seed
    )
    if args.adaptive:
        partitioner = AdaptiveIGKway(csr, config)
    else:
        partitioner = IGKway(csr, config)
    report = partitioner.full_partition()
    print(
        f"Full partitioning: cut = {report.cut}, balanced = "
        f"{report.balanced}, modeled GPU time = {report.seconds:.4f}s"
    )
    if args.iterations > 0:
        trace = generate_trace(
            csr,
            TraceConfig(
                iterations=args.iterations,
                modifiers_per_iteration=args.modifiers,
                seed=args.seed,
            ),
        )
        total = 0.0
        for batch in trace:
            result = partitioner.apply(batch)
            iteration = (
                result.iteration if args.adaptive else result
            )
            total += (
                iteration.modification_seconds
                + iteration.partitioning_seconds
            )
        print(
            f"{args.iterations} incremental iterations: total modeled "
            f"GPU time {total:.4f}s, final cut "
            f"{partitioner.cut_size()}"
        )
    if args.export:
        from repro.core.serialize import export_partition_csv

        inner = partitioner.inner if args.adaptive else partitioner
        export_partition_csv(inner, args.export)
        print(f"Partition written to {args.export}")


# ---------------------------------------------------------------------------
# Argument parsing.
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="igkway-eval",
        description="iG-kway reproduction: regenerate paper artifacts "
        "or partition your own graphs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in sorted(_ARTIFACTS) + ["all"]:
        artifact = sub.add_parser(
            name, help=f"regenerate {name}" if name != "all" else
            "regenerate every table and figure",
        )
        artifact.add_argument(
            "--iterations", type=int, default=100,
            help="incremental iterations per experiment (paper: 100)",
        )
        artifact.add_argument(
            "--runs", type=int, default=1,
            help="independent runs to average (paper: 10)",
        )
        artifact.add_argument("--seed", type=int, default=0)
        artifact.add_argument(
            "--out", type=Path, default=None,
            help="directory to also write each report into",
        )

    runner = sub.add_parser(
        "run", help="partition a user graph (METIS or edge-list file)"
    )
    runner.add_argument("--graph", required=True, help="input file")
    runner.add_argument("--k", type=int, default=2)
    runner.add_argument("--epsilon", type=float, default=0.03)
    runner.add_argument("--iterations", type=int, default=0,
                        help="synthetic incremental iterations to apply")
    runner.add_argument("--modifiers", type=int, default=50,
                        help="modifiers per synthetic iteration")
    runner.add_argument("--seed", type=int, default=0)
    runner.add_argument(
        "--adaptive", action="store_true",
        help="use the FGP-fallback hybrid (Section VI.C policy)",
    )
    runner.add_argument("--export", default=None,
                        help="write vertex,partition CSV here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        run_user_graph(args)
        return 0
    targets = (
        sorted(_ARTIFACTS) if args.command == "all" else [args.command]
    )
    for target in targets:
        started = time.time()
        print(f"=== {target} ===")
        _ARTIFACTS[target](args, args.out)
        print(f"[{target} took {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
