"""Regeneration of the paper's Table I.

``build_table1`` runs the full benchmark suite (all ten graphs, k = 2)
and ``format_table1`` prints the same columns the paper reports:
modification time, partitioning time, speedup and cut size for iG-kway
vs G-kway†, plus the average row.  ``format_paper_comparison`` prints
our measured values next to the paper's for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.runner import ExperimentResult, run_experiment
from repro.graph.generators import BENCHMARKS

#: Row order of Table I in the paper.
TABLE1_GRAPHS = [
    "tv80",
    "mem_ctrl",
    "usb",
    "vga_lcd",
    "wb_dma",
    "systemcase",
    "des_perf",
    "coAuthorsCiteseer",
    "adaptive",
    "NLR",
]


def build_table1(
    iterations: int = 100,
    modifiers_per_iteration: "int | tuple[int, int] | str" = "auto",
    seed: int = 0,
    runs: int = 1,
    graphs: Sequence[str] | None = None,
    k: int = 2,
) -> Dict[str, ExperimentResult]:
    """Run the Table I experiment on every benchmark graph."""
    results: Dict[str, ExperimentResult] = {}
    for name in graphs or TABLE1_GRAPHS:
        results[name] = run_experiment(
            name,
            k=k,
            iterations=iterations,
            modifiers_per_iteration=modifiers_per_iteration,
            seed=seed,
            runs=runs,
        )
    return results


def format_table1(results: Dict[str, ExperimentResult]) -> str:
    """Render results in the paper's Table I layout."""
    header = (
        f"{'Name':<18} {'|V|':>8} {'|E|':>8} "
        f"{'Mod iG(s)':>10} {'Mod G†(s)':>10} "
        f"{'Part iG(s)':>11} {'Part G†(s)':>11} {'Speedup':>9} "
        f"{'Cut iG':>8} {'Cut G†':>8} {'Impr.':>6}"
    )
    lines = [header, "-" * len(header)]
    speedups: List[float] = []
    improvements: List[float] = []
    for name, res in results.items():
        speedups.append(res.part_speedup)
        improvements.append(res.cut_improvement)
        lines.append(
            f"{name:<18} {res.num_vertices:>8} {res.num_edges:>8} "
            f"{res.ig_mod_total:>10.3f} {res.bl_mod_total:>10.3f} "
            f"{res.ig_part_total:>11.3f} {res.bl_part_total:>11.3f} "
            f"{res.part_speedup:>8.2f}x "
            f"{res.ig_cut_mean:>8.0f} {res.bl_cut_mean:>8.0f} "
            f"{res.cut_improvement:>6.2f}"
        )
    if speedups:
        avg_speedup = sum(speedups) / len(speedups)
        avg_impr = sum(improvements) / len(improvements)
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<18} {'':>8} {'':>8} {'':>10} {'':>10} "
            f"{'':>11} {'':>11} {avg_speedup:>8.2f}x {'':>8} {'':>8} "
            f"{avg_impr:>6.2f}"
        )
    return "\n".join(lines)


def format_paper_comparison(results: Dict[str, ExperimentResult]) -> str:
    """Our speedups and cut ratios next to the paper's reported values."""
    header = (
        f"{'Name':<18} {'Speedup (ours)':>15} {'Speedup (paper)':>16} "
        f"{'Cut impr (ours)':>16} {'Cut impr (paper)':>17}"
    )
    lines = [header, "-" * len(header)]
    ours_speedups: List[float] = []
    paper_speedups: List[float] = []
    for name, res in results.items():
        spec = BENCHMARKS.get(name)
        if spec is None:
            continue
        ours_speedups.append(res.part_speedup)
        paper_speedups.append(spec.paper.speedup)
        lines.append(
            f"{name:<18} {res.part_speedup:>14.2f}x "
            f"{spec.paper.speedup:>15.2f}x "
            f"{res.cut_improvement:>16.2f} "
            f"{spec.paper.cut_improvement:>17.2f}"
        )
    if ours_speedups:
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<18} "
            f"{sum(ours_speedups) / len(ours_speedups):>14.2f}x "
            f"{sum(paper_speedups) / len(paper_speedups):>15.2f}x"
        )
    return "\n".join(lines)
