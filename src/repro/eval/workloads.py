"""Incremental workload (modifier trace) generation.

Section VI: "we applied 100 incremental iterations based on the setting
of the TAU 2015 Incremental Timing Contest, where each iteration involves
tens to hundreds of design modifiers that randomly remove/insert vertices
and edges from/into the graph."

:func:`generate_trace` reproduces that process: each iteration draws a
batch of modifiers from a configurable kind-mix, validated against a
simulated copy of the evolving graph so every modifier is applicable
(no duplicate edge inserts, no deletes of missing edges, ...).  Edge
insertions are locality-biased like real ECO changes (new nets connect
nearby cells).  Vertex inserts prefer reusing previously deleted IDs,
mirroring how CAD databases recycle cell slots — and keeping the
bucket-pool footprint bounded.

The same trace is applied to iG-kway and to G-kway†, which is what makes
the Table I comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.modifiers import (
    EdgeDelete,
    EdgeInsert,
    HostGraph,
    ModifierBatch,
    VertexDelete,
    VertexInsert,
)
from repro.utils.seeding import make_rng

#: Default kind mix (fractions must sum to 1).
DEFAULT_MIX = {
    "edge_insert": 0.35,
    "edge_delete": 0.35,
    "vertex_insert": 0.15,
    "vertex_delete": 0.15,
}

#: The paper's per-iteration modifier rate relative to graph size:
#: "tens to hundreds" per iteration on the 139k-vertex usb circuit is
#: roughly 0.04% - 0.15% of |V|.  ``auto_modifier_range`` applies the
#: same fractions to scaled graphs so 100 iterations perturb a scaled
#: graph exactly as much as they perturbed the paper's.
AUTO_MODIFIER_FRACTIONS = (0.0004, 0.0015)


def auto_modifier_range(num_vertices: int) -> tuple[int, int]:
    """Per-iteration modifier range matching the paper's relative rate.

    >>> auto_modifier_range(139_479)
    (56, 209)
    """
    lo_frac, hi_frac = AUTO_MODIFIER_FRACTIONS
    lo = max(3, int(round(num_vertices * lo_frac)))
    hi = max(lo + 5, int(round(num_vertices * hi_frac)))
    return lo, hi


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a modifier trace.

    Attributes:
        iterations: Number of incremental iterations (paper: 100).
        modifiers_per_iteration: Modifiers per batch; either a fixed
            count or a ``(lo, hi)`` range sampled uniformly ("tens to
            hundreds").
        mix: Kind fractions (see :data:`DEFAULT_MIX`).
        locality_window: Edge inserts pick the second endpoint within
            this ID distance with probability ``locality_bias``.
        locality_bias: See above.
        max_delete_degree: Vertex deletions only target vertices of at
            most this degree (bounds the expansion into edge deletes,
            like real ECO cell swaps).
        edge_weight_range: ``(lo, hi)`` inclusive range for inserted
            edge weights (default unit weights, like the paper's
            circuit benchmarks).
        vertex_weight_range: Same for inserted vertex weights.
        seed: Trace seed.
    """

    iterations: int = 100
    modifiers_per_iteration: "int | tuple[int, int]" = (50, 200)
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    locality_window: int = 64
    locality_bias: float = 0.8
    max_delete_degree: int = 48
    edge_weight_range: tuple = (1, 1)
    vertex_weight_range: tuple = (1, 1)
    seed: int = 0

    def draw_edge_weight(self, rng: np.random.Generator) -> int:
        lo, hi = self.edge_weight_range
        return int(rng.integers(lo, hi + 1)) if hi > lo else int(lo)

    def draw_vertex_weight(self, rng: np.random.Generator) -> int:
        lo, hi = self.vertex_weight_range
        return int(rng.integers(lo, hi + 1)) if hi > lo else int(lo)


def generate_trace(
    csr: CSRGraph, config: TraceConfig
) -> List[ModifierBatch]:
    """Generate a valid modifier trace for ``csr``.

    The trace is validated by applying it to a scratch
    :class:`HostGraph`; the returned batches are guaranteed applicable
    in order starting from ``csr``.
    """
    host = HostGraph.from_csr(csr)
    rng = make_rng(config.seed, "trace")
    kinds = list(config.mix)
    probs = np.array([config.mix[kind] for kind in kinds], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix fractions must sum to a positive value")
    probs = probs / probs.sum()

    batches: List[ModifierBatch] = []
    for _iteration in range(config.iterations):
        count = _batch_size(config.modifiers_per_iteration, rng)
        batch = ModifierBatch()
        for _ in range(count):
            kind = kinds[int(rng.choice(len(kinds), p=probs))]
            modifier = _draw(kind, host, config, rng)
            if modifier is None:
                continue
            host.apply(modifier)
            batch.append(modifier)
        batches.append(batch)
    return batches


def _batch_size(
    spec: "int | tuple[int, int]", rng: np.random.Generator
) -> int:
    if isinstance(spec, tuple):
        lo, hi = spec
        return int(rng.integers(lo, hi + 1))
    return int(spec)


def _draw(kind: str, host: HostGraph, config: TraceConfig, rng):
    """Draw one applicable modifier; falls back across kinds and returns
    None only if the graph supports no modifier of any kind."""
    order = {
        "edge_insert": ["edge_insert", "edge_delete", "vertex_insert"],
        "edge_delete": ["edge_delete", "edge_insert", "vertex_insert"],
        "vertex_insert": ["vertex_insert", "edge_insert", "edge_delete"],
        "vertex_delete": ["vertex_delete", "edge_delete", "edge_insert"],
    }[kind]
    for attempt_kind in order:
        modifier = _try_draw(attempt_kind, host, config, rng)
        if modifier is not None:
            return modifier
    return None


def _try_draw(kind: str, host: HostGraph, config: TraceConfig, rng):
    active = host.active_vertices()
    if kind == "edge_insert":
        if len(active) < 2:
            return None
        for _retry in range(32):
            u = int(active[rng.integers(0, len(active))])
            if rng.random() < config.locality_bias:
                lo = max(0, u - config.locality_window)
                hi = min(host.num_vertex_slots, u + config.locality_window)
                v = int(rng.integers(lo, hi))
            else:
                v = int(active[rng.integers(0, len(active))])
            if v == u or not host.is_active(v) or host.has_edge(u, v):
                continue
            return EdgeInsert(u, v, weight=config.draw_edge_weight(rng))
        return None
    if kind == "edge_delete":
        for _retry in range(32):
            u = int(active[rng.integers(0, len(active))]) if active else None
            if u is None:
                return None
            nbrs = list(host.neighbors(u))
            if not nbrs:
                continue
            v = int(nbrs[rng.integers(0, len(nbrs))])
            return EdgeDelete(u, v)
        return None
    if kind == "vertex_insert":
        deleted = [
            u for u, flag in host.active.items() if not flag
        ]
        if deleted:
            u = int(deleted[rng.integers(0, len(deleted))])
        else:
            u = host.num_vertex_slots
        return VertexInsert(u, weight=config.draw_vertex_weight(rng))
    if kind == "vertex_delete":
        if len(active) <= 2:
            return None
        for _retry in range(32):
            u = int(active[rng.integers(0, len(active))])
            if host.degree(u) <= config.max_delete_degree:
                return VertexDelete(u)
        return None
    raise ValueError(f"unknown modifier kind {kind!r}")


# ---------------------------------------------------------------------------
# Specialized workload models.
# ---------------------------------------------------------------------------


def generate_region_burst_trace(
    csr: CSRGraph,
    iterations: int = 100,
    modifiers_per_iteration: int = 100,
    region_span: int = 128,
    seed: int = 0,
) -> List[ModifierBatch]:
    """ECO-burst workload: each iteration's modifiers hit one region.

    Real incremental timing flows (the TAU-2015 setting) change one
    physical neighborhood at a time — a resized buffer tree, a rerouted
    bus.  This generator picks a random window of ``region_span``
    consecutive vertex IDs per iteration and draws every edge modifier
    inside it, which maximizes locality of the affected set.  Vertex
    modifiers are omitted (cell counts are stable in ECO bursts).
    """
    host = HostGraph.from_csr(csr)
    rng = make_rng(seed, "region-burst")
    batches: List[ModifierBatch] = []
    n = host.num_vertex_slots
    for _iteration in range(iterations):
        lo = int(rng.integers(0, max(1, n - region_span)))
        hi = min(n, lo + region_span)
        region = [u for u in range(lo, hi) if host.is_active(u)]
        batch = ModifierBatch()
        for _ in range(modifiers_per_iteration):
            if not region or len(region) < 2:
                break
            if rng.random() < 0.5:
                modifier = _region_edge_insert(host, region, rng)
            else:
                modifier = _region_edge_delete(host, region, rng)
            if modifier is None:
                continue
            host.apply(modifier)
            batch.append(modifier)
        batches.append(batch)
    return batches


def _region_edge_insert(host, region, rng):
    for _retry in range(32):
        u = int(region[rng.integers(0, len(region))])
        v = int(region[rng.integers(0, len(region))])
        if u == v or host.has_edge(u, v):
            continue
        return EdgeInsert(u, v)
    return None


def _region_edge_delete(host, region, rng):
    for _retry in range(32):
        u = int(region[rng.integers(0, len(region))])
        nbrs = list(host.neighbors(u))
        if not nbrs:
            continue
        return EdgeDelete(u, int(nbrs[rng.integers(0, len(nbrs))]))
    return None


def generate_growth_trace(
    csr: CSRGraph,
    iterations: int = 100,
    vertices_per_iteration: int = 5,
    edges_per_vertex: int = 2,
    seed: int = 0,
) -> List[ModifierBatch]:
    """Growth-only workload: the graph monotonically expands.

    Models streaming-graph settings (and the vertex-insertion stress
    path of Algorithm 2): every iteration adds new vertices, each wired
    to ``edges_per_vertex`` existing vertices with locality bias.  No
    deletions, so partition weights only ever grow — the workload that
    most stresses the pseudo-partition balancing of Algorithm 3.
    """
    host = HostGraph.from_csr(csr)
    rng = make_rng(seed, "growth")
    batches: List[ModifierBatch] = []
    for _iteration in range(iterations):
        batch = ModifierBatch()
        for _ in range(vertices_per_iteration):
            u = host.num_vertex_slots
            modifier = VertexInsert(u, weight=1)
            host.apply(modifier)
            batch.append(modifier)
            active = host.active_vertices()
            wired = 0
            guard = 0
            while wired < edges_per_vertex and guard < 64:
                guard += 1
                v = int(active[rng.integers(0, len(active))])
                if v == u or host.has_edge(u, v):
                    continue
                edge = EdgeInsert(u, v)
                host.apply(edge)
                batch.append(edge)
                wired += 1
        batches.append(batch)
    return batches


def trace_summary(batches: Sequence[ModifierBatch]) -> dict:
    """Aggregate kind counts over a whole trace (for reports)."""
    totals = {
        "iterations": len(batches),
        "modifiers": 0,
        "edge_insert": 0,
        "edge_delete": 0,
        "vertex_insert": 0,
        "vertex_delete": 0,
    }
    for batch in batches:
        counts = batch.counts()
        totals["modifiers"] += len(batch)
        for key, value in counts.items():
            totals[key] += value
    return totals
