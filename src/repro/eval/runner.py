"""Experiment runner: drives iG-kway and G-kway† over the same trace.

One :func:`run_experiment` call reproduces the measurement protocol of
Section VI for one (graph, k, trace) combination:

* both systems start from the same full partitioning configuration,
* the same modifier trace is applied to both,
* per-iteration modification and partitioning times come from the
  simulated-GPU cost ledger (each system has its own context),
* cut sizes are measured exactly on the evolving graph,
* optionally everything is averaged over several runs with different
  trace seeds (the paper averages over 10 runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.baseline import GKwayDagger
from repro.core.igkway import IGKway
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph.csr import CSRGraph
from repro.graph.generators import make_benchmark_graph
from repro.partition.config import PartitionConfig
from repro.utils.seeding import derive_seed


@dataclass
class IterationRecord:
    """Measurements of one incremental iteration for both systems."""

    iteration: int
    n_modifiers: int
    ig_mod_seconds: float
    ig_part_seconds: float
    ig_cut: int
    bl_mod_seconds: float
    bl_part_seconds: float
    bl_cut: int

    @property
    def part_speedup(self) -> float:
        if self.ig_part_seconds <= 0:
            return float("inf")
        return self.bl_part_seconds / self.ig_part_seconds

    @property
    def cut_improvement(self) -> float:
        """> 1 means iG-kway found the better (smaller) cut."""
        if self.ig_cut == 0:
            return 1.0 if self.bl_cut == 0 else float("inf")
        return self.bl_cut / self.ig_cut


@dataclass
class ExperimentResult:
    """Everything measured for one (graph, k, trace) experiment."""

    name: str
    k: int
    num_vertices: int
    num_edges: int
    records: List[IterationRecord] = field(default_factory=list)
    ig_fgp_seconds: float = 0.0
    bl_fgp_seconds: float = 0.0
    ig_fgp_cut: int = 0
    bl_fgp_cut: int = 0
    runs_averaged: int = 1

    # -- Table I aggregates ---------------------------------------------------

    @property
    def ig_mod_total(self) -> float:
        return sum(r.ig_mod_seconds for r in self.records)

    @property
    def bl_mod_total(self) -> float:
        return sum(r.bl_mod_seconds for r in self.records)

    @property
    def ig_part_total(self) -> float:
        return sum(r.ig_part_seconds for r in self.records)

    @property
    def bl_part_total(self) -> float:
        return sum(r.bl_part_seconds for r in self.records)

    @property
    def part_speedup(self) -> float:
        if self.ig_part_total <= 0:
            return float("inf")
        return self.bl_part_total / self.ig_part_total

    @property
    def mod_speedup(self) -> float:
        if self.ig_mod_total <= 0:
            return float("inf")
        return self.bl_mod_total / self.ig_mod_total

    @property
    def ig_cut_mean(self) -> float:
        return float(np.mean([r.ig_cut for r in self.records]))

    @property
    def bl_cut_mean(self) -> float:
        return float(np.mean([r.bl_cut for r in self.records]))

    @property
    def cut_improvement(self) -> float:
        if self.ig_cut_mean == 0:
            return 1.0
        return self.bl_cut_mean / self.ig_cut_mean

    def cumulative_speedups(self) -> np.ndarray:
        """Per-iteration cumulative total-runtime speedup (Figure 6).

        Both cumulative sums include the initial full partitioning, so
        the curve starts near 1x and climbs toward the per-iteration
        asymptote as G-kway† keeps paying full cost.
        """
        ig = np.cumsum(
            [self.ig_fgp_seconds]
            + [r.ig_mod_seconds + r.ig_part_seconds for r in self.records]
        )
        bl = np.cumsum(
            [self.bl_fgp_seconds]
            + [r.bl_mod_seconds + r.bl_part_seconds for r in self.records]
        )
        return (bl / ig)[1:]


def run_experiment(
    graph: "str | CSRGraph",
    k: int = 2,
    iterations: int = 100,
    modifiers_per_iteration: "int | tuple[int, int] | str" = "auto",
    seed: int = 0,
    runs: int = 1,
    mode: str = "vector",
    name: str | None = None,
    epsilon: float = 0.03,
) -> ExperimentResult:
    """Run the Section VI protocol once (or ``runs`` times, averaged).

    Args:
        graph: A benchmark name from :data:`BENCHMARKS` or a CSR graph.
        modifiers_per_iteration: Fixed count, ``(lo, hi)`` range, or
            ``"auto"`` — the paper's relative rate (0.04%-0.15% of |V|
            per iteration) applied to this graph's size, so scaled
            graphs experience the same perturbation the paper's did.
        runs: Independent repetitions with different trace seeds; times
            and cuts are averaged element-wise across runs.
    """
    if isinstance(graph, str):
        name = name or graph
        csr = make_benchmark_graph(graph, seed=derive_seed(seed, "graph"))
    else:
        csr = graph
        name = name or f"graph-{csr.num_vertices}v"
    if modifiers_per_iteration == "auto":
        from repro.eval.workloads import auto_modifier_range

        modifiers_per_iteration = auto_modifier_range(csr.num_vertices)

    per_run: List[ExperimentResult] = []
    for run_index in range(max(1, runs)):
        per_run.append(
            _run_once(
                csr,
                name=name,
                k=k,
                iterations=iterations,
                modifiers_per_iteration=modifiers_per_iteration,
                seed=derive_seed(seed, "run", run_index),
                mode=mode,
                epsilon=epsilon,
            )
        )
    return _average_runs(per_run)


def _run_once(
    csr: CSRGraph,
    name: str,
    k: int,
    iterations: int,
    modifiers_per_iteration: "int | tuple[int, int]",
    seed: int,
    mode: str,
    epsilon: float,
) -> ExperimentResult:
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=iterations,
            modifiers_per_iteration=modifiers_per_iteration,
            seed=derive_seed(seed, "trace"),
        ),
    )
    config = PartitionConfig(
        k=k, epsilon=epsilon, seed=derive_seed(seed, "part"), mode=mode
    )
    ig = IGKway(csr, config)
    bl = GKwayDagger(csr, config)
    ig_fgp = ig.full_partition()
    bl_fgp = bl.full_partition()

    result = ExperimentResult(
        name=name,
        k=k,
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        ig_fgp_seconds=ig_fgp.seconds,
        bl_fgp_seconds=bl_fgp.seconds,
        ig_fgp_cut=ig_fgp.cut,
        bl_fgp_cut=bl_fgp.cut,
    )
    for index, batch in enumerate(trace):
        ig_report = ig.apply(batch)
        bl_report = bl.apply(batch)
        result.records.append(
            IterationRecord(
                iteration=index,
                n_modifiers=len(batch),
                ig_mod_seconds=ig_report.modification_seconds,
                ig_part_seconds=ig_report.partitioning_seconds,
                ig_cut=ig_report.cut,
                bl_mod_seconds=bl_report.modification_seconds,
                bl_part_seconds=bl_report.partitioning_seconds,
                bl_cut=bl_report.cut,
            )
        )
    return result


def run_replicates(
    graph: "str | CSRGraph",
    k: int = 2,
    iterations: int = 20,
    modifiers_per_iteration: "int | tuple[int, int] | str" = "auto",
    seed: int = 0,
    runs: int = 3,
    name: str | None = None,
) -> List[ExperimentResult]:
    """Independent replicates of one experiment (no averaging).

    Unlike ``run_experiment(runs=N)``, the per-run results are returned
    individually so callers can report spread — the paper averages 10
    runs; this is how to quantify what that averaging hides.
    """
    return [
        run_experiment(
            graph,
            k=k,
            iterations=iterations,
            modifiers_per_iteration=modifiers_per_iteration,
            seed=derive_seed(seed, "replicate", index),
            runs=1,
            name=name,
        )
        for index in range(max(1, runs))
    ]


def variance_report(
    replicates: Sequence[ExperimentResult],
) -> dict:
    """Mean and spread of the headline metrics across replicates."""
    speedups = np.array([r.part_speedup for r in replicates])
    improvements = np.array([r.cut_improvement for r in replicates])
    return {
        "runs": len(replicates),
        "speedup_mean": float(speedups.mean()),
        "speedup_std": float(speedups.std()),
        "speedup_min": float(speedups.min()),
        "speedup_max": float(speedups.max()),
        "cut_improvement_mean": float(improvements.mean()),
        "cut_improvement_std": float(improvements.std()),
    }


def _average_runs(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Element-wise average of several runs of the same experiment."""
    if len(results) == 1:
        return results[0]
    base = results[0]
    n_iter = min(len(r.records) for r in results)
    averaged = ExperimentResult(
        name=base.name,
        k=base.k,
        num_vertices=base.num_vertices,
        num_edges=base.num_edges,
        ig_fgp_seconds=float(
            np.mean([r.ig_fgp_seconds for r in results])
        ),
        bl_fgp_seconds=float(
            np.mean([r.bl_fgp_seconds for r in results])
        ),
        ig_fgp_cut=int(np.mean([r.ig_fgp_cut for r in results])),
        bl_fgp_cut=int(np.mean([r.bl_fgp_cut for r in results])),
        runs_averaged=len(results),
    )
    for i in range(n_iter):
        rows = [r.records[i] for r in results]
        averaged.records.append(
            IterationRecord(
                iteration=i,
                n_modifiers=int(np.mean([x.n_modifiers for x in rows])),
                ig_mod_seconds=float(
                    np.mean([x.ig_mod_seconds for x in rows])
                ),
                ig_part_seconds=float(
                    np.mean([x.ig_part_seconds for x in rows])
                ),
                ig_cut=int(round(np.mean([x.ig_cut for x in rows]))),
                bl_mod_seconds=float(
                    np.mean([x.bl_mod_seconds for x in rows])
                ),
                bl_part_seconds=float(
                    np.mean([x.bl_part_seconds for x in rows])
                ),
                bl_cut=int(round(np.mean([x.bl_cut for x in rows]))),
            )
        )
    return averaged
