"""Regeneration of every figure in the paper's evaluation.

Each ``build_figN`` function runs the corresponding experiment and
returns plain data series; each ``format_figN`` renders them as aligned
text (with small ASCII sparklines) so the harness works without any
plotting dependency.  The benchmark files under ``benchmarks/`` and the
CLI call these.

* Figure 1 — IGP vs FGP cumulative runtime (motivation).
* Figure 6 — speedup and cut improvement per iteration (usb, two k).
* Figure 7 — speedup and cut improvement vs k on four graphs.
* Figure 8 — speedup and cut improvement vs modifiers/iteration (usb).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.eval.runner import ExperimentResult, run_experiment

#: k values swept in Figure 7.
FIG7_K_VALUES = [2, 4, 8, 16, 32]
#: Graphs shown in Figure 7.
FIG7_GRAPHS = ["wb_dma", "mem_ctrl", "tv80", "adaptive"]
#: Modifier counts swept in Figure 8.  The paper sweeps 50-5K per
#: iteration on the 139k-vertex usb; our usb is scaled to 2k vertices, so
#: the sweep is scaled to span the same *fraction* of the graph
#: (0.25%-25% of |V| per iteration).
FIG8_MODIFIER_COUNTS = [5, 10, 50, 100, 500]
#: k values shown in Figure 6.
FIG6_K_VALUES = [2, 4]


def sparkline(values: Sequence[float]) -> str:
    """Tiny ASCII chart: one block character per value."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return blocks[5] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(blocks) - 1)
    return "".join(blocks[int(round(s))] for s in scaled)


# ---------------------------------------------------------------------------
# Figure 1: IGP vs FGP cumulative runtime.
# ---------------------------------------------------------------------------


@dataclass
class Fig1Data:
    iterations: np.ndarray
    igp_cumulative: np.ndarray
    fgp_cumulative: np.ndarray


def build_fig1(
    graph: str = "usb", iterations: int = 50, seed: int = 0
) -> Fig1Data:
    res = run_experiment(graph, k=2, iterations=iterations, seed=seed)
    ig = np.cumsum(
        [res.ig_fgp_seconds]
        + [r.ig_mod_seconds + r.ig_part_seconds for r in res.records]
    )
    bl = np.cumsum(
        [res.bl_fgp_seconds]
        + [r.bl_mod_seconds + r.bl_part_seconds for r in res.records]
    )
    return Fig1Data(
        iterations=np.arange(ig.size), igp_cumulative=ig, fgp_cumulative=bl
    )


def format_fig1(data: Fig1Data) -> str:
    lines = [
        "Figure 1: cumulative runtime, incremental (IGP) vs full (FGP)",
        f"{'iter':>6} {'IGP cum (s)':>12} {'FGP cum (s)':>12} {'ratio':>8}",
    ]
    step = max(1, data.iterations.size // 10)
    for i in range(0, data.iterations.size, step):
        ratio = data.fgp_cumulative[i] / max(data.igp_cumulative[i], 1e-12)
        lines.append(
            f"{int(data.iterations[i]):>6} {data.igp_cumulative[i]:>12.4f} "
            f"{data.fgp_cumulative[i]:>12.4f} {ratio:>7.1f}x"
        )
    lines.append("IGP " + sparkline(data.igp_cumulative))
    lines.append("FGP " + sparkline(data.fgp_cumulative))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 6: per-iteration speedup / cut improvement, usb, two k values.
# ---------------------------------------------------------------------------


@dataclass
class Fig6Data:
    graph: str
    results: Dict[int, ExperimentResult]  # keyed by k


def build_fig6(
    graph: str = "usb",
    iterations: int = 100,
    seed: int = 0,
    k_values: Sequence[int] = tuple(FIG6_K_VALUES),
) -> Fig6Data:
    results = {
        k: run_experiment(graph, k=k, iterations=iterations, seed=seed)
        for k in k_values
    }
    return Fig6Data(graph=graph, results=results)


def format_fig6(data: Fig6Data) -> str:
    lines = [
        f"Figure 6: {data.graph} over {_n_iters(data)} incremental "
        f"iterations",
    ]
    for k, res in data.results.items():
        speedups = res.cumulative_speedups()
        cuts = np.array([r.cut_improvement for r in res.records])
        lines.append(
            f"  k={k}: cumulative speedup grows "
            f"{speedups[0]:.1f}x -> {speedups[-1]:.1f}x ; cut ratio "
            f"mean {cuts.mean():.3f} (min {cuts.min():.3f}, "
            f"max {cuts.max():.3f})"
        )
        lines.append(f"    speedup  {sparkline(speedups)}")
        lines.append(f"    cut-impr {sparkline(cuts)}")
    return "\n".join(lines)


def _n_iters(data: Fig6Data) -> int:
    return len(next(iter(data.results.values())).records)


# ---------------------------------------------------------------------------
# Figure 7: speedup / cut improvement vs k.
# ---------------------------------------------------------------------------


@dataclass
class Fig7Data:
    results: Dict[str, Dict[int, ExperimentResult]]  # graph -> k -> result


def build_fig7(
    graphs: Sequence[str] = tuple(FIG7_GRAPHS),
    k_values: Sequence[int] = tuple(FIG7_K_VALUES),
    iterations: int = 20,
    seed: int = 0,
    modifiers_per_iteration: "int | tuple[int, int] | str" = (50, 200),
) -> Fig7Data:
    """k-sweep at the paper's *absolute* batch sizes (50-200).

    Figure 7 probes the regime where the affected set is large enough
    that Algorithm 4's per-partition bucket rescans show up in the
    runtime; at the auto-scaled (tiny) batch rates the k-dependence is
    invisible under the k-independent |V|-warp dispatch (EXPERIMENTS.md
    discusses this scale effect).
    """
    results: Dict[str, Dict[int, ExperimentResult]] = {}
    for graph in graphs:
        results[graph] = {
            k: run_experiment(
                graph,
                k=k,
                iterations=iterations,
                modifiers_per_iteration=modifiers_per_iteration,
                seed=seed,
            )
            for k in k_values
        }
    return Fig7Data(results=results)


def format_fig7(data: Fig7Data) -> str:
    k_values = sorted(next(iter(data.results.values())))
    header = f"{'graph':<12}" + "".join(f"{f'k={k}':>12}" for k in k_values)
    lines = [
        "Figure 7: speedup (top) and cut improvement (bottom) vs k",
        header,
        "-" * len(header),
    ]
    for graph, by_k in data.results.items():
        lines.append(
            f"{graph:<12}"
            + "".join(
                f"{by_k[k].part_speedup:>11.1f}x" for k in k_values
            )
        )
    lines.append("-" * len(header))
    for graph, by_k in data.results.items():
        lines.append(
            f"{graph:<12}"
            + "".join(
                f"{by_k[k].cut_improvement:>12.2f}" for k in k_values
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 8: speedup / cut improvement vs modifiers per iteration.
# ---------------------------------------------------------------------------


@dataclass
class Fig8Data:
    graph: str
    results: Dict[int, ExperimentResult]  # modifiers/iteration -> result


def build_fig8(
    graph: str = "usb",
    modifier_counts: Sequence[int] = tuple(FIG8_MODIFIER_COUNTS),
    iterations: int = 20,
    seed: int = 0,
) -> Fig8Data:
    results = {
        m: run_experiment(
            graph,
            k=2,
            iterations=iterations,
            modifiers_per_iteration=m,
            seed=seed,
        )
        for m in modifier_counts
    }
    return Fig8Data(graph=graph, results=results)


def format_fig8(data: Fig8Data) -> str:
    header = (
        f"{'modifiers/iter':>15} {'speedup':>10} {'cut impr':>10} "
        f"{'ig part (s)':>12} {'g† part (s)':>12}"
    )
    lines = [
        f"Figure 8: {data.graph}, varying modifiers per iteration",
        header,
        "-" * len(header),
    ]
    for m, res in sorted(data.results.items()):
        lines.append(
            f"{m:>15} {res.part_speedup:>9.1f}x "
            f"{res.cut_improvement:>10.2f} {res.ig_part_total:>12.4f} "
            f"{res.bl_part_total:>12.4f}"
        )
    return "\n".join(lines)
