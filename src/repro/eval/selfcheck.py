"""Reproduction self-check: does this installation reproduce the claims?

``run_selfcheck()`` executes a fast battery of end-to-end checks — each
tied to a specific claim of the paper or guarantee of this reproduction
— and reports PASS/FAIL with the measured evidence.  It is what a
downstream user runs first (``igkway-eval selfcheck``), and what CI can
gate on without the full benchmark suite.

Checks:

1. **correctness/equivalence** — warp-faithful and vectorized kernels
   produce bit-identical graphs and partitions on a random trace;
2. **correctness/ground-truth** — the bucket-list graph matches the
   host-side reference semantics after the trace;
3. **claim/speedup** — iG-kway beats G-kway† by a large factor on a
   scaled circuit (Table I's headline);
4. **claim/quality** — the incremental cut stays comparable to the
   from-scratch cut at the paper's modifier rate;
5. **claim/growth** — the cumulative advantage grows with iterations
   (Figure 6);
6. **claim/heavy-batch** — the advantage shrinks as batches grow
   (Figure 8's direction);
7. **invariant/balance** — the balance constraint holds after every
   iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check(name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(name=name, passed=bool(passed), detail=detail)


def run_selfcheck(seed: int = 0) -> List[CheckResult]:
    """Run the full battery; returns one :class:`CheckResult` each."""
    from repro import GKwayDagger, IGKway, PartitionConfig
    from repro.eval.workloads import TraceConfig, generate_trace
    from repro.graph import HostGraph, circuit_graph

    results: List[CheckResult] = []
    csr = circuit_graph(1200, 1.35, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(iterations=10, modifiers_per_iteration=(5, 15),
                    seed=seed),
    )

    # 1 + 2: mode equivalence and ground truth.
    partitions = {}
    graphs = {}
    for mode in ("warp", "vector"):
        ig = IGKway(csr, PartitionConfig(k=2, seed=seed, mode=mode))
        ig.full_partition()
        for batch in trace:
            ig.apply(batch)
        partitions[mode] = ig.partition.copy()
        graphs[mode] = ig.graph
    identical = np.array_equal(
        partitions["warp"], partitions["vector"]
    ) and np.array_equal(
        graphs["warp"].bucket_list, graphs["vector"].bucket_list
    )
    results.append(
        _check(
            "warp/vector bit-equality",
            identical,
            "identical partitions and bucket lists"
            if identical
            else "MODES DIVERGED",
        )
    )

    host = HostGraph.from_csr(csr)
    for batch in trace:
        host.apply_batch(batch)
    got = graphs["vector"].to_host_graph()
    matches = all(
        got.adj[u] == host.adj[u] and got.active[u] == host.active[u]
        for u in range(host.num_vertex_slots)
    )
    results.append(
        _check(
            "graph matches reference semantics",
            matches,
            "bucket list == HostGraph after trace"
            if matches
            else "ADJACENCY MISMATCH",
        )
    )

    # 3 + 4 + 5 + 7: run both systems over the trace.
    config = PartitionConfig(k=2, seed=seed)
    ig = IGKway(csr, config)
    bl = GKwayDagger(csr, config)
    ig_fgp = ig.full_partition()
    bl_fgp = bl.full_partition()
    ig_part = bl_part = 0.0
    ig_cum = [ig_fgp.seconds]
    bl_cum = [bl_fgp.seconds]
    cuts_ig: List[int] = []
    cuts_bl: List[int] = []
    all_balanced = True
    for batch in trace:
        a = ig.apply(batch)
        b = bl.apply(batch)
        ig_part += a.partitioning_seconds
        bl_part += b.partitioning_seconds
        ig_cum.append(
            ig_cum[-1] + a.modification_seconds + a.partitioning_seconds
        )
        bl_cum.append(
            bl_cum[-1] + b.modification_seconds + b.partitioning_seconds
        )
        cuts_ig.append(a.cut)
        cuts_bl.append(b.cut)
        all_balanced &= a.balanced

    speedup = bl_part / max(ig_part, 1e-12)
    results.append(
        _check(
            "partitioning speedup over G-kway†",
            speedup > 10,
            f"{speedup:.1f}x (threshold 10x; paper reports ~84x at "
            f"full scale)",
        )
    )
    cut_ratio = float(np.mean(cuts_bl)) / max(float(np.mean(cuts_ig)),
                                              1e-12)
    results.append(
        _check(
            "comparable cut quality",
            0.4 < cut_ratio < 2.5,
            f"mean G†/iG cut ratio {cut_ratio:.2f} "
            f"(paper: ~1.0 ± a few %)",
        )
    )
    early = bl_cum[2] / ig_cum[2]
    late = bl_cum[-1] / ig_cum[-1]
    results.append(
        _check(
            "cumulative advantage grows (Fig 6)",
            late > early,
            f"cumulative speedup {early:.1f}x -> {late:.1f}x",
        )
    )
    results.append(
        _check(
            "balance constraint maintained",
            all_balanced,
            "every iteration balanced" if all_balanced
            else "BALANCE VIOLATED",
        )
    )

    # 6: heavy batches shrink the advantage (Fig 8 direction).
    def quick_speedup(mods: int) -> float:
        t = generate_trace(
            csr,
            TraceConfig(iterations=4, modifiers_per_iteration=mods,
                        seed=seed + 1),
        )
        a = IGKway(csr, config)
        b = GKwayDagger(csr, config)
        a.full_partition()
        b.full_partition()
        a_s = b_s = 0.0
        for batch in t:
            a_s += a.apply(batch).partitioning_seconds
            b_s += b.apply(batch).partitioning_seconds
        return b_s / max(a_s, 1e-12)

    small, big = quick_speedup(5), quick_speedup(300)
    results.append(
        _check(
            "advantage shrinks with batch size (Fig 8)",
            small > big,
            f"{small:.1f}x at 5 modifiers vs {big:.1f}x at 300",
        )
    )
    return results


def format_results(results: List[CheckResult]) -> str:
    width = max(len(r.name) for r in results)
    lines = []
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"[{status}] {r.name:<{width}}  {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append(f"\n{passed}/{len(results)} checks passed")
    return "\n".join(lines)
