"""Experiment harness: workloads, runner, and paper table/figure reports."""

from repro.eval.runner import (
    ExperimentResult,
    IterationRecord,
    run_experiment,
)
from repro.eval.workloads import (
    DEFAULT_MIX,
    TraceConfig,
    generate_growth_trace,
    generate_region_burst_trace,
    generate_trace,
    trace_summary,
)

__all__ = [
    "run_experiment",
    "ExperimentResult",
    "IterationRecord",
    "TraceConfig",
    "generate_trace",
    "generate_region_burst_trace",
    "generate_growth_trace",
    "trace_summary",
    "DEFAULT_MIX",
]
