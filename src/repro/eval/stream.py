"""Streaming-service experiment driver.

Feeds a modifier trace through :class:`repro.stream.StreamSession` one
modifier at a time — the deployment mode the batch-replay experiments
in :mod:`repro.eval.runner` cannot exercise — and reports what the
service layer adds: ingest throughput, how much pending work the
coalescer removed before it reached the simulated GPU, the flush-reason
histogram, fallback events, and cut drift.

Used by ``repro-stream run`` (the console entry point) and by
``benchmarks/bench_stream.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph.csr import CSRGraph
from repro.graph.generators import circuit_graph
from repro.obs import Tracer, write_trace
from repro.partition.config import PartitionConfig
from repro.stream.scheduler import SchedulerConfig
from repro.stream.session import StreamSession


@dataclass
class StreamExperiment:
    """Outcome of one streamed trace."""

    num_vertices: int
    num_edges: int
    k: int
    submitted: int
    wall_seconds: float
    initial_cut: int
    final_cut: int
    telemetry: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Host-side ingest+apply throughput in modifiers/second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.submitted / self.wall_seconds


def run_stream_experiment(
    csr: CSRGraph | None = None,
    k: int = 4,
    num_vertices: int = 2000,
    iterations: int = 40,
    modifiers_per_iteration: int = 50,
    seed: int = 0,
    target_batch_size: Optional[int] = None,
    max_latency_cycles: Optional[float] = None,
    journal_dir: "str | None" = None,
    checkpoint_every: int = 8,
    max_quarantine: int = 64,
    escalate_after: int = 3,
    trace_path: "str | None" = None,
) -> StreamExperiment:
    """Stream a synthetic trace through a session and measure it.

    The trace comes from :func:`repro.eval.workloads.generate_trace`
    (the paper's TAU-2015-style workload), but is submitted modifier by
    modifier instead of batch by batch — the scheduler, not the trace,
    decides the batch boundaries.

    ``trace_path`` activates :mod:`repro.obs` tracing for the whole run
    and writes the span/kernel trace there as JSONL (feed it to
    ``repro-obs summary`` / ``repro-obs diff``).
    """
    if csr is None:
        csr = circuit_graph(num_vertices, edge_ratio=1.4, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=iterations,
            modifiers_per_iteration=modifiers_per_iteration,
            seed=seed,
        ),
    )
    modifiers = [mod for batch in trace for mod in batch]

    session = StreamSession(
        csr,
        PartitionConfig(k=k, seed=seed),
        journal_dir=journal_dir,
        scheduler=SchedulerConfig(
            target_batch_size=target_batch_size,
            max_latency_cycles=max_latency_cycles,
        ),
        checkpoint_every=checkpoint_every,
        max_quarantine=max_quarantine,
        escalate_after=escalate_after,
    )
    tracer = (
        Tracer(
            ledger=session.partitioner.ctx.ledger,
            session=f"stream-seed{seed}",
        )
        if trace_path is not None
        else None
    )
    started = time.perf_counter()
    if tracer is not None:
        with tracer.activate():
            full = session.start()
            for modifier in modifiers:
                session.submit(modifier)
            session.drain()
    else:
        full = session.start()
        for modifier in modifiers:
            session.submit(modifier)
        session.drain()
    wall = time.perf_counter() - started
    if tracer is not None:
        write_trace(tracer, trace_path)
    experiment = StreamExperiment(
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        k=k,
        submitted=len(modifiers),
        wall_seconds=wall,
        initial_cut=full.cut,
        final_cut=session.cut_size(),
        telemetry=session.metrics(),
    )
    session.close()
    return experiment


def format_stream_report(experiment: StreamExperiment) -> str:
    """Human-readable report of one streamed run."""
    t = experiment.telemetry
    reasons = ", ".join(
        f"{name}={count}"
        for name, count in sorted(t.get("flushes_by_reason", {}).items())
    ) or "none"
    lines = [
        "Streaming partition service "
        f"(|V|={experiment.num_vertices}, |E|={experiment.num_edges}, "
        f"k={experiment.k})",
        f"  submitted modifiers   {experiment.submitted}",
        f"  throughput            {experiment.throughput:,.0f} "
        "modifiers/s (host wall clock)",
        f"  batches applied       {t.get('batches', 0)} "
        f"(reasons: {reasons})",
        f"  coalescing ratio      {t.get('coalescing_ratio', 0.0):.1%} "
        f"({t.get('coalesced_dropped', 0)} of "
        f"{t.get('coalesced_dropped', 0) + t.get('applied_modifiers', 0)}"
        " dropped before the GPU)",
        f"  fallback events       {t.get('fallback_events', 0)}",
        f"  batch failures        {t.get('batch_failures', 0)} "
        f"(quarantined {t.get('quarantined', 0)}, "
        f"recovered {t.get('quarantine_recovered', 0)}, "
        f"dead-lettered {t.get('dead_lettered', 0)}, "
        f"escalations {t.get('escalations', 0)})",
        f"  checkpoints written   {t.get('checkpoints_written', 0)}",
        f"  cut                   {experiment.initial_cut} -> "
        f"{experiment.final_cut} "
        f"(drift {t.get('cut_drift', 1.0):.2f}x)",
        f"  modeled GPU time      {t.get('modeled_seconds', 0.0):.4f}s",
    ]
    return "\n".join(lines)


def sweep_batch_sizes(
    batch_sizes: List[int],
    k: int = 4,
    num_vertices: int = 2000,
    iterations: int = 40,
    modifiers_per_iteration: int = 50,
    seed: int = 0,
) -> List[StreamExperiment]:
    """Run the same trace at several fixed size targets (benchmarks)."""
    return [
        run_stream_experiment(
            k=k,
            num_vertices=num_vertices,
            iterations=iterations,
            modifiers_per_iteration=modifiers_per_iteration,
            seed=seed,
            target_batch_size=size,
        )
        for size in batch_sizes
    ]
