"""Programmatic ablation studies over the design choices.

Each study isolates one design decision DESIGN.md calls out and measures
its effect on quality and modeled runtime:

* ``coarsening_study``  — constrained grouping (Section IV) vs plain
  union-find: coarse-weight balance, final cut, FGP time.
* ``gamma_study``       — spare buckets per vertex (Section V.A):
  relocations suffered vs memory footprint under an insert-heavy burst.
* ``filter_study``      — Algorithm 3's ``adj_ext > adj_int`` filter:
  pseudo-set size and refinement moves with the filter active vs a
  variant that parks every affected vertex.
* ``fm_study``          — the reproduction's FM booster: cut vs time.

The CLI target ``igkway-eval ablations`` renders all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.igkway import IGKway
from repro.eval.workloads import TraceConfig, generate_trace
from repro.graph.csr import CSRGraph
from repro.graph.generators import circuit_graph, mesh_graph_2d
from repro.gpusim.context import GpuContext
from repro.partition.coarsen import (
    build_groups_constrained,
    build_groups_unionfind,
    coarse_weight_imbalance,
)
from repro.partition.config import PartitionConfig
from repro.partition.gkway import GKwayPartitioner
from repro.partition.unionfind import group_vertices


@dataclass
class AblationRow:
    """One configuration's outcome within a study."""

    label: str
    metrics: Dict[str, float]


@dataclass
class AblationStudy:
    """A titled list of rows plus the claim being tested."""

    title: str
    claim: str
    rows: List[AblationRow]

    def format(self) -> str:
        keys: List[str] = []
        for row in self.rows:
            for key in row.metrics:
                if key not in keys:
                    keys.append(key)
        label_width = max(len(row.label) for row in self.rows)
        header = f"{'config':<{label_width}}" + "".join(
            f"{key:>18}" for key in keys
        )
        lines = [self.title, f"  claim: {self.claim}", header,
                 "-" * len(header)]
        for row in self.rows:
            cells = "".join(
                f"{row.metrics.get(key, float('nan')):>18.4g}"
                for key in keys
            )
            lines.append(f"{row.label:<{label_width}}" + cells)
        return "\n".join(lines)


def coarsening_study(
    csr: CSRGraph | None = None, k: int = 8, seed: int = 3
) -> AblationStudy:
    """Constrained vs union-find coarsening (Section IV / Figure 3)."""
    if csr is None:
        csr = mesh_graph_2d(4096)
    roots, labels = group_vertices(csr, match_iterations=3, seed=seed)
    rows = []
    for strategy, cmap in (
        ("unionfind", build_groups_unionfind(roots)),
        ("constrained", build_groups_constrained(roots, labels, 6)),
    ):
        ctx = GpuContext()
        result = GKwayPartitioner(
            PartitionConfig(k=k, seed=seed, coarsening=strategy),
            ctx=ctx,
        ).partition(csr)
        rows.append(
            AblationRow(
                label=strategy,
                metrics={
                    "coarse_imbalance": coarse_weight_imbalance(
                        cmap, csr.vwgt
                    ),
                    "cut": float(result.cut),
                    "balanced": float(result.balanced),
                    "fgp_seconds": ctx.ledger.seconds(),
                },
            )
        )
    return AblationStudy(
        title="Coarsening strategy (Section IV)",
        claim="constrained grouping flattens coarse vertex weights",
        rows=rows,
    )


def gamma_study(
    csr: CSRGraph | None = None, seed: int = 2
) -> AblationStudy:
    """Spare-bucket count vs relocations and footprint (Section V.A)."""
    from repro.core.modification import apply_batch
    from repro.graph.bucketlist import BucketListGraph
    from repro.graph.modifiers import EdgeInsert, ModifierBatch

    if csr is None:
        csr = circuit_graph(600, 1.3, seed=seed)
    rows = []
    for gamma in (0, 1, 2, 4):
        graph = BucketListGraph.from_csr(csr, gamma=gamma)
        ctx = GpuContext()
        before = graph.num_buckets_used
        batch = ModifierBatch(
            [
                EdgeInsert(0, v)
                for v in range(100, 140)
                if not graph.has_edge(0, v)
            ]
        )
        apply_batch(ctx, graph, batch, mode="vector")
        rows.append(
            AblationRow(
                label=f"gamma={gamma}",
                metrics={
                    "buckets_grown": float(
                        graph.num_buckets_used - before
                    ),
                    "pool_mbytes": graph.nbytes() / 1e6,
                    "mod_seconds": ctx.ledger.seconds(),
                },
            )
        )
    return AblationStudy(
        title="Spare buckets gamma (Section V.A)",
        claim="larger gamma absorbs insertion bursts without relocation",
        rows=rows,
    )


def filter_study(
    csr: CSRGraph | None = None, seed: int = 6, iterations: int = 5
) -> AblationStudy:
    """Algorithm 3's adj_ext > adj_int filter vs parking everything."""
    from repro.core import balancing as balancing_module

    if csr is None:
        csr = circuit_graph(3000, 1.4, seed=seed)
    trace = generate_trace(
        csr,
        TraceConfig(
            iterations=iterations, modifiers_per_iteration=100, seed=seed
        ),
    )

    def run(disable_filter: bool) -> Dict[str, float]:
        original = balancing_module._filter_ext_gt_int
        if disable_filter:
            def park_everything(ctx, graph, state, candidates, mode):
                return np.sort(
                    np.asarray(candidates, dtype=np.int64)
                )

            balancing_module._filter_ext_gt_int = park_everything
        try:
            ig = IGKway(csr, PartitionConfig(k=2, seed=seed))
            ig.full_partition()
            pseudo = moves = 0
            part_seconds = 0.0
            for batch in trace:
                report = ig.apply(batch)
                pseudo += report.balance_stats.pseudo_total
                moves += report.refine_stats.moves_applied
                part_seconds += report.partitioning_seconds
            return {
                "pseudo_total": float(pseudo),
                "moves": float(moves),
                "part_seconds": part_seconds,
                "final_cut": float(ig.cut_size()),
            }
        finally:
            balancing_module._filter_ext_gt_int = original

    rows = [
        AblationRow("filter on (paper)", run(disable_filter=False)),
        AblationRow("filter off", run(disable_filter=True)),
    ]
    return AblationStudy(
        title="Affected-vertex filtering (Algorithm 3)",
        claim="the filter shrinks the pseudo set and refinement work",
        rows=rows,
    )


def fm_study(
    csr: CSRGraph | None = None, k: int = 2, seed: int = 5
) -> AblationStudy:
    """FM refinement on/off in the full partitioner."""
    if csr is None:
        csr = mesh_graph_2d(2500)
    rows = []
    for fm_passes in (0, 1, 2):
        ctx = GpuContext()
        result = GKwayPartitioner(
            PartitionConfig(k=k, seed=seed, fm_passes=fm_passes),
            ctx=ctx,
        ).partition(csr)
        rows.append(
            AblationRow(
                label=f"fm_passes={fm_passes}",
                metrics={
                    "cut": float(result.cut),
                    "fgp_seconds": ctx.ledger.seconds(),
                },
            )
        )
    return AblationStudy(
        title="FM refinement passes",
        claim="FM lowers the cut at modest modeled cost",
        rows=rows,
    )


def refinement_study(
    csr: CSRGraph | None = None, k: int = 4, seed: int = 9
) -> AblationStudy:
    """G-kway independent-set refinement vs Jet-style label propagation
    (the two GPU refinement families, paper's [13] vs [2])."""
    if csr is None:
        csr = mesh_graph_2d(2500)
    rows = []
    for refinement in ("gkway", "jet"):
        ctx = GpuContext()
        result = GKwayPartitioner(
            PartitionConfig(k=k, seed=seed, refinement=refinement),
            ctx=ctx,
        ).partition(csr)
        rows.append(
            AblationRow(
                label=refinement,
                metrics={
                    "cut": float(result.cut),
                    "balanced": float(result.balanced),
                    "fgp_seconds": ctx.ledger.seconds(),
                },
            )
        )
    return AblationStudy(
        title="Refinement family (G-kway [13] vs Jet [2])",
        claim="both families deliver balanced partitions of similar cut",
        rows=rows,
    )


def locality_study(
    csr: CSRGraph | None = None, seed: int = 8, iterations: int = 5
) -> AblationStudy:
    """Workload locality: scattered random modifiers vs ECO-style
    region bursts at the same modifier rate."""
    from repro.eval.workloads import generate_region_burst_trace

    if csr is None:
        csr = circuit_graph(3000, 1.4, seed=seed)
    traces = {
        "random (TAU mix)": generate_trace(
            csr,
            TraceConfig(
                iterations=iterations,
                modifiers_per_iteration=100,
                seed=seed,
            ),
        ),
        "region burst (ECO)": generate_region_burst_trace(
            csr,
            iterations=iterations,
            modifiers_per_iteration=100,
            region_span=128,
            seed=seed,
        ),
    }
    rows = []
    for label, trace in traces.items():
        ig = IGKway(csr, PartitionConfig(k=2, seed=seed))
        ig.full_partition()
        affected = pseudo = 0
        part_seconds = 0.0
        for batch in trace:
            report = ig.apply(batch)
            affected += report.balance_stats.affected_marked
            pseudo += report.balance_stats.pseudo_total
            part_seconds += report.partitioning_seconds
        rows.append(
            AblationRow(
                label=label,
                metrics={
                    "affected": float(affected),
                    "pseudo": float(pseudo),
                    "part_seconds": part_seconds,
                    "final_cut": float(ig.cut_size()),
                },
            )
        )
    return AblationStudy(
        title="Workload locality",
        claim="incremental cost tracks the affected set, not |E|",
        rows=rows,
    )


def run_all(seed: int = 0) -> List[AblationStudy]:
    """Run every ablation study with defaults."""
    return [
        coarsening_study(seed=seed + 3),
        gamma_study(seed=seed + 2),
        filter_study(seed=seed + 6),
        fm_study(seed=seed + 5),
        refinement_study(seed=seed + 9),
        locality_study(seed=seed + 8),
    ]


def format_all(studies: List[AblationStudy]) -> str:
    return "\n\n".join(study.format() for study in studies)
